//! Offline shim for the subset of `criterion` this workspace uses.
//! Each benchmark runs a handful of timed iterations and prints a
//! rough mean — a smoke-test harness (the bench bodies' asserts still
//! run), not a statistics engine.

#![forbid(unsafe_code)]

use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by the shim beyond
/// signature compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark driver.
pub struct Bencher {
    iters: u64,
    total_ns: u128,
}

impl Bencher {
    /// Times `f` over the configured iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.total_ns += t0.elapsed().as_nanos();
        }
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, T, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> T,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total_ns += t0.elapsed().as_nanos();
        }
    }
}

/// The benchmark registry/configuration object.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample count (the shim runs `min(sample, 5)`
    /// iterations to keep smoke runs fast).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size.min(5) as u64,
            total_ns: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            0
        } else {
            b.total_ns / b.iters as u128
        };
        println!("bench {id:<44} {:>12} ns/iter ({} iters)", mean, b.iters);
        self
    }
}

/// Declares a benchmark group (Criterion macro-compatible).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (Criterion macro-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut hits = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("t", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 3);
    }

    #[test]
    fn iter_batched_pairs_setup_with_routine() {
        let mut total = 0u64;
        Criterion::default().bench_function("t", |b| {
            b.iter_batched(|| 2u64, |x| total += x, BatchSize::SmallInput)
        });
        assert_eq!(total, 10);
    }
}
