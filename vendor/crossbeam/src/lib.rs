//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn`, implemented over
//! `std::thread::scope` (stable since Rust 1.63, which postdates
//! crossbeam's scoped-thread API).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Handle passed to scoped-spawn closures. Unlike real crossbeam it
    /// does not support *nested* spawning (no workspace caller nests);
    /// the closure parameter exists purely for signature compatibility.
    #[derive(Clone, Copy, Debug)]
    pub struct NestedScope(());

    /// A scope in which spawned threads are joined before `scope`
    /// returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a
        /// [`NestedScope`] placeholder (crossbeam passes the scope for
        /// nested spawning, which this shim does not support).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope(())))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns. Panics in spawned threads propagate (the
    /// `Err` variant is therefore never constructed, but the signature
    /// matches crossbeam's).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_join() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
            })
            .unwrap();
            assert_eq!(counter.into_inner(), 4);
        }
    }
}
