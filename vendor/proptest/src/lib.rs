//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! random cases drawn from a deterministic per-test PRNG (seeded from
//! the test's module path and name), so failures are reproducible
//! across runs. There is no shrinking — a failing case panics with
//! the generated inputs printed verbatim instead of a minimized
//! counterexample.

#![forbid(unsafe_code)]

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// Subset of proptest's runner config: just the case count.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed `prop_assert*` inside a property body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps an assertion-failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic SplitMix64 stream used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test identifier (FNV-1a) and case index, so
        /// every run of the same test replays the same cases.
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ u64::from(case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! uint_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                    self.start() + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    uint_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    ((self.start as i128) + (rng.next_u64() as i128 % span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    ((*self.start() as i128) + (rng.next_u64() as i128 % span)) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    /// Uniform choice among same-valued strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    #[allow(clippy::type_complexity)]
    pub struct OneOf<V> {
        options: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> OneOf<V> {
        /// Empty union; populate with [`OneOf::push`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            OneOf {
                options: Vec::new(),
            }
        }

        /// Adds one alternative.
        pub fn push<S: Strategy<Value = V> + 'static>(&mut self, s: S) {
            self.options.push(Box::new(move |rng| s.sample(rng)));
        }
    }

    impl<V: Debug> Strategy for OneOf<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(
                !self.options.is_empty(),
                "prop_oneof! needs at least one option"
            );
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// lengths fall in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary + Debug>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary + Debug> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prop::` module path inside the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(binding in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

/// Internal: expands each property fn under a shared config.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::strategy::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs = ::std::string::String::new();
                $(
                    let __drawn = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    __inputs.push_str(&::std::format!(
                        "{} = {:?}; ",
                        stringify!($pat),
                        &__drawn
                    ));
                    let $pat = __drawn;
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    ::std::panic!(
                        "property '{}' failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __err,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// Fails the current case (returns `Err` from the property body) when
/// the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
}

/// Uniform union of same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __one_of = $crate::strategy::OneOf::new();
        $(__one_of.push($strat);)+
        __one_of
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::strategy::TestRng::deterministic("bounds", 0);
        for _ in 0..200 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5usize..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_replay() {
        let draw = || {
            let mut rng = crate::strategy::TestRng::deterministic("replay", 7);
            prop::collection::vec((0u32..10, 0u32..10), 1..9).sample(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_and_passes(x in 0u64..100, (a, b) in (0u32..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert_eq!(a < 4, true);
            prop_assert_ne!(i32::from(b), 2);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x as u64),
            (10u32..15).prop_map(|x| x as u64),
        ]) {
            prop_assert!(v < 5 || (10..15).contains(&v));
        }
    }
}
