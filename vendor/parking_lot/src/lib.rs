//! Offline shim for the subset of `parking_lot` this workspace uses:
//! a `Mutex` whose `lock()` returns the guard directly. Backed by
//! `std::sync::Mutex`; poisoning (which parking_lot does not have) is
//! translated into recovering the inner data, matching parking_lot's
//! panic-transparent behavior.

#![forbid(unsafe_code)]

use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
