//! Offline shim for the subset of `serde` this workspace uses: the
//! experiment binaries derive `Serialize` on flat row structs and emit
//! JSON lines through `serde_json::to_string`. The shim collapses the
//! whole data model to "format yourself as a JSON value", which is all
//! those rows need.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// Types that can render themselves as a JSON value.
pub trait Serialize {
    /// The complete JSON value.
    fn json(&self) -> String;

    /// For struct-like values: the comma-joined `"key":value` field
    /// list without surrounding braces (used by `#[serde(flatten)]`
    /// and by `fractanet_bench::emit_json`). `None` for scalars.
    fn json_fields(&self) -> Option<String> {
        None
    }
}

/// Escapes a string per JSON rules.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self) -> String {
                if self.is_finite() {
                    // `{:?}` round-trips f64 (shortest representation).
                    format!("{:?}", self)
                } else {
                    "null".to_string()
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn json(&self) -> String {
        self.to_string()
    }
}

impl Serialize for str {
    fn json(&self) -> String {
        format!("\"{}\"", escape_str(self))
    }
}

impl Serialize for String {
    fn json(&self) -> String {
        self.as_str().json()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json(&self) -> String {
        (**self).json()
    }
    fn json_fields(&self) -> Option<String> {
        (**self).json_fields()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json(&self) -> String {
        match self {
            Some(v) => v.json(),
            None => "null".to_string(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json(&self) -> String {
        self.as_slice().json()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json(&self) -> String {
        let items: Vec<String> = self.iter().map(Serialize::json).collect();
        format!("[{}]", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(42u32.json(), "42");
        assert_eq!((-3i64).json(), "-3");
        assert_eq!(true.json(), "true");
        assert_eq!(0.5f64.json(), "0.5");
        assert_eq!(f64::NAN.json(), "null");
        assert_eq!("a\"b".json(), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u8, 2, 3].json(), "[1,2,3]");
        assert_eq!(Some(7u8).json(), "7");
        assert_eq!(None::<u8>.json(), "null");
    }
}
