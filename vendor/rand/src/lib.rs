//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! `StdRng` is a SplitMix64 generator: deterministic, fast, and
//! statistically adequate for the simulator's Bernoulli sources and the
//! fault campaigns. It is **not** stream-compatible with the real
//! crate's ChaCha12 `StdRng`; no in-repo test depends on the exact
//! stream, only on determinism under a fixed seed.

#![forbid(unsafe_code)]

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is
/// needed in this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_range!(i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
        assert!(v.choose(&mut r).is_some());
    }
}
