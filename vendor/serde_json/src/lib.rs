//! Offline shim for the subset of `serde_json` this workspace uses.

#![forbid(unsafe_code)]

use std::fmt;

/// Serialization error (the shim never produces one; the type exists
/// for signature compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.json())
}

#[cfg(test)]
mod tests {
    #[test]
    fn scalars_round_trip() {
        assert_eq!(super::to_string(&1u32).unwrap(), "1");
        assert_eq!(super::to_string("x").unwrap(), "\"x\"");
    }
}
