//! Offline shim for serde's `#[derive(Serialize)]`, hand-parsed with
//! `proc_macro` only (no `syn`/`quote` available offline).
//!
//! Supports plain (non-generic) structs with named fields, plus the
//! `#[serde(flatten)]` field attribute. That covers every derive in
//! this workspace: flat experiment-row structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name> { ... }`.
    let struct_kw = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "struct"))
        .expect("derive(Serialize) shim: expected a struct");
    let name = match &tokens[struct_kw + 1] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("derive(Serialize) shim: expected struct name, found {other}"),
    };
    let body = tokens[struct_kw + 2..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("derive(Serialize) shim: generic structs are unsupported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize) shim: named-field structs only");

    let fields = parse_fields(body);

    let mut push = String::new();
    for (field, flatten) in &fields {
        if *flatten {
            push.push_str(&format!(
                "{{ let flat = ::serde::Serialize::json_fields(&self.{field})\
                     .expect(\"#[serde(flatten)] requires a struct-like field\");\
                   if !flat.is_empty() {{\
                       if !out.is_empty() {{ out.push(','); }}\
                       out.push_str(&flat);\
                   }} }}"
            ));
        } else {
            push.push_str(&format!(
                "if !out.is_empty() {{ out.push(','); }}\
                 out.push_str(\"\\\"{field}\\\":\");\
                 out.push_str(&::serde::Serialize::json(&self.{field}));"
            ));
        }
    }

    format!(
        "impl ::serde::Serialize for {name} {{\
             fn json_fields(&self) -> ::std::option::Option<::std::string::String> {{\
                 let mut out = ::std::string::String::new();\
                 {push}\
                 ::std::option::Option::Some(out)\
             }}\
             fn json(&self) -> ::std::string::String {{\
                 format!(\"{{{{{{}}}}}}\", self.json_fields().unwrap_or_default())\
             }}\
         }}"
    )
    .parse()
    .expect("derive(Serialize) shim: generated impl must parse")
}

/// Extracts `(field_name, is_flattened)` pairs from a named-field body.
fn parse_fields(body: TokenStream) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut flatten_pending = false;
    let mut tokens = body.into_iter().peekable();
    while let Some(t) = tokens.next() {
        match t {
            // Attribute: `#[ ... ]`.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        if attr_is_serde_flatten(g.stream()) {
                            flatten_pending = true;
                        }
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(i) if i.to_string() == "pub" => {
                // Skip optional `(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            // Field name, then swallow `: Type` up to the next
            // top-level comma.
            TokenTree::Ident(i) => {
                fields.push((i.to_string(), flatten_pending));
                flatten_pending = false;
                let mut depth = 0i32;
                for t in tokens.by_ref() {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    fields
}

/// Whether a bracket-attribute body reads `serde(... flatten ...)`.
fn attr_is_serde_flatten(stream: TokenStream) -> bool {
    let mut it = stream.into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "flatten"))
        }
        _ => false,
    }
}
