//! The ServerNet router ASIC model.
//!
//! "Complex networks can be constructed using 6-port router ASICs …
//! that contain input FIFO buffers and a non-blocking crossbar switch"
//! (§1). Routing is a table lookup ("these matches are actually done
//! by looking up entries in the routing table inside each router"),
//! and a separate bank of **path-disable registers** constrains which
//! input→output turns the crossbar will honor, as the §2.4 safety net
//! against corrupted tables.

use fractanet_graph::PortId;

/// Why a forward request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardError {
    /// The routing table has no entry for the destination.
    NoTableEntry {
        /// The destination that missed.
        dest: u32,
    },
    /// The table named an output, but the (input, output) turn is
    /// disabled; the packet is dropped and flagged for maintenance
    /// rather than allowed to close a dependency loop.
    TurnDisabled {
        /// Arriving port.
        input: PortId,
        /// Output the (possibly corrupted) table requested.
        output: PortId,
    },
    /// The table named the port the packet arrived on (a forwarding
    /// U-turn, always illegal in ServerNet).
    UTurn {
        /// The offending port.
        port: PortId,
    },
}

/// One 6-port (or `ports`-port) router ASIC.
#[derive(Clone, Debug)]
pub struct RouterAsic {
    ports: u8,
    /// `table[dest]` = output port.
    table: Vec<Option<PortId>>,
    /// `disabled[input][output]`.
    disabled: Vec<Vec<bool>>,
}

impl RouterAsic {
    /// A router with `ports` ports and room for `dest_space`
    /// destination IDs ("This prevents sparse usage of the node
    /// address space").
    pub fn new(ports: u8, dest_space: usize) -> Self {
        RouterAsic {
            ports,
            table: vec![None; dest_space],
            disabled: vec![vec![false; ports as usize]; ports as usize],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> u8 {
        self.ports
    }

    /// Programs one routing-table entry.
    pub fn program(&mut self, dest: u32, output: PortId) {
        assert!(output.0 < self.ports, "output port out of range");
        self.table[dest as usize] = Some(output);
    }

    /// Reads a table entry (for diagnostics).
    pub fn table_entry(&self, dest: u32) -> Option<PortId> {
        self.table.get(dest as usize).copied().flatten()
    }

    /// Sets a path-disable: packets arriving on `input` may never
    /// leave through `output`.
    pub fn disable_turn(&mut self, input: PortId, output: PortId) {
        self.disabled[input.index()][output.index()] = true;
    }

    /// Whether the turn is disabled.
    pub fn is_disabled(&self, input: PortId, output: PortId) -> bool {
        self.disabled[input.index()][output.index()]
    }

    /// Corrupts a table entry (fault injection): points `dest` at an
    /// arbitrary port without any validity check.
    pub fn corrupt(&mut self, dest: u32, bogus: PortId) {
        self.table[dest as usize] = Some(bogus);
    }

    /// The crossbar decision: which output does a packet for `dest`
    /// arriving on `input` take?
    pub fn forward(&self, input: PortId, dest: u32) -> Result<PortId, ForwardError> {
        let output = self
            .table
            .get(dest as usize)
            .copied()
            .flatten()
            .ok_or(ForwardError::NoTableEntry { dest })?;
        if output == input {
            return Err(ForwardError::UTurn { port: output });
        }
        if self.is_disabled(input, output) {
            return Err(ForwardError::TurnDisabled { input, output });
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asic() -> RouterAsic {
        let mut r = RouterAsic::new(6, 8);
        for d in 0..8u32 {
            r.program(d, PortId((d % 6) as u8));
        }
        r
    }

    #[test]
    fn forwards_by_table() {
        let r = asic();
        assert_eq!(r.forward(PortId(5), 3), Ok(PortId(3)));
        assert_eq!(r.table_entry(3), Some(PortId(3)));
    }

    #[test]
    fn missing_entry_rejected() {
        let r = RouterAsic::new(6, 4);
        assert_eq!(
            r.forward(PortId(0), 2),
            Err(ForwardError::NoTableEntry { dest: 2 })
        );
    }

    #[test]
    fn u_turn_rejected() {
        let r = asic();
        // Destination 3 maps to port 3; arriving on port 3 is a U-turn.
        assert_eq!(
            r.forward(PortId(3), 3),
            Err(ForwardError::UTurn { port: PortId(3) })
        );
    }

    #[test]
    fn disabled_turn_rejected_even_with_corrupt_table() {
        // §2.4: "path disable logic that can be set to enforce the
        // elimination of the loops, even if the routing table is
        // corrupted by a fault."
        let mut r = asic();
        r.disable_turn(PortId(1), PortId(4));
        r.corrupt(2, PortId(4)); // table now sends dest 2 out port 4
        assert_eq!(
            r.forward(PortId(1), 2),
            Err(ForwardError::TurnDisabled {
                input: PortId(1),
                output: PortId(4)
            })
        );
        // From other inputs the (corrupt) route is still taken — the
        // disable is per-turn, not per-output.
        assert_eq!(r.forward(PortId(0), 2), Ok(PortId(4)));
    }

    #[test]
    fn disables_are_directional() {
        let mut r = asic();
        r.disable_turn(PortId(1), PortId(2));
        assert!(r.is_disabled(PortId(1), PortId(2)));
        assert!(!r.is_disabled(PortId(2), PortId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn program_checks_port_range() {
        let mut r = RouterAsic::new(6, 4);
        r.program(0, PortId(6));
    }
}
