//! Certified self-healing: regenerate routes around a fault set and
//! **prove them deadlock-free before installing**.
//!
//! The paper's §2.4 safety story is that routing tables are only ever
//! changed to configurations whose channel-dependency graph is
//! acyclic. This module enforces that for repair: [`heal`] runs the
//! fault-avoiding up*/down* generator from `fractanet-route` and then
//! pushes the result through the Dally & Seitz check
//! (`fractanet-deadlock`). A table that fails certification is never
//! returned — the caller keeps the old (safe) tables instead.
//!
//! When the family-specific repair cannot produce certifiable tables
//! for a faulted topology, [`heal_mask_with_fallback`] falls back to
//! the certificate-producing exact synthesizer
//! ([`fractanet_deadlock::synthesize_disables_exact`]), which routes
//! the surviving component from scratch with a provably small disable
//! set — and its output passes the very same certification gates
//! before anything is installed.

use crate::faults::FaultSet;
use fractanet_deadlock::DeadlockReport;
use fractanet_deadlock::{
    synthesize_disables_exact, verify_deadlock_free, verify_deadlock_free_tables, DisableSet,
    ExactConfig, SynthesisError,
};
use fractanet_graph::{LinkId, Network, NodeId};
use fractanet_lint::{LintReport, Linter};
use fractanet_route::repair::{repair_tables, trace_surviving, DeadMask, RepairError};
use fractanet_route::{IncrementalRepair, RouteSet, Routes};
use std::sync::Arc;

/// A certified repair: tables verified acyclic, plus coverage.
#[derive(Clone, Debug)]
pub struct HealReport {
    /// The verified, installable destination tables — the canonical
    /// form repairs are certified and installed in.
    pub tables: Routes,
    /// Dense per-pair view traced from `tables` (severed pairs have
    /// empty paths), for consumers that still want frozen paths.
    pub routes: RouteSet,
    /// Ordered pairs still connected.
    pub connected_pairs: usize,
    /// All ordered pairs.
    pub total_pairs: usize,
    /// Dependencies in the certified CDG (diagnostic).
    pub cdg_dependencies: usize,
}

impl HealReport {
    /// Fraction of ordered pairs still routable — the
    /// graceful-degradation coverage (1.0 = full repair).
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.connected_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Whether every pair is still routable.
    pub fn is_full(&self) -> bool {
        self.connected_pairs == self.total_pairs
    }
}

/// Why a heal was not installed.
#[derive(Debug)]
pub enum HealError {
    /// The route generator itself failed an internal invariant; the
    /// old tables stay in place.
    Repair(RepairError),
    /// The regenerated tables failed Dally & Seitz certification
    /// (should be impossible for up*/down* output — treated as a bug
    /// guard, never silently installed).
    Cyclic(Box<DeadlockReport>),
    /// The regenerated tables failed static lint (coverage hole,
    /// dead channel in a path, malformed path, …) — the exact bug
    /// class that once let a post-fault table bypass path-liveness
    /// checks. The full report is attached for diagnosis.
    Lint(Box<LintReport>),
    /// The fallback route synthesizer could not produce a
    /// deadlock-free routing for the surviving topology.
    Synthesis(SynthesisError),
}

impl std::fmt::Display for HealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealError::Repair(e) => write!(f, "route regeneration failed: {e}"),
            HealError::Cyclic(r) => write!(f, "repaired tables not deadlock-free: {r}"),
            HealError::Lint(r) => write!(
                f,
                "repaired tables failed lint with {} error(s): {r}",
                r.error_count()
            ),
            HealError::Synthesis(e) => write!(f, "fallback route synthesis failed: {e}"),
        }
    }
}

/// Regenerates routes avoiding `faults` and certifies them acyclic.
/// Returns the verified tables with coverage accounting; never returns
/// unverified tables.
pub fn heal(net: &Network, ends: &[NodeId], faults: &FaultSet) -> Result<HealReport, HealError> {
    let mut mask = DeadMask::new(net);
    for l in net.links() {
        if !faults.link_ok(l) {
            mask.kill_link(l);
        }
    }
    for v in net.nodes() {
        if !faults.router_ok(v) {
            mask.kill_router(v);
        }
    }
    heal_mask(net, ends, &mask)
}

/// [`heal`] for callers that already hold a [`DeadMask`].
///
/// Every candidate table passes **two** gates before it is returned:
/// the Dally & Seitz acyclicity certificate and the full static lint
/// (fault-aware L1/L2: no coverage holes among connected survivors, no
/// dead channels or malformed paths). Either failure keeps the old
/// tables.
pub fn heal_mask(net: &Network, ends: &[NodeId], mask: &DeadMask) -> Result<HealReport, HealError> {
    let rep = repair_tables(net, ends, mask);
    let cdg_dependencies = certify_tables(net, ends, mask, &rep.tables)?;
    let routes = trace_surviving(net, ends, mask, &rep.tables);
    Ok(HealReport {
        tables: rep.tables,
        routes,
        connected_pairs: rep.connected_pairs,
        total_pairs: rep.total_pairs,
        cdg_dependencies,
    })
}

/// A heal produced by the exact route synthesizer instead of the
/// family repairer: per-pair routes with an explicit disable set,
/// certified through the same gates, plus the table projection when
/// the routes are coherent enough to install as destination tables.
#[derive(Clone, Debug)]
pub struct SynthesizedHeal {
    /// The certified per-pair routes (severed pairs have empty paths).
    pub routes: RouteSet,
    /// Turns the synthesized routing forswears (the path-disable
    /// registers to program).
    pub disables: DisableSet,
    /// The destination-table projection of `routes`, present only when
    /// every route toward each destination is port-coherent **and**
    /// the projected tables themselves pass [`certify_tables`].
    /// Synthesized routings are per-pair, which tables cannot always
    /// express; `None` keeps consumers on the dense route set.
    pub tables: Option<Routes>,
    /// Ordered pairs still connected.
    pub connected_pairs: usize,
    /// All ordered pairs.
    pub total_pairs: usize,
    /// Dependencies in the certified CDG (diagnostic).
    pub cdg_dependencies: usize,
}

impl SynthesizedHeal {
    /// Fraction of ordered pairs still routable.
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.connected_pairs as f64 / self.total_pairs as f64
        }
    }
}

/// How a fallback-capable heal succeeded.
#[derive(Clone, Debug)]
pub enum HealOutcome {
    /// The family repairer covered the fault; its certified tables.
    Repaired(Box<HealReport>),
    /// The repairer could not certify; the exact synthesizer could.
    Synthesized(Box<SynthesizedHeal>),
}

/// Routes the surviving component from scratch with the exact
/// synthesizer and pushes the result through [`certify_routes`] (and,
/// when the routes project onto coherent tables, [`certify_tables`]).
/// Never returns an uncertified routing.
pub fn synthesize_heal(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
) -> Result<SynthesizedHeal, HealError> {
    let synth = synthesize_disables_exact(net, ends, Some(mask), &ExactConfig::default())
        .map_err(HealError::Synthesis)?;
    let cdg_dependencies = certify_routes(net, ends, mask, &synth.witness.routes)?;
    let tables = Routes::from_pair_paths(net, ends, &synth.witness.routes)
        .filter(|t| certify_tables(net, ends, mask, t).is_ok());
    Ok(SynthesizedHeal {
        routes: synth.witness.routes,
        disables: synth.witness.disables,
        tables,
        connected_pairs: synth.connected_pairs,
        total_pairs: synth.total_pairs,
        cdg_dependencies,
    })
}

/// [`heal_mask`], falling back to [`synthesize_heal`] when the family
/// repairer's tables fail certification. The error of the *synthesis*
/// path is returned when both fail, since it is the terminal attempt.
pub fn heal_mask_with_fallback(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
) -> Result<HealOutcome, HealError> {
    match heal_mask(net, ends, mask) {
        Ok(rep) => Ok(HealOutcome::Repaired(Box::new(rep))),
        Err(_) => synthesize_heal(net, ends, mask).map(|s| HealOutcome::Synthesized(Box::new(s))),
    }
}

/// The certification gate itself, run directly over destination
/// tables: the Dally & Seitz acyclicity certificate (CDG built from
/// table walks) plus the full static lint, with no dense path matrix
/// materialized. Returns the certified CDG's dependency count. Public
/// so integrations that regenerate tables some other way can push them
/// through the same gate [`heal_mask`] uses.
pub fn certify_tables(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
    tables: &Routes,
) -> Result<usize, HealError> {
    let cdg = verify_deadlock_free_tables(net, ends, tables).map_err(HealError::Cyclic)?;
    let lint = Linter::new(net, ends)
        .with_subject("heal")
        .with_mask(mask)
        .without_suggestions()
        .check_tables(tables);
    if !lint.is_clean() {
        return Err(HealError::Lint(Box::new(lint)));
    }
    Ok(cdg.dependency_count())
}

/// [`certify_tables`] for a dense candidate [`RouteSet`] produced
/// outside the table pipeline. Returns the certified CDG's dependency
/// count.
pub fn certify_routes(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
    routes: &RouteSet,
) -> Result<usize, HealError> {
    let cdg = verify_deadlock_free(net, routes).map_err(HealError::Cyclic)?;
    let lint = Linter::new(net, ends)
        .with_subject("heal")
        .with_mask(mask)
        .without_suggestions()
        .check(routes);
    if !lint.is_clean() {
        return Err(HealError::Lint(Box::new(lint)));
    }
    Ok(cdg.dependency_count())
}

/// A ready-made repairer hook for
/// [`Engine::with_repairer`](fractanet_sim::Engine::with_repairer):
/// on each permanent fault it heals around the currently-dead
/// components and installs the certified tables (or leaves the old
/// tables in place when certification fails).
pub fn healing_repairer<'a>(
    net: &'a Network,
    ends: &'a [NodeId],
) -> impl FnMut(&[LinkId], &[NodeId]) -> Option<RouteSet> + 'a {
    move |dead_links, dead_routers| {
        let mask = DeadMask::from_dead(net, dead_links, dead_routers);
        match heal_mask_with_fallback(net, ends, &mask).ok()? {
            HealOutcome::Repaired(h) => Some(h.routes),
            HealOutcome::Synthesized(s) => Some(s.routes),
        }
    }
}

/// Table-flavored [`healing_repairer`] for
/// [`Engine::with_table_repairer`](fractanet_sim::Engine::with_table_repairer):
/// repairs **incrementally** — only table columns whose referenced
/// channels died are rebuilt when the survivor order is unchanged —
/// then certifies the patched tables directly and installs them as a
/// shared epoch. No dense path is ever traced on this hot path.
pub fn table_healing_repairer<'a>(
    net: &'a Network,
    ends: &'a [NodeId],
) -> impl FnMut(&[LinkId], &[NodeId]) -> Option<Arc<Routes>> + 'a {
    let mut inc = IncrementalRepair::new(net, ends);
    move |dead_links, dead_routers| {
        let mask = DeadMask::from_dead(net, dead_links, dead_routers);
        let rep = inc.repair(&mask);
        if certify_tables(net, ends, &mask, &rep.tables).is_ok() {
            return Some(Arc::new(rep.tables));
        }
        // Family repair could not certify: fall back to the exact
        // synthesizer, installable only when its routes project onto
        // coherent tables (certified inside synthesize_heal). The old
        // tables stay otherwise.
        synthesize_heal(net, ends, &mask)
            .ok()
            .and_then(|s| s.tables)
            .map(Arc::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_sim::{Engine, FaultEvent, RetryPolicy, SimConfig, Workload};
    use fractanet_topo::{Fractahedron, Hypercube, Ring, Topology, Variant};

    fn router_link(net: &Network) -> LinkId {
        net.links()
            .find(|&l| {
                let info = net.link(l);
                net.is_router(info.a.0) && net.is_router(info.b.0)
            })
            .unwrap()
    }

    #[test]
    fn heal_certifies_hypercube_repair() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let mut faults = FaultSet::none();
        faults.kill_link(router_link(h.net()));
        let rep = heal(h.net(), h.end_nodes(), &faults).unwrap();
        assert!(rep.is_full());
        assert_eq!(rep.coverage(), 1.0);
        assert!(rep.cdg_dependencies > 0);
    }

    #[test]
    fn heal_reports_partial_coverage() {
        let r = Ring::new(4, 1, 6).unwrap();
        let mut faults = FaultSet::none();
        let router0 = r.net().channels_from(r.end_nodes()[0]).first().unwrap().1;
        faults.kill_router(router0);
        let rep = heal(r.net(), r.end_nodes(), &faults).unwrap();
        assert!(!rep.is_full());
        assert_eq!(rep.connected_pairs, 6);
        assert!((rep.coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn certify_rejects_coverage_hole() {
        // Regression (PR 1 bug class): a repaired table missing a pair
        // that is still physically connected must not certify.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let mut mask = DeadMask::new(h.net());
        mask.kill_link(router_link(h.net()));
        let rep = fractanet_route::repair::repair_routes(h.net(), h.end_nodes(), &mask).unwrap();
        assert!(rep.is_full());
        let n = rep.routes.len();
        let holed = RouteSet::from_pairs(n, |s, d| {
            if (s, d) == (1, 6) {
                Vec::new()
            } else {
                rep.routes.path(s, d).to_vec()
            }
        });
        let err = certify_routes(h.net(), h.end_nodes(), &mask, &holed).unwrap_err();
        let HealError::Lint(report) = err else {
            panic!("expected lint rejection, got {err}");
        };
        assert!(report.to_string().contains("coverage hole"), "{report}");
    }

    #[test]
    fn certify_rejects_dead_channel_in_path() {
        // Regression (PR 1 bug class): installing the *pre-fault*
        // tables after a link dies must not certify — some path still
        // crosses the dead link.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let stale = RouteSet::from_table(
            h.net(),
            h.end_nodes(),
            &fractanet_route::dor::ecube_routes(&h),
        )
        .unwrap();
        let victim = stale.path(0, 1)[1].link();
        let mut mask = DeadMask::new(h.net());
        mask.kill_link(victim);
        let err = certify_routes(h.net(), h.end_nodes(), &mask, &stale).unwrap_err();
        let HealError::Lint(report) = err else {
            panic!("expected lint rejection, got {err}");
        };
        assert!(report.to_string().contains("dead"), "{report}");
    }

    #[test]
    fn healing_repairer_recovers_live_run() {
        // End-to-end: fat fractahedron, one inter-router link killed
        // mid-run, repairer heals, every packet delivered via retry.
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let routes = fractanet_route::fractal::fractal_routes(&f);
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        let victim = router_link(f.net());
        let cfg = SimConfig {
            packet_flits: 16,
            max_cycles: 30_000,
            retry: RetryPolicy {
                ack_timeout: 16,
                max_retries: 6,
                backoff_base: 16,
                jitter_seed: 3,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(victim, 20));
        let res = Engine::new(f.net(), &rs, cfg)
            .with_repairer(healing_repairer(f.net(), f.end_nodes()))
            .run(Workload::all_to_all_burst(8));
        assert!(res.deadlock.is_none(), "{:?}", res.deadlock);
        assert_eq!(res.delivered, res.generated, "{:?}", res.recovery);
        assert_eq!(res.recovery.repairs_installed, 1);
    }

    #[test]
    fn table_healing_repairer_matches_dense_repairer() {
        // Same fault scenario through the epoch/table pipeline: the
        // incremental table repairer must deliver everything with the
        // same recovery accounting as the dense path-snapshot one.
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let routes = fractanet_route::fractal::fractal_routes(&f);
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        let victim = router_link(f.net());
        let cfg = SimConfig {
            packet_flits: 16,
            max_cycles: 30_000,
            retry: RetryPolicy {
                ack_timeout: 16,
                max_retries: 6,
                backoff_base: 16,
                jitter_seed: 3,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(victim, 20));
        let dense = Engine::new(f.net(), &rs, cfg.clone())
            .with_repairer(healing_repairer(f.net(), f.end_nodes()))
            .run(Workload::all_to_all_burst(8));
        let tabled = Engine::with_tables(f.net(), f.end_nodes(), Arc::new(routes), cfg)
            .with_table_repairer(table_healing_repairer(f.net(), f.end_nodes()))
            .run(Workload::all_to_all_burst(8));
        assert!(tabled.deadlock.is_none(), "{:?}", tabled.deadlock);
        assert_eq!(tabled.delivered, tabled.generated, "{:?}", tabled.recovery);
        assert_eq!(tabled.recovery.repairs_installed, 1);
        assert_eq!(tabled.delivered, dense.delivered);
        assert_eq!(tabled.cycles, dense.cycles);
        assert_eq!(tabled.avg_latency, dense.avg_latency);
        assert_eq!(tabled.max_latency, dense.max_latency);
    }

    #[test]
    fn synthesize_heal_certifies_faulted_ring() {
        // Kill one inter-router link of a 5-ring: the survivors form a
        // line; the synthesizer must route all pairs, certify, and
        // project onto installable tables.
        let r = Ring::new(5, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        mask.kill_link(router_link(r.net()));
        let s = synthesize_heal(r.net(), r.end_nodes(), &mask).unwrap();
        assert_eq!(s.connected_pairs, s.total_pairs);
        assert!((s.coverage() - 1.0).abs() < 1e-9);
        // The synthesized routes re-certify from scratch.
        assert!(certify_routes(r.net(), r.end_nodes(), &mask, &s.routes).is_ok());
        // A line has an acyclic CDG under shortest-path routing, so
        // the projection must be coherent and itself certified.
        let tables = s.tables.expect("line routing projects onto tables");
        assert!(certify_tables(r.net(), r.end_nodes(), &mask, &tables).is_ok());
        // No route crosses the dead link.
        for (sa, da, p) in s.routes.pairs() {
            assert!(
                p.iter().all(|c| mask.link_ok(c.link())),
                "pair ({sa},{da}) crosses the dead link"
            );
        }
    }

    #[test]
    fn fallback_prefers_family_repair_when_it_certifies() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let mut mask = DeadMask::new(h.net());
        mask.kill_link(router_link(h.net()));
        let out = heal_mask_with_fallback(h.net(), h.end_nodes(), &mask).unwrap();
        let HealOutcome::Repaired(rep) = out else {
            panic!("up*/down* repair covers a one-link fault on the cube");
        };
        assert!(rep.is_full());
    }

    #[test]
    fn synthesize_heal_covers_partial_survivors() {
        // Kill end node 0's attach router: the synthesizer covers the
        // surviving component and leaves the severed pairs unrouted.
        let r = Ring::new(4, 1, 6).unwrap();
        let router0 = r.net().channels_from(r.end_nodes()[0]).first().unwrap().1;
        let mut mask = DeadMask::new(r.net());
        mask.kill_router(router0);
        let s = synthesize_heal(r.net(), r.end_nodes(), &mask).unwrap();
        assert_eq!(s.connected_pairs, 6);
        assert!((s.coverage() - 0.5).abs() < 1e-9);
        for (sa, da, p) in s.routes.pairs() {
            if sa == 0 || da == 0 {
                assert!(p.is_empty(), "severed pair ({sa},{da}) got a route");
            } else if sa != da {
                assert!(!p.is_empty(), "surviving pair ({sa},{da}) unrouted");
            }
        }
    }

    // ------------------------------------------------------------------
    // Healing under brownouts (property-based).
    //
    // A brownout alternates a link dead/alive. Two properties keep
    // healing honest under that regime: tables repaired *during* a down
    // phase must never route over the browned-out link, and once the
    // link is back (an empty mask), incremental repair must converge to
    // exactly the pristine tables — no residue from the detour epoch.

    fn router_links(net: &Network) -> Vec<LinkId> {
        net.links()
            .filter(|&l| {
                let info = net.link(l);
                net.is_router(info.a.0) && net.is_router(info.b.0)
            })
            .collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        #[test]
        fn heal_during_down_phase_avoids_the_browned_out_link(pick in 0usize..64) {
            let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
            let links = router_links(f.net());
            let victim = links[pick % links.len()];
            let mut mask = DeadMask::new(f.net());
            mask.kill_link(victim);
            let rep = heal_mask(f.net(), f.end_nodes(), &mask).unwrap();
            let n = f.end_nodes().len();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let path = rep.routes.path(s, d);
                    proptest::prop_assert!(
                        path.iter().all(|c| c.link() != victim),
                        "pair ({s},{d}) routed over down link {victim:?}"
                    );
                }
            }
        }

        #[test]
        fn repair_after_brownout_ends_is_bit_identical_to_pristine(pick in 0usize..64) {
            let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
            let links = router_links(f.net());
            let victim = links[pick % links.len()];
            let empty = DeadMask::new(f.net());
            let pristine = IncrementalRepair::new(f.net(), f.end_nodes())
                .repair(&empty)
                .tables;
            // Down phase: repair around the victim; up phase: repair
            // again with nothing dead.
            let mut inc = IncrementalRepair::new(f.net(), f.end_nodes());
            let mut down = DeadMask::new(f.net());
            down.kill_link(victim);
            let detour = inc.repair(&down).tables;
            proptest::prop_assert_ne!(&detour, &pristine);
            let healed = inc.repair(&empty).tables;
            proptest::prop_assert_eq!(&healed, &pristine);
        }
    }
}
