//! Dual router fabrics.
//!
//! "Full network fault-tolerance can be provided by configuring pairs
//! of router fabrics with dual-ported nodes" (§1). The two fabrics
//! (conventionally X and Y) are identical, independent networks; every
//! end node has one port on each. A transfer uses one fabric end to
//! end; when faults make a pair unreachable on its preferred fabric,
//! the node's driver fails over to the other.

use crate::faults::{transfer_ok, FaultSet};
use fractanet_topo::Topology;

/// Which of the paired fabrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricId {
    /// The X fabric (preferred by default).
    X,
    /// The Y fabric.
    Y,
}

/// A pair of identical fabrics with per-fabric fault state.
#[derive(Clone, Debug)]
pub struct DualFabric<T: Topology> {
    /// The X fabric.
    pub x: T,
    /// The Y fabric.
    pub y: T,
    /// Faults currently afflicting X.
    pub x_faults: FaultSet,
    /// Faults currently afflicting Y.
    pub y_faults: FaultSet,
}

impl<T: Topology> DualFabric<T> {
    /// Builds the pair from a topology constructor (called twice, so
    /// the fabrics are independent instances). Both must expose the
    /// same number of end nodes in the same address order.
    pub fn new(mut build: impl FnMut() -> T) -> Self {
        let x = build();
        let y = build();
        assert_eq!(
            x.end_nodes().len(),
            y.end_nodes().len(),
            "paired fabrics must agree on the node population"
        );
        DualFabric {
            x,
            y,
            x_faults: FaultSet::none(),
            y_faults: FaultSet::none(),
        }
    }

    /// Number of (dual-ported) end nodes.
    pub fn node_count(&self) -> usize {
        self.x.end_nodes().len()
    }

    /// Which fabric can carry a transfer between addresses `a` and
    /// `b`, preferring X; `None` means the pair is cut off on both.
    pub fn serving_fabric(&self, a: usize, b: usize) -> Option<FabricId> {
        let xa = self.x.end_nodes()[a];
        let xb = self.x.end_nodes()[b];
        if transfer_ok(self.x.net(), &self.x_faults, xa, xb) {
            return Some(FabricId::X);
        }
        let ya = self.y.end_nodes()[a];
        let yb = self.y.end_nodes()[b];
        if transfer_ok(self.y.net(), &self.y_faults, ya, yb) {
            return Some(FabricId::Y);
        }
        None
    }

    /// Fraction of unordered pairs that can still communicate (on
    /// either fabric).
    pub fn surviving_pair_fraction(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 1.0;
        }
        let mut ok = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.serving_fabric(a, b).is_some() {
                    ok += 1;
                }
            }
        }
        ok as f64 / (n * (n - 1) / 2) as f64
    }

    /// How many pairs had to fail over to Y.
    pub fn failover_pair_count(&self) -> usize {
        let n = self.node_count();
        let mut c = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.serving_fabric(a, b) == Some(FabricId::Y) {
                    c += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{Fractahedron, Variant};

    fn pair() -> DualFabric<Fractahedron> {
        DualFabric::new(|| Fractahedron::new(1, Variant::Fat, false).unwrap())
    }

    #[test]
    fn healthy_pair_prefers_x() {
        let d = pair();
        assert_eq!(d.serving_fabric(0, 7), Some(FabricId::X));
        assert_eq!(d.surviving_pair_fraction(), 1.0);
        assert_eq!(d.failover_pair_count(), 0);
    }

    #[test]
    fn x_fault_fails_over_to_y() {
        let mut d = pair();
        // Kill node 0's X attach link.
        let x0 = d.x.end_nodes()[0];
        let attach = d.x.net().channels_from(x0)[0].0.link();
        d.x_faults.kill_link(attach);
        assert_eq!(d.serving_fabric(0, 5), Some(FabricId::Y));
        assert_eq!(
            d.surviving_pair_fraction(),
            1.0,
            "the pair masks a single fault"
        );
        assert_eq!(
            d.failover_pair_count(),
            7,
            "all of node 0's pairs moved to Y"
        );
    }

    #[test]
    fn double_fault_on_both_fabrics_cuts_a_pair() {
        let mut d = pair();
        let x0 = d.x.end_nodes()[0];
        let y0 = d.y.end_nodes()[0];
        let ax = d.x.net().channels_from(x0)[0].0.link();
        let ay = d.y.net().channels_from(y0)[0].0.link();
        d.x_faults.kill_link(ax);
        d.y_faults.kill_link(ay);
        assert_eq!(d.serving_fabric(0, 3), None);
        assert!(d.surviving_pair_fraction() < 1.0);
        // Other pairs are untouched.
        assert_eq!(d.serving_fabric(2, 3), Some(FabricId::X));
    }

    #[test]
    fn router_fault_masked_at_scale() {
        let mut d = DualFabric::new(Fractahedron::paper_fat_64);
        // Kill an entire level-2 router on X.
        d.x_faults.kill_router(d.x.router(2, 0, 0, 0));
        assert_eq!(d.surviving_pair_fraction(), 1.0);
        // X itself retains full connectivity here too (layer
        // redundancy), so no failover is needed.
        assert_eq!(d.failover_pair_count(), 0);
        // But killing all four layer-0..3 routers at one corner forces
        // failovers? Layers are independent; kill corner 0 router in
        // every layer.
        for layer in 0..4 {
            d.x_faults.kill_router(d.x.router(2, 0, layer, 0));
        }
        assert_eq!(d.surviving_pair_fraction(), 1.0, "Y masks the damage");
        assert!(d.failover_pair_count() > 0, "some pairs must fail over");
    }
}
