//! The physical link model.
//!
//! "The first implementation of ServerNet … has byte-serial
//! point-to-point 50 MB/sec links. Full duplex operation is provided
//! by pairing two unidirectional links in a cable that can reach up to
//! 30 meters" (§1).

/// Physical parameters of one ServerNet cable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Per-direction bandwidth in bytes per second.
    pub bytes_per_second: u64,
    /// Cable length in meters.
    pub length_m: f64,
}

/// Signal propagation speed in copper, m/s (~0.66 c).
const PROPAGATION_M_PER_S: f64 = 2.0e8;

impl LinkSpec {
    /// Maximum cable length the first-generation spec allows.
    pub const MAX_LENGTH_M: f64 = 30.0;

    /// The first-generation 50 MB/s ServerNet link at a given length.
    /// Panics beyond the 30 m cable limit.
    pub fn first_generation(length_m: f64) -> Self {
        assert!(
            (0.0..=Self::MAX_LENGTH_M).contains(&length_m),
            "ServerNet cables reach up to 30 meters"
        );
        LinkSpec {
            bytes_per_second: 50_000_000,
            length_m,
        }
    }

    /// Seconds to clock `bytes` onto the wire (serialization delay).
    pub fn serialization_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_second as f64
    }

    /// One-way propagation delay in seconds.
    pub fn propagation_s(&self) -> f64 {
        self.length_m / PROPAGATION_M_PER_S
    }

    /// Total one-way transfer time for a packet of `bytes`.
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.serialization_s(bytes) + self.propagation_s()
    }

    /// Byte times per simulator cycle if one cycle clocks one byte —
    /// lets experiments convert simulated cycles into wall time.
    pub fn cycle_s(&self) -> f64 {
        1.0 / self.bytes_per_second as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_generation_bandwidth() {
        let l = LinkSpec::first_generation(10.0);
        assert_eq!(l.bytes_per_second, 50_000_000);
        // 64 bytes at 50 MB/s = 1.28 microseconds.
        assert!((l.serialization_s(64) - 1.28e-6).abs() < 1e-12);
    }

    #[test]
    fn propagation_scales_with_length() {
        let short = LinkSpec::first_generation(3.0);
        let long = LinkSpec::first_generation(30.0);
        assert!((long.propagation_s() / short.propagation_s() - 10.0).abs() < 1e-9);
        // 30 m at 2e8 m/s = 150 ns.
        assert!((long.propagation_s() - 150e-9).abs() < 1e-12);
    }

    #[test]
    fn transfer_combines_both_terms() {
        let l = LinkSpec::first_generation(30.0);
        assert!(l.transfer_s(64) > l.serialization_s(64));
        assert!(l.transfer_s(64) > l.propagation_s());
        assert!((l.transfer_s(64) - l.serialization_s(64) - l.propagation_s()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "30 meters")]
    fn cable_limit_enforced() {
        let _ = LinkSpec::first_generation(31.0);
    }

    #[test]
    fn cycle_time_is_byte_time() {
        let l = LinkSpec::first_generation(1.0);
        assert!((l.cycle_s() - 20e-9).abs() < 1e-15); // 20 ns per byte
    }
}
