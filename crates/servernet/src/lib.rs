//! # fractanet-servernet
//!
//! The ServerNet substrate: the concrete system the paper's topologies
//! are built from (§1–2).
//!
//! * [`router`] — the 6-port router ASIC model: destination-indexed
//!   routing-table ROM plus **path-disable registers** that reject
//!   illegal turns "even if the routing table is corrupted by a fault"
//!   (§2.4).
//! * [`link`] — the physical link model: byte-serial 50 MB/s
//!   full-duplex cables up to 30 m (§1), with transfer-time and
//!   propagation helpers.
//! * [`packet`] — a ServerNet-style packet format (destination/source
//!   IDs, transaction kind, ≤ 64-byte payload, checksum) with strict
//!   decode — the "lightweight protocol" whose in-order requirement
//!   drives the paper's fixed-path routing.
//! * [`fabric`] — dual router fabrics with dual-ported nodes ("Full
//!   network fault-tolerance can be provided by configuring pairs of
//!   router fabrics with dual-ported nodes") and failover selection.
//! * [`faults`] — link/router fault injection, reflexive-path checking
//!   (data *and* acknowledgment must traverse the fabric), and random
//!   fault campaigns.
//! * [`healing`] — certified self-healing: fault-avoiding route
//!   regeneration, proven deadlock-free before installation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod faults;
pub mod healing;
pub mod link;
pub mod packet;
pub mod router;
pub mod transactions;

pub use fabric::{DualFabric, FabricId};
pub use faults::FaultSet;
pub use healing::{
    certify_routes, certify_tables, heal, heal_mask, heal_mask_with_fallback, healing_repairer,
    synthesize_heal, table_healing_repairer, HealError, HealOutcome, HealReport, SynthesizedHeal,
};
pub use link::LinkSpec;
pub use packet::{segment_transfer, Packet, PacketError, TransactionKind};
pub use router::{ForwardError, RouterAsic};
pub use transactions::{
    execute, run_with_failover, DedupFilter, FabricSim, FailoverOutcome, Transaction, TxError,
    TxOutcome,
};
