//! The transaction layer: DMA reads and writes with acknowledgments.
//!
//! ServerNet transfers are acknowledged, which is why §2 worries about
//! *reflexive* usability: "There may be nothing wrong with any of the
//! hardware along the path from A to B, but that path may be unusable
//! due to the inability to send acknowledgments back from B to A."
//! With destination-indexed tables the B→A route generally uses
//! *different* links than A→B (each ascends from its own corner), so a
//! single fault can break a transaction in one direction only — this
//! module makes that failure mode explicit and testable.

use crate::faults::FaultSet;
use crate::link::LinkSpec;
use crate::packet::{segment_transfer, Packet, TransactionKind, MAX_PAYLOAD};
use fractanet_graph::{ChannelId, Network};
use fractanet_route::RouteSet;
use std::fmt;

/// A requested transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transaction {
    /// Read `bytes` from `from` into `to` (request travels to → from,
    /// data travels back).
    Read {
        /// Requesting node.
        to: usize,
        /// Node holding the data.
        from: usize,
        /// Payload size.
        bytes: usize,
    },
    /// Write `bytes` from `from` to `to`, acknowledged.
    Write {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Payload size.
        bytes: usize,
    },
}

/// Why a transaction could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// The data-bearing direction is down.
    DataPathDown {
        /// First dead channel encountered.
        at: ChannelId,
    },
    /// The data path is healthy but the acknowledgment direction is
    /// not — the paper's non-reflexive failure.
    AckPathDown {
        /// First dead channel encountered on the return route.
        at: ChannelId,
    },
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::DataPathDown { at } => write!(f, "data path down at {at:?}"),
            TxError::AckPathDown { at } => {
                write!(f, "acknowledgment path down at {at:?} (data path is healthy)")
            }
        }
    }
}

/// Result of a completed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct TxOutcome {
    /// Data packets plus the trailing interrupt.
    pub data_packets: usize,
    /// Acknowledgments returned.
    pub ack_packets: usize,
    /// Estimated wall-clock round trip on first-generation links.
    pub round_trip_s: f64,
}

/// First dead channel on a path, if any.
fn first_fault(net: &Network, faults: &FaultSet, path: &[ChannelId]) -> Option<ChannelId> {
    path.iter().copied().find(|&ch| {
        !faults.link_ok(ch.link())
            || !faults.router_ok(net.channel_src(ch))
            || !faults.router_ok(net.channel_dst(ch))
    })
}

/// One-way pipelined wormhole transfer time for `bytes` over `hops`
/// routers: serialization of the whole payload plus one
/// cycle-and-propagation per hop for the head.
fn one_way_s(link: &LinkSpec, hops: usize, bytes: usize) -> f64 {
    link.serialization_s(bytes as u64) + hops as f64 * (link.cycle_s() + link.propagation_s())
}

/// Executes (checks and times) a transaction over fixed table routes.
/// Packets are segmented per the wire format; each data packet is
/// acknowledged.
pub fn execute(
    net: &Network,
    routes: &RouteSet,
    faults: &FaultSet,
    link: &LinkSpec,
    tx: Transaction,
) -> Result<TxOutcome, TxError> {
    let (data_src, data_dst, bytes, request_first) = match tx {
        Transaction::Read { to, from, bytes } => (from, to, bytes, true),
        Transaction::Write { from, to, bytes } => (from, to, bytes, false),
    };
    let data_path = routes.path(data_src, data_dst);
    let ack_path = routes.path(data_dst, data_src);
    if let Some(at) = first_fault(net, faults, data_path) {
        return Err(TxError::DataPathDown { at });
    }
    if let Some(at) = first_fault(net, faults, ack_path) {
        return Err(TxError::AckPathDown { at });
    }

    let packets = segment_transfer(data_dst as u16, data_src as u16, &vec![0u8; bytes]);
    let data_hops = data_path.len().saturating_sub(1);
    let ack_hops = ack_path.len().saturating_sub(1);
    let ack = Packet::new(data_src as u16, data_dst as u16, TransactionKind::Ack, Vec::new());

    let mut t = 0.0;
    if request_first {
        // Read request: a header-only packet travels the ack path
        // first.
        let req =
            Packet::new(data_src as u16, data_dst as u16, TransactionKind::ReadRequest, Vec::new());
        t += one_way_s(link, ack_hops, req.wire_len());
    }
    for p in &packets {
        t += one_way_s(link, data_hops, p.wire_len());
    }
    // Acks pipeline behind the data; the last one bounds completion.
    t += one_way_s(link, ack_hops, ack.wire_len());

    Ok(TxOutcome { data_packets: packets.len(), ack_packets: packets.len(), round_trip_s: t })
}

/// How many payload packets a transfer needs (excluding the
/// interrupt).
pub fn packets_for(bytes: usize) -> usize {
    bytes.div_ceil(MAX_PAYLOAD).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_topo::{Fractahedron, Topology, Variant};

    fn setup() -> (Fractahedron, RouteSet) {
        let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
        let routes = fractal_routes(&f);
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        (f, rs)
    }

    #[test]
    fn healthy_write_completes() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let out = execute(
            f.net(),
            &rs,
            &FaultSet::none(),
            &link,
            Transaction::Write { from: 3, to: 60, bytes: 200 },
        )
        .unwrap();
        assert_eq!(out.data_packets, 5); // 64+64+64+8 writes + interrupt
        assert_eq!(out.ack_packets, 5);
        assert!(out.round_trip_s > 0.0 && out.round_trip_s < 1e-3);
    }

    #[test]
    fn read_costs_an_extra_request_leg() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let faults = FaultSet::none();
        let w = execute(f.net(), &rs, &faults, &link, Transaction::Write {
            from: 3,
            to: 60,
            bytes: 64,
        })
        .unwrap();
        let r = execute(f.net(), &rs, &faults, &link, Transaction::Read {
            to: 3,
            from: 60,
            bytes: 64,
        })
        .unwrap();
        assert!(r.round_trip_s > w.round_trip_s, "{} vs {}", r.round_trip_s, w.round_trip_s);
    }

    #[test]
    fn forward_fault_reported_as_data_path() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let mut faults = FaultSet::none();
        // Kill the first hop of 3 -> 60.
        let ch = rs.path(3, 60)[0];
        faults.kill_link(ch.link());
        let err = execute(f.net(), &rs, &faults, &link, Transaction::Write {
            from: 3,
            to: 60,
            bytes: 8,
        })
        .unwrap_err();
        assert!(matches!(err, TxError::DataPathDown { .. }), "{err}");
    }

    #[test]
    fn non_reflexive_fault_breaks_only_the_ack() {
        // The paper's §2 scenario: the A->B hardware is fine, but B->A
        // uses different links (each direction ascends from its own
        // corner), and a fault there kills the transaction anyway.
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let fwd: Vec<_> = rs.path(3, 60).to_vec();
        let rev: Vec<_> = rs.path(60, 3).to_vec();
        // Find a reverse-only cable.
        let rev_only = rev
            .iter()
            .map(|c| c.link())
            .find(|l| !fwd.iter().any(|c| c.link() == *l))
            .expect("fractahedral reverse routes use different links");
        let mut faults = FaultSet::none();
        faults.kill_link(rev_only);
        let err = execute(f.net(), &rs, &faults, &link, Transaction::Write {
            from: 3,
            to: 60,
            bytes: 8,
        })
        .unwrap_err();
        assert!(matches!(err, TxError::AckPathDown { .. }), "{err}");
        // The data direction alone would have been fine.
        assert!(first_fault(f.net(), &faults, &fwd).is_none());
    }

    #[test]
    fn packet_count_helper() {
        assert_eq!(packets_for(0), 1);
        assert_eq!(packets_for(64), 1);
        assert_eq!(packets_for(65), 2);
        assert_eq!(packets_for(200), 4);
    }

    #[test]
    fn longer_paths_take_longer() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let faults = FaultSet::none();
        // Same-router pair (1 hop) vs cross-hierarchy pair (5 hops).
        let near = execute(f.net(), &rs, &faults, &link, Transaction::Write {
            from: 0,
            to: 1,
            bytes: 64,
        })
        .unwrap();
        let far = execute(f.net(), &rs, &faults, &link, Transaction::Write {
            from: 0,
            to: 63,
            bytes: 64,
        })
        .unwrap();
        assert!(far.round_trip_s > near.round_trip_s);
    }
}
