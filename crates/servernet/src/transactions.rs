//! The transaction layer: DMA reads and writes with acknowledgments.
//!
//! ServerNet transfers are acknowledged, which is why §2 worries about
//! *reflexive* usability: "There may be nothing wrong with any of the
//! hardware along the path from A to B, but that path may be unusable
//! due to the inability to send acknowledgments back from B to A."
//! With destination-indexed tables the B→A route generally uses
//! *different* links than A→B (each ascends from its own corner), so a
//! single fault can break a transaction in one direction only — this
//! module makes that failure mode explicit and testable.

use crate::faults::FaultSet;
use crate::healing::healing_repairer;
use crate::link::LinkSpec;
use crate::packet::{segment_transfer, Packet, TransactionKind, MAX_PAYLOAD};
use fractanet_graph::{ChannelId, Network, NodeId};
use fractanet_route::RouteSet;
use fractanet_sim::{Engine, SimConfig, SimResult, VcMap, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A requested transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transaction {
    /// Read `bytes` from `from` into `to` (request travels to → from,
    /// data travels back).
    Read {
        /// Requesting node.
        to: usize,
        /// Node holding the data.
        from: usize,
        /// Payload size.
        bytes: usize,
    },
    /// Write `bytes` from `from` to `to`, acknowledged.
    Write {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Payload size.
        bytes: usize,
    },
}

/// Why a transaction could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// The data-bearing direction is down.
    DataPathDown {
        /// First dead channel encountered.
        at: ChannelId,
    },
    /// The data path is healthy but the acknowledgment direction is
    /// not — the paper's non-reflexive failure.
    AckPathDown {
        /// First dead channel encountered on the return route.
        at: ChannelId,
    },
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::DataPathDown { at } => write!(f, "data path down at {at:?}"),
            TxError::AckPathDown { at } => {
                write!(
                    f,
                    "acknowledgment path down at {at:?} (data path is healthy)"
                )
            }
        }
    }
}

/// Result of a completed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct TxOutcome {
    /// Data packets plus the trailing interrupt.
    pub data_packets: usize,
    /// Acknowledgments returned.
    pub ack_packets: usize,
    /// Estimated wall-clock round trip on first-generation links.
    pub round_trip_s: f64,
}

/// First dead channel on a path, if any.
fn first_fault(net: &Network, faults: &FaultSet, path: &[ChannelId]) -> Option<ChannelId> {
    path.iter().copied().find(|&ch| {
        !faults.link_ok(ch.link())
            || !faults.router_ok(net.channel_src(ch))
            || !faults.router_ok(net.channel_dst(ch))
    })
}

/// One-way pipelined wormhole transfer time for `bytes` over `hops`
/// routers: serialization of the whole payload plus one
/// cycle-and-propagation per hop for the head.
fn one_way_s(link: &LinkSpec, hops: usize, bytes: usize) -> f64 {
    link.serialization_s(bytes as u64) + hops as f64 * (link.cycle_s() + link.propagation_s())
}

/// Executes (checks and times) a transaction over fixed table routes.
/// Packets are segmented per the wire format; each data packet is
/// acknowledged.
pub fn execute(
    net: &Network,
    routes: &RouteSet,
    faults: &FaultSet,
    link: &LinkSpec,
    tx: Transaction,
) -> Result<TxOutcome, TxError> {
    let (data_src, data_dst, bytes, request_first) = match tx {
        Transaction::Read { to, from, bytes } => (from, to, bytes, true),
        Transaction::Write { from, to, bytes } => (from, to, bytes, false),
    };
    let data_path = routes.path(data_src, data_dst);
    let ack_path = routes.path(data_dst, data_src);
    if let Some(at) = first_fault(net, faults, data_path) {
        return Err(TxError::DataPathDown { at });
    }
    if let Some(at) = first_fault(net, faults, ack_path) {
        return Err(TxError::AckPathDown { at });
    }

    let packets = segment_transfer(data_dst as u16, data_src as u16, 0, &vec![0u8; bytes]);
    let data_hops = data_path.len().saturating_sub(1);
    let ack_hops = ack_path.len().saturating_sub(1);
    let ack = Packet::new(
        data_src as u16,
        data_dst as u16,
        TransactionKind::Ack,
        Vec::new(),
    );

    let mut t = 0.0;
    if request_first {
        // Read request: a header-only packet travels the ack path
        // first.
        let req = Packet::new(
            data_src as u16,
            data_dst as u16,
            TransactionKind::ReadRequest,
            Vec::new(),
        );
        t += one_way_s(link, ack_hops, req.wire_len());
    }
    for p in &packets {
        t += one_way_s(link, data_hops, p.wire_len());
    }
    // Acks pipeline behind the data; the last one bounds completion.
    t += one_way_s(link, ack_hops, ack.wire_len());

    Ok(TxOutcome {
        data_packets: packets.len(),
        ack_packets: packets.len(),
        round_trip_s: t,
    })
}

/// How many payload packets a transfer needs (excluding the
/// interrupt).
pub fn packets_for(bytes: usize) -> usize {
    bytes.div_ceil(MAX_PAYLOAD).max(1)
}

/// Destination-side exactly-once filter.
///
/// A sender whose ACK timeout races the delivery retransmits a copy of
/// the same packet; both can arrive. The destination remembers, per
/// `(src, dst)` pair, every sequence number it has accepted and
/// rejects repeats — the end-node half of the engine's
/// `duplicates_suppressed` accounting, expressed over wire packets.
#[derive(Clone, Debug, Default)]
pub struct DedupFilter {
    seen: BTreeMap<(u16, u16), BTreeSet<u32>>,
}

impl DedupFilter {
    /// An empty filter (nothing yet delivered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts `p` if its `(src, dst, seq)` triple is new; returns
    /// `false` (and leaves state unchanged) for a duplicate.
    pub fn accept(&mut self, p: &Packet) -> bool {
        self.seen.entry((p.src, p.dst)).or_default().insert(p.seq)
    }

    /// Packets accepted so far.
    pub fn accepted(&self) -> usize {
        self.seen.values().map(BTreeSet::len).sum()
    }
}

/// One fabric's inputs to the failover driver: a network, its fixed
/// per-pair tables, the shared end-node population, and a simulation
/// configuration whose [`fractanet_sim::RetryPolicy`] supplies the
/// acknowledgment timeout, the retry bound `K` (`max_retries`), and
/// the exponential-backoff/jitter parameters.
pub struct FabricSim<'a> {
    /// The fabric's network.
    pub net: &'a Network,
    /// Fixed routing tables — one path per ordered pair, the paper's
    /// §3.3 in-order requirement.
    pub routes: &'a RouteSet,
    /// End nodes, in the address order shared by both fabrics.
    pub ends: &'a [NodeId],
    /// Simulation config, including this fabric's fault schedule and
    /// retry policy.
    pub cfg: SimConfig,
    /// Install certified self-healing tables on permanent faults
    /// (see [`crate::healing`]).
    pub heal: bool,
    /// Virtual-channel assignment discipline for this fabric's
    /// routers, `None` for single-VC fabrics. Route-agnostic maps
    /// (dateline, e-cube classes) stay valid across healed tables.
    pub vc: Option<VcMap>,
}

/// Combined result of an X-fabric run with failover replay on Y.
#[derive(Clone, Debug)]
pub struct FailoverOutcome {
    /// The primary (X) fabric's run.
    pub x: SimResult,
    /// The Y-fabric run replaying X's abandoned transfers (`None`
    /// when X abandoned nothing).
    pub y: Option<SimResult>,
    /// Transfers that failed over after exhausting `K` attempts on X.
    pub failovers: usize,
    /// `(src, dst)` transfers abandoned on *both* fabrics.
    pub unrecovered: Vec<(usize, usize)>,
}

impl FailoverOutcome {
    /// Transfers requested of the fabric pair (failover replays are
    /// not counted twice).
    pub fn total_generated(&self) -> usize {
        self.x.generated
    }

    /// Transfers completed, on either fabric.
    pub fn total_delivered(&self) -> usize {
        self.x.delivered + self.y.as_ref().map_or(0, |r| r.delivered)
    }

    /// End-to-end delivery fraction across both fabrics.
    pub fn delivery_ratio(&self) -> f64 {
        if self.total_generated() == 0 {
            1.0
        } else {
            self.total_delivered() as f64 / self.total_generated() as f64
        }
    }

    /// Whether every transfer completed and neither fabric deadlocked.
    pub fn is_recovered(&self) -> bool {
        self.x.deadlock.is_none()
            && self.y.iter().all(|r| r.deadlock.is_none())
            && self.total_delivered() == self.total_generated()
    }
}

fn run_fabric(f: &FabricSim<'_>, workload: Workload) -> SimResult {
    let mut engine = Engine::new(f.net, f.routes, f.cfg.clone());
    if let Some(map) = &f.vc {
        engine = engine.with_vc_map(map.clone());
    }
    if f.heal {
        engine
            .with_repairer(healing_repairer(f.net, f.ends))
            .run(workload)
    } else {
        engine.run(workload)
    }
}

/// Runs `workload` on the X fabric — with its fault schedule, ACK
/// timeouts, bounded retries, and optional self-healing — then
/// replays every transfer X abandoned on the Y fabric.
///
/// Each transfer uses one fabric end to end, and the Y replay starts
/// only after the X run fully drains, so a pair's Y-fabric deliveries
/// follow all of its X-fabric deliveries; with one fixed path per
/// pair per fabric, per-pair delivery order is preserved across the
/// failover.
pub fn run_with_failover(
    x: FabricSim<'_>,
    y: FabricSim<'_>,
    workload: Workload,
) -> FailoverOutcome {
    let xr = run_fabric(&x, workload);
    let failed = xr.recovery.abandoned.clone();
    let failovers = failed.len();
    let (y_res, unrecovered) = if failed.is_empty() {
        (None, Vec::new())
    } else {
        let script = failed.iter().map(|&(s, d)| (0, s, d)).collect();
        let yr = run_fabric(&y, Workload::Scripted(script));
        let u = yr.recovery.abandoned.clone();
        (Some(yr), u)
    };
    FailoverOutcome {
        x: xr,
        y: y_res,
        failovers,
        unrecovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_sim::{FaultEvent, RetryPolicy};
    use fractanet_topo::{Fractahedron, Topology, Variant};

    fn setup() -> (Fractahedron, RouteSet) {
        let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
        let routes = fractal_routes(&f);
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        (f, rs)
    }

    #[test]
    fn healthy_write_completes() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let out = execute(
            f.net(),
            &rs,
            &FaultSet::none(),
            &link,
            Transaction::Write {
                from: 3,
                to: 60,
                bytes: 200,
            },
        )
        .unwrap();
        assert_eq!(out.data_packets, 5); // 64+64+64+8 writes + interrupt
        assert_eq!(out.ack_packets, 5);
        assert!(out.round_trip_s > 0.0 && out.round_trip_s < 1e-3);
    }

    #[test]
    fn read_costs_an_extra_request_leg() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let faults = FaultSet::none();
        let w = execute(
            f.net(),
            &rs,
            &faults,
            &link,
            Transaction::Write {
                from: 3,
                to: 60,
                bytes: 64,
            },
        )
        .unwrap();
        let r = execute(
            f.net(),
            &rs,
            &faults,
            &link,
            Transaction::Read {
                to: 3,
                from: 60,
                bytes: 64,
            },
        )
        .unwrap();
        assert!(
            r.round_trip_s > w.round_trip_s,
            "{} vs {}",
            r.round_trip_s,
            w.round_trip_s
        );
    }

    #[test]
    fn forward_fault_reported_as_data_path() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let mut faults = FaultSet::none();
        // Kill the first hop of 3 -> 60.
        let ch = rs.path(3, 60)[0];
        faults.kill_link(ch.link());
        let err = execute(
            f.net(),
            &rs,
            &faults,
            &link,
            Transaction::Write {
                from: 3,
                to: 60,
                bytes: 8,
            },
        )
        .unwrap_err();
        assert!(matches!(err, TxError::DataPathDown { .. }), "{err}");
    }

    #[test]
    fn non_reflexive_fault_breaks_only_the_ack() {
        // The paper's §2 scenario: the A->B hardware is fine, but B->A
        // uses different links (each direction ascends from its own
        // corner), and a fault there kills the transaction anyway.
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let fwd: Vec<_> = rs.path(3, 60).to_vec();
        let rev: Vec<_> = rs.path(60, 3).to_vec();
        // Find a reverse-only cable.
        let rev_only = rev
            .iter()
            .map(|c| c.link())
            .find(|l| !fwd.iter().any(|c| c.link() == *l))
            .expect("fractahedral reverse routes use different links");
        let mut faults = FaultSet::none();
        faults.kill_link(rev_only);
        let err = execute(
            f.net(),
            &rs,
            &faults,
            &link,
            Transaction::Write {
                from: 3,
                to: 60,
                bytes: 8,
            },
        )
        .unwrap_err();
        assert!(matches!(err, TxError::AckPathDown { .. }), "{err}");
        // The data direction alone would have been fine.
        assert!(first_fault(f.net(), &faults, &fwd).is_none());
    }

    fn fabric_pair() -> (Fractahedron, RouteSet, Fractahedron, RouteSet) {
        let build = || {
            let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
            let routes = fractal_routes(&f);
            let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
            (f, rs)
        };
        let (fx, rx) = build();
        let (fy, ry) = build();
        (fx, rx, fy, ry)
    }

    #[test]
    fn healthy_run_needs_no_failover() {
        let (fx, rx, fy, ry) = fabric_pair();
        let x = FabricSim {
            net: fx.net(),
            routes: &rx,
            ends: fx.end_nodes(),
            cfg: SimConfig::default(),
            heal: false,
            vc: None,
        };
        let y = FabricSim {
            net: fy.net(),
            routes: &ry,
            ends: fy.end_nodes(),
            cfg: SimConfig::default(),
            heal: false,
            vc: None,
        };
        let out = run_with_failover(x, y, Workload::all_to_all_burst(8));
        assert!(out.is_recovered());
        assert_eq!(out.failovers, 0);
        assert!(out.y.is_none());
        assert_eq!(out.delivery_ratio(), 1.0);
    }

    #[test]
    fn dead_attach_link_fails_over_to_y() {
        // Kill one of node 0's X-fabric attach links: the fixed tables
        // route some of node 0's pairs through it, and no repair hook
        // is installed, so those transfers exhaust their K attempts on
        // X and fail over to the healthy Y fabric.
        let (fx, rx, fy, ry) = fabric_pair();
        let attach = fx.net().channels_from(fx.end_nodes()[0])[0].0.link();
        let cfg_x = SimConfig {
            max_cycles: 30_000,
            retry: RetryPolicy {
                ack_timeout: 8,
                max_retries: 2,
                backoff_base: 4,
                jitter_seed: 1,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(attach, 0));
        let x = FabricSim {
            net: fx.net(),
            routes: &rx,
            ends: fx.end_nodes(),
            cfg: cfg_x,
            heal: false,
            vc: None,
        };
        let y = FabricSim {
            net: fy.net(),
            routes: &ry,
            ends: fy.end_nodes(),
            cfg: SimConfig::default(),
            heal: false,
            vc: None,
        };
        let out = run_with_failover(x, y, Workload::all_to_all_burst(8));
        assert!(out.x.is_recovered(), "{:?}", out.x.recovery);
        assert!(out.failovers > 0, "some transfers must fail over");
        assert!(
            out.x
                .recovery
                .abandoned
                .iter()
                .all(|&(s, d)| s == 0 || d == 0),
            "only node 0's transfers may fail over: {:?}",
            out.x.recovery.abandoned
        );
        assert!(out.unrecovered.is_empty());
        assert!(out.is_recovered(), "{:?}", out.y);
        assert_eq!(out.delivery_ratio(), 1.0);
    }

    #[test]
    fn self_healing_x_avoids_failover() {
        // A router-to-router link fault is repairable in place, so a
        // healing X fabric delivers everything itself.
        let (fx, rx, fy, ry) = fabric_pair();
        let victim = fx
            .net()
            .links()
            .find(|&l| {
                let info = fx.net().link(l);
                fx.net().is_router(info.a.0) && fx.net().is_router(info.b.0)
            })
            .unwrap();
        let cfg_x = SimConfig {
            max_cycles: 30_000,
            retry: RetryPolicy {
                ack_timeout: 16,
                max_retries: 6,
                backoff_base: 16,
                jitter_seed: 3,
            },
            ..SimConfig::default()
        }
        .with_fault(FaultEvent::kill_link(victim, 20));
        let x = FabricSim {
            net: fx.net(),
            routes: &rx,
            ends: fx.end_nodes(),
            cfg: cfg_x,
            heal: true,
            vc: None,
        };
        let y = FabricSim {
            net: fy.net(),
            routes: &ry,
            ends: fy.end_nodes(),
            cfg: SimConfig::default(),
            heal: false,
            vc: None,
        };
        let out = run_with_failover(x, y, Workload::all_to_all_burst(8));
        assert!(out.is_recovered(), "{:?}", out.x.recovery);
        assert_eq!(out.failovers, 0);
        assert_eq!(out.x.recovery.repairs_installed, 1);
    }

    #[test]
    fn packet_count_helper() {
        assert_eq!(packets_for(0), 1);
        assert_eq!(packets_for(64), 1);
        assert_eq!(packets_for(65), 2);
        assert_eq!(packets_for(200), 4);
    }

    #[test]
    fn dedup_filter_rejects_replayed_sequences() {
        let mut f = DedupFilter::new();
        let pkts = segment_transfer(9, 1, 0, &[0u8; 150]);
        for p in &pkts {
            assert!(f.accept(p), "first delivery of seq {} accepted", p.seq);
        }
        // The timeout race redelivers the whole transfer: every copy
        // is rejected, state unchanged.
        for p in &pkts {
            assert!(!f.accept(p), "duplicate of seq {} rejected", p.seq);
        }
        assert_eq!(f.accepted(), pkts.len());
        // Same sequence on a different pair is distinct traffic.
        let other = Packet::new(9, 2, TransactionKind::Write, vec![1]).with_seq(0);
        assert!(f.accept(&other));
    }

    #[test]
    fn timeout_race_duplicates_stay_exactly_once_and_in_order() {
        // The duplicate-delivery audit: an aggressive ACK timeout on a
        // healthy fabric fires while originals are still in flight, so
        // original and speculative retransmit are both in the fabric at
        // once. End to end the run must stay exactly-once, and each
        // pair's deliveries must stay in generation order.
        use fractanet_sim::{Telemetry, TraceEvent};
        let (fx, rx, fy, ry) = fabric_pair();
        let cfg_x = SimConfig {
            max_cycles: 60_000,
            packet_flits: 32,
            retry: RetryPolicy {
                ack_timeout: 1,
                max_retries: 3,
                backoff_base: 8,
                jitter_seed: 5,
            },
            ..SimConfig::default()
        }
        .with_ack_retransmit(true)
        .with_telemetry(Telemetry::recording().with_event_capacity(1 << 16));
        let x = FabricSim {
            net: fx.net(),
            routes: &rx,
            ends: fx.end_nodes(),
            cfg: cfg_x,
            heal: false,
            vc: None,
        };
        let y = FabricSim {
            net: fy.net(),
            routes: &ry,
            ends: fy.end_nodes(),
            cfg: SimConfig::default(),
            heal: false,
            vc: None,
        };
        let out = run_with_failover(x, y, Workload::all_to_all_burst(8));
        // Exactly-once: every duplicate arrival was suppressed, none
        // double-counted, nothing lost.
        assert!(
            out.x.recovery.duplicates_suppressed > 0,
            "the race must actually fire: {:?}",
            out.x.recovery
        );
        assert!(out.is_recovered(), "{:?}", out.x.recovery);
        assert_eq!(out.total_delivered(), out.total_generated());

        // Per-pair in-order delivery: logical packet ids are assigned
        // in generation order, so within a pair the delivered ids must
        // be strictly increasing.
        let tel = out.x.telemetry.as_ref().expect("telemetry was recording");
        let mut pair_of: std::collections::BTreeMap<u32, (u32, u32)> =
            std::collections::BTreeMap::new();
        let mut last_per_pair: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        for ev in &tel.events {
            match *ev {
                TraceEvent::PacketInjected { worm, src, dst, .. } => {
                    pair_of.entry(worm).or_insert((src, dst));
                }
                TraceEvent::Delivered { worm, .. } => {
                    let pair = pair_of[&worm];
                    if let Some(&prev) = last_per_pair.get(&pair) {
                        assert!(worm > prev, "pair {pair:?} delivered {worm} after {prev}");
                    }
                    last_per_pair.insert(pair, worm);
                }
                _ => {}
            }
        }
        assert!(!last_per_pair.is_empty(), "deliveries must be traced");
    }

    #[test]
    fn longer_paths_take_longer() {
        let (f, rs) = setup();
        let link = LinkSpec::first_generation(10.0);
        let faults = FaultSet::none();
        // Same-router pair (1 hop) vs cross-hierarchy pair (5 hops).
        let near = execute(
            f.net(),
            &rs,
            &faults,
            &link,
            Transaction::Write {
                from: 0,
                to: 1,
                bytes: 64,
            },
        )
        .unwrap();
        let far = execute(
            f.net(),
            &rs,
            &faults,
            &link,
            Transaction::Write {
                from: 0,
                to: 63,
                bytes: 64,
            },
        )
        .unwrap();
        assert!(far.round_trip_s > near.round_trip_s);
    }
}
