//! ServerNet packet format.
//!
//! A lightweight header + ≤ 64-byte payload + checksum. The protocol
//! is deliberately minimal: "the lightweight protocol implemented over
//! these networks cannot tolerate out of order delivery of packets"
//! (§2) — there is no sequence number to *reorder* by, which is *why*
//! the paper insists on a fixed path per node pair. The header does
//! carry a per-source-destination-pair sequence number, but it exists
//! only for end-to-end *duplicate suppression*: a sender whose ACK
//! timeout races the delivery retransmits, and the destination must
//! recognize the copy (same pair, same sequence) and drop it, making
//! delivery exactly-once. Interrupt packets must not pass data packets
//! ("The interrupt packet cannot be allowed to pass the data on the
//! way to the CPU", §3.3), so the kind is part of the wire format.

/// Transaction kinds carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransactionKind {
    /// DMA read request.
    ReadRequest,
    /// Read response carrying data.
    ReadResponse,
    /// DMA write carrying data.
    Write,
    /// Positive acknowledgment.
    Ack,
    /// Negative acknowledgment (CRC error, disabled turn, …).
    Nack,
    /// I/O completion interrupt (must stay ordered behind its data).
    Interrupt,
}

impl TransactionKind {
    fn to_wire(self) -> u8 {
        match self {
            TransactionKind::ReadRequest => 0,
            TransactionKind::ReadResponse => 1,
            TransactionKind::Write => 2,
            TransactionKind::Ack => 3,
            TransactionKind::Nack => 4,
            TransactionKind::Interrupt => 5,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => TransactionKind::ReadRequest,
            1 => TransactionKind::ReadResponse,
            2 => TransactionKind::Write,
            3 => TransactionKind::Ack,
            4 => TransactionKind::Nack,
            5 => TransactionKind::Interrupt,
            _ => return None,
        })
    }
}

/// Decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than the fixed header + checksum.
    Truncated,
    /// Unknown transaction kind byte.
    BadKind(u8),
    /// Payload length field exceeds the 64-byte maximum or the buffer.
    BadLength(usize),
    /// Checksum mismatch (link error).
    BadChecksum {
        /// Checksum carried on the wire.
        wire: u8,
        /// Checksum computed from the received bytes.
        computed: u8,
    },
}

/// Maximum payload bytes per packet.
pub const MAX_PAYLOAD: usize = 64;
/// Header bytes: dst(2) src(2) kind(1) len(1) seq(4).
const HEADER: usize = 10;

/// One ServerNet packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Destination node ID.
    pub dst: u16,
    /// Source node ID.
    pub src: u16,
    /// Transaction kind.
    pub kind: TransactionKind,
    /// Per-(src, dst)-pair sequence number — the destination's handle
    /// for suppressing timeout-race duplicates ([`Packet::new`] starts
    /// at 0; see [`crate::transactions::DedupFilter`]).
    pub seq: u32,
    /// Payload (≤ [`MAX_PAYLOAD`]).
    pub payload: Vec<u8>,
}

fn checksum(bytes: &[u8]) -> u8 {
    // Simple rotating XOR — stands in for the hardware CRC.
    bytes.iter().fold(0u8, |acc, &b| acc.rotate_left(1) ^ b)
}

impl Packet {
    /// Builds a packet; panics if the payload exceeds [`MAX_PAYLOAD`]
    /// (callers segment larger transfers).
    pub fn new(dst: u16, src: u16, kind: TransactionKind, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "segment transfers above 64 bytes"
        );
        Packet {
            dst,
            src,
            kind,
            seq: 0,
            payload,
        }
    }

    /// Builder-style sequence number (per source-destination pair).
    pub fn with_seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Serializes to wire bytes (header, payload, checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + self.payload.len() + 1);
        out.extend_from_slice(&self.dst.to_be_bytes());
        out.extend_from_slice(&self.src.to_be_bytes());
        out.push(self.kind.to_wire());
        out.push(self.payload.len() as u8);
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.push(checksum(&out));
        out
    }

    /// Strict decode: any malformation is an error (the hardware
    /// drops and NACKs rather than guessing).
    pub fn decode(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < HEADER + 1 {
            return Err(PacketError::Truncated);
        }
        let (body, check) = bytes.split_at(bytes.len() - 1);
        let computed = checksum(body);
        if computed != check[0] {
            return Err(PacketError::BadChecksum {
                wire: check[0],
                computed,
            });
        }
        let dst = u16::from_be_bytes([body[0], body[1]]);
        let src = u16::from_be_bytes([body[2], body[3]]);
        let kind = TransactionKind::from_wire(body[4]).ok_or(PacketError::BadKind(body[4]))?;
        let len = body[5] as usize;
        let seq = u32::from_be_bytes([body[6], body[7], body[8], body[9]]);
        if len > MAX_PAYLOAD || body.len() != HEADER + len {
            return Err(PacketError::BadLength(len));
        }
        Ok(Packet {
            dst,
            src,
            kind,
            seq,
            payload: body[HEADER..].to_vec(),
        })
    }

    /// Wire size in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER + self.payload.len() + 1
    }

    /// Number of byte-flits this packet occupies in the simulator.
    pub fn flits(&self) -> u32 {
        self.wire_len() as u32
    }
}

/// Splits a bulk transfer into maximal packets plus the trailing
/// interrupt, in the order the fabric must deliver them. Packets are
/// numbered sequentially from `first_seq` so the destination can
/// suppress timeout-race duplicates per pair; the caller keeps the
/// per-pair counter and passes the next unused value.
pub fn segment_transfer(dst: u16, src: u16, first_seq: u32, data: &[u8]) -> Vec<Packet> {
    let mut out: Vec<Packet> = data
        .chunks(MAX_PAYLOAD)
        .enumerate()
        .map(|(i, c)| {
            Packet::new(dst, src, TransactionKind::Write, c.to_vec())
                .with_seq(first_seq.wrapping_add(i as u32))
        })
        .collect();
    let n = out.len() as u32;
    out.push(
        Packet::new(dst, src, TransactionKind::Interrupt, Vec::new())
            .with_seq(first_seq.wrapping_add(n)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            TransactionKind::ReadRequest,
            TransactionKind::ReadResponse,
            TransactionKind::Write,
            TransactionKind::Ack,
            TransactionKind::Nack,
            TransactionKind::Interrupt,
        ] {
            let p = Packet::new(513, 7, kind, vec![1, 2, 3]).with_seq(0xDEAD_BEEF);
            assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn sequence_number_rides_the_wire() {
        let p = Packet::new(1, 2, TransactionKind::Write, vec![7; 4]).with_seq(0x0102_0304);
        let wire = p.encode();
        assert_eq!(&wire[6..10], &[1, 2, 3, 4], "seq is big-endian at [6..10]");
        assert_eq!(Packet::decode(&wire).unwrap().seq, 0x0102_0304);
        // Sequence 0 is the default.
        assert_eq!(Packet::new(1, 2, TransactionKind::Ack, vec![]).seq, 0);
    }

    #[test]
    fn empty_and_max_payloads() {
        let empty = Packet::new(1, 2, TransactionKind::Ack, vec![]);
        assert_eq!(Packet::decode(&empty.encode()).unwrap(), empty);
        let max = Packet::new(1, 2, TransactionKind::Write, vec![0xAB; MAX_PAYLOAD]);
        assert_eq!(Packet::decode(&max.encode()).unwrap(), max);
        assert_eq!(max.wire_len(), 10 + 64 + 1);
    }

    #[test]
    #[should_panic(expected = "segment")]
    fn oversize_payload_panics() {
        let _ = Packet::new(1, 2, TransactionKind::Write, vec![0; MAX_PAYLOAD + 1]);
    }

    #[test]
    fn bit_flip_caught() {
        let p = Packet::new(300, 4, TransactionKind::Write, vec![9; 16]);
        let mut wire = p.encode();
        wire[8] ^= 0x40;
        match Packet::decode(&wire) {
            Err(PacketError::BadChecksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_caught() {
        let p = Packet::new(1, 2, TransactionKind::Ack, vec![]);
        let wire = p.encode();
        assert_eq!(Packet::decode(&wire[..3]), Err(PacketError::Truncated));
    }

    #[test]
    fn bad_kind_caught() {
        let p = Packet::new(1, 2, TransactionKind::Ack, vec![]);
        let mut wire = p.encode();
        wire[4] = 9;
        // Fix the checksum so the kind check is reached.
        let c = super::checksum(&wire[..wire.len() - 1]);
        let n = wire.len();
        wire[n - 1] = c;
        assert_eq!(Packet::decode(&wire), Err(PacketError::BadKind(9)));
    }

    #[test]
    fn length_mismatch_caught() {
        let p = Packet::new(1, 2, TransactionKind::Write, vec![5; 8]);
        let mut wire = p.encode();
        wire[5] = 7; // lie about the length
        let n = wire.len();
        let c = super::checksum(&wire[..n - 1]);
        wire[n - 1] = c;
        assert_eq!(Packet::decode(&wire), Err(PacketError::BadLength(7)));
    }

    #[test]
    fn segmentation_orders_interrupt_last() {
        // §3.3: the interrupt must follow the data.
        let pkts = segment_transfer(9, 1, 100, &[0u8; 150]);
        assert_eq!(pkts.len(), 4); // 64 + 64 + 22 + interrupt
        assert_eq!(pkts[0].payload.len(), 64);
        assert_eq!(pkts[2].payload.len(), 22);
        assert_eq!(pkts[3].kind, TransactionKind::Interrupt);
        assert!(pkts[..3].iter().all(|p| p.kind == TransactionKind::Write));
        // Sequential per-pair numbering from the caller's counter.
        let seqs: Vec<u32> = pkts.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![100, 101, 102, 103]);
    }
}
