//! Fault injection and reflexive-path checking.
//!
//! The paper's reliability argument needs two facts modeled: a path is
//! only *usable* if its reverse is too ("that path may be unusable due
//! to the inability to send acknowledgments back from B to A", §2),
//! and a single fabric with faults may partition, which is what the
//! dual fabric exists to mask.

use fractanet_graph::{LinkId, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::{HashSet, VecDeque};

/// A set of failed components in one fabric.
#[derive(Clone, Debug, Default)]
pub struct FaultSet {
    dead_links: HashSet<LinkId>,
    dead_routers: HashSet<NodeId>,
}

impl FaultSet {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails a cable (both directions — a cut cable loses its
    /// acknowledgment path too).
    pub fn kill_link(&mut self, link: LinkId) {
        self.dead_links.insert(link);
    }

    /// Fails a router (all its ports).
    pub fn kill_router(&mut self, router: NodeId) {
        self.dead_routers.insert(router);
    }

    /// Whether the cable works.
    pub fn link_ok(&self, link: LinkId) -> bool {
        !self.dead_links.contains(&link)
    }

    /// Whether the router works.
    pub fn router_ok(&self, node: NodeId) -> bool {
        !self.dead_routers.contains(&node)
    }

    /// Number of failed components.
    pub fn len(&self) -> usize {
        self.dead_links.len() + self.dead_routers.len()
    }

    /// Whether nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.dead_links.is_empty() && self.dead_routers.is_empty()
    }

    /// A random fault set of `links` cables and `routers` routers
    /// drawn from `net` (end nodes are never failed — the paper's
    /// fabric faults are network-side).
    pub fn random(net: &Network, links: usize, routers: usize, rng: &mut StdRng) -> Self {
        let mut f = FaultSet::none();
        let mut all_links: Vec<LinkId> = net.links().collect();
        all_links.shuffle(rng);
        for l in all_links.into_iter().take(links) {
            f.kill_link(l);
        }
        let mut all_routers: Vec<NodeId> = net.routers().collect();
        all_routers.shuffle(rng);
        for r in all_routers.into_iter().take(routers) {
            f.kill_router(r);
        }
        f
    }
}

/// BFS reachability that avoids dead links and routers.
pub fn reachable(net: &Network, faults: &FaultSet, src: NodeId, dst: NodeId) -> bool {
    if src == dst {
        return true;
    }
    if !faults.router_ok(src) || !faults.router_ok(dst) {
        return false;
    }
    let mut seen = vec![false; net.node_count()];
    seen[src.index()] = true;
    let mut q = VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        for &(ch, w) in net.channels_from(v) {
            if !faults.link_ok(ch.link()) || !faults.router_ok(w) || seen[w.index()] {
                continue;
            }
            if w == dst {
                return true;
            }
            // Only routers forward; a foreign end node is a dead end.
            if net.is_router(w) {
                seen[w.index()] = true;
                q.push_back(w);
            }
        }
    }
    false
}

/// Whether a *transfer* can complete between two end nodes: cables are
/// duplex, so topological reachability is symmetric, and one check
/// covers the data path and its acknowledgments.
pub fn transfer_ok(net: &Network, faults: &FaultSet, a: NodeId, b: NodeId) -> bool {
    reachable(net, faults, a, b)
}

/// Fraction of unordered pairs whose **fixed table route** (in either
/// direction) survives the faults — the service level of a ServerNet
/// fabric *before* anyone reprograms routing tables. Always ≤ the
/// topological [`surviving_pair_fraction`]: a pair whose fixed path
/// crosses a dead cable is out of service even though a detour exists,
/// which is precisely why the paper pairs fabrics instead of relying
/// on re-routing.
pub fn routed_surviving_fraction(
    net: &Network,
    routes: &fractanet_route::RouteSet,
    faults: &FaultSet,
) -> f64 {
    let n = routes.len();
    if n < 2 {
        return 1.0;
    }
    let path_ok = |path: &[fractanet_graph::ChannelId]| {
        path.iter().all(|&ch| {
            faults.link_ok(ch.link())
                && faults.router_ok(net.channel_src(ch))
                && faults.router_ok(net.channel_dst(ch))
        })
    };
    let mut ok = 0usize;
    for a in 0..n {
        for b in (a + 1)..n {
            if path_ok(routes.path(a, b)) && path_ok(routes.path(b, a)) {
                ok += 1;
            }
        }
    }
    ok as f64 / (n * (n - 1) / 2) as f64
}

/// Fraction of ordered end-node pairs that can still complete
/// transfers under `faults`.
pub fn surviving_pair_fraction(net: &Network, faults: &FaultSet, ends: &[NodeId]) -> f64 {
    let n = ends.len();
    if n < 2 {
        return 1.0;
    }
    let mut ok = 0usize;
    for (i, &a) in ends.iter().enumerate() {
        for &b in ends.iter().skip(i + 1) {
            if transfer_ok(net, faults, a, b) {
                ok += 1;
            }
        }
    }
    ok as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{Fractahedron, Ring, Topology, Variant};
    use rand::SeedableRng;

    #[test]
    fn no_faults_everything_reachable() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        assert_eq!(
            surviving_pair_fraction(f.net(), &FaultSet::none(), f.end_nodes()),
            1.0
        );
    }

    #[test]
    fn ring_survives_one_cut_not_two() {
        let r = Ring::new(6, 1, 6).unwrap();
        let ends = r.end_nodes();
        let ring_links: Vec<_> = (0..6)
            .map(|i| {
                r.net()
                    .channel_between(r.router(i), r.router((i + 1) % 6))
                    .unwrap()
                    .link()
            })
            .collect();
        let mut one = FaultSet::none();
        one.kill_link(ring_links[0]);
        assert_eq!(
            surviving_pair_fraction(r.net(), &one, ends),
            1.0,
            "a ring tolerates one cut"
        );
        let mut two = one.clone();
        two.kill_link(ring_links[3]);
        let frac = surviving_pair_fraction(r.net(), &two, ends);
        assert!(frac < 1.0, "two cuts partition a ring");
        // 3 + 3 split: 9 of 15 pairs cross the cut, 6 survive.
        assert!((frac - 6.0 / 15.0).abs() < 1e-9, "frac = {frac}");
    }

    #[test]
    fn dead_attach_isolates_node() {
        let r = Ring::new(4, 1, 6).unwrap();
        let ends = r.end_nodes();
        let attach = r.net().channels_from(ends[0])[0].0.link();
        let mut f = FaultSet::none();
        f.kill_link(attach);
        assert!(!transfer_ok(r.net(), &f, ends[0], ends[1]));
        assert!(transfer_ok(r.net(), &f, ends[1], ends[2]));
    }

    #[test]
    fn dead_router_kills_its_nodes() {
        let fr = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let mut f = FaultSet::none();
        f.kill_router(fr.router(1, 0, 0, 0));
        let ends = fr.end_nodes();
        // Nodes 0,1 hang off corner 0.
        assert!(!transfer_ok(fr.net(), &f, ends[0], ends[2]));
        // The rest of the tetrahedron still communicates (clique).
        assert!(transfer_ok(fr.net(), &f, ends[2], ends[7]));
    }

    #[test]
    fn tetrahedron_tolerates_any_single_inter_router_cut() {
        let fr = Fractahedron::new(1, Variant::Fat, false).unwrap();
        for l in fr.net().links() {
            if fr.net().link(l).class != fractanet_graph::LinkClass::Local {
                continue;
            }
            let mut f = FaultSet::none();
            f.kill_link(l);
            assert_eq!(
                surviving_pair_fraction(fr.net(), &f, fr.end_nodes()),
                1.0,
                "clique redundancy masks {l:?}"
            );
        }
    }

    #[test]
    fn static_tables_lose_more_pairs_than_the_topology() {
        use fractanet_route::fractal::fractal_routes;
        use fractanet_route::RouteSet;
        let fr = Fractahedron::paper_fat_64();
        let routes = fractal_routes(&fr);
        let rs = RouteSet::from_table(fr.net(), fr.end_nodes(), &routes).unwrap();
        // Kill one intra-tetrahedron link at level 2: the clique is
        // redundant (topology survives), but fixed routes through the
        // diagonal die until tables are reprogrammed.
        let victim = fr
            .net()
            .channel_between(fr.router(2, 0, 0, 0), fr.router(2, 0, 0, 3))
            .unwrap()
            .link();
        let mut faults = FaultSet::none();
        faults.kill_link(victim);
        let topo = surviving_pair_fraction(fr.net(), &faults, fr.end_nodes());
        let routed = super::routed_surviving_fraction(fr.net(), &rs, &faults);
        assert_eq!(topo, 1.0, "the clique masks a single diagonal cut");
        assert!(routed < 1.0, "fixed tables cannot exploit the redundancy");
        assert!(
            routed > 0.9,
            "only routes crossing the diagonal die: {routed}"
        );
    }

    #[test]
    fn routed_fraction_is_one_without_faults() {
        use fractanet_route::fractal::fractal_routes;
        use fractanet_route::RouteSet;
        let fr = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let routes = fractal_routes(&fr);
        let rs = RouteSet::from_table(fr.net(), fr.end_nodes(), &routes).unwrap();
        assert_eq!(
            super::routed_surviving_fraction(fr.net(), &rs, &FaultSet::none()),
            1.0
        );
    }

    #[test]
    fn random_faults_are_reproducible() {
        let fr = Fractahedron::paper_fat_64();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let f1 = FaultSet::random(fr.net(), 3, 2, &mut r1);
        let f2 = FaultSet::random(fr.net(), 3, 2, &mut r2);
        assert_eq!(f1.len(), 5);
        assert_eq!(
            surviving_pair_fraction(fr.net(), &f1, fr.end_nodes()),
            surviving_pair_fraction(fr.net(), &f2, fr.end_nodes())
        );
    }
}
