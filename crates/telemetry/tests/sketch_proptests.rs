//! Property tests for the mergeable quantile sketch: shard merging
//! must be a lossless monoid, and the sketch must agree with the
//! whole-run histogram's quantiles bucket-for-bucket.

use fractanet_telemetry::{LatencyHistogram, QuantileSketch};
use proptest::prelude::*;

fn sketch_of(samples: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in samples {
        s.record(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-shard sketches is commutative and associative, and
    /// any sharding of the stream merges to exactly the single-stream
    /// sketch.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
        c in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        // Commutativity.
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa));

        // Associativity.
        prop_assert_eq!(sa.merged(&sb).merged(&sc), sa.merged(&sb.merged(&sc)));

        // Losslessness: shards merge to the single-observer sketch.
        let mut whole: Vec<u64> = a.clone();
        whole.extend(&b);
        whole.extend(&c);
        prop_assert_eq!(sa.merged(&sb).merged(&sc), sketch_of(&whole));

        // The empty sketch is the identity.
        prop_assert_eq!(sa.merged(&QuantileSketch::new()), sa);
    }

    /// A merged sketch's quantiles agree with the whole-run histogram
    /// fed the same samples — same bucket upper bound (i.e. within one
    /// log2 bucket of each other by construction), same exact max,
    /// same count and mean.
    #[test]
    fn merged_sketch_agrees_with_whole_run_histogram(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..10_000_000, 0..150), 1..6),
        qs_permille in prop::collection::vec(0u64..=1000, 1..5),
    ) {
        let mut merged = QuantileSketch::new();
        let mut hist = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(&sketch_of(shard));
            for &v in shard {
                hist.record(v);
            }
        }
        prop_assert_eq!(merged.count(), hist.count());
        prop_assert_eq!(merged.max(), hist.max());
        prop_assert!((merged.mean() - hist.mean()).abs() < 1e-9);
        for &p in &qs_permille {
            let q = p as f64 / 1000.0;
            // Identical bucket read-out: the bound the ISSUE asks for
            // ("within one bucket") is met with equality because both
            // sides share bucket_of and the rank rule.
            prop_assert_eq!(merged.quantile(q), hist.quantile(q), "q={}", q);
        }
        prop_assert_eq!(merged.p50(), hist.p50());
        prop_assert_eq!(merged.p95(), hist.p95());
        prop_assert_eq!(merged.p99(), hist.p99());
        prop_assert_eq!(merged.rows(), hist.rows());
    }
}
