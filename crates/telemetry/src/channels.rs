//! Per-channel counters and the empirical contention measure.
//!
//! The analytical contention metric (`fractanet-metrics`) asks: over
//! all transfer sets with distinct sources and distinct destinations,
//! how many can simultaneously need one channel? The empirical measure
//! recorded here answers the runtime version: in each simulated cycle,
//! how many *actual* concurrent transfers attempted to push a flit
//! into the channel? Contenders are deduplicated the same way the
//! paper counts transfers — as a maximum matching of their `(source,
//! destination)` pairs — so on fault-free runs the empirical peak is
//! mathematically ≤ the analytical bound (the active pair set is a
//! subset of the routed pair set), and exceeding it is a bug.

/// Counters for one unidirectional channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelSummary {
    /// Cycles a flit entered the channel (the engine's busy measure).
    pub busy_cycles: u64,
    /// Flits that left the channel (ejected or forwarded downstream).
    pub flits_forwarded: u64,
    /// Flit-wait cycles: one per transfer per cycle that wanted to
    /// enter the channel and could not (full buffer, foreign owner, or
    /// arbitration loss). Can exceed the run length on a contended
    /// channel — it aggregates waiting across worms.
    pub blocked_cycles: u64,
    /// Deepest the input FIFO ever got, in flits.
    pub peak_queue_depth: u32,
    /// Peak per-cycle matching of concurrent contending transfers —
    /// the empirical `k` of `k:1`.
    pub peak_contention: u32,
    /// Blocked cycles attributable to exhausted downstream credits
    /// (full input FIFO), as opposed to a foreign worm holding the
    /// channel or an arbitration loss. Always ≤ `blocked_cycles`.
    pub credit_stalls: u64,
    /// Sum of the FIFO depths observed at each flit arrival — an
    /// arrival-weighted occupancy integral. Dividing by
    /// `flits_forwarded` approximates the mean queue a flit joined.
    pub occupancy_flits: u64,
}

/// Maximum bipartite matching over a (small) list of `(src, dst)`
/// transfer pairs: the largest subset with pairwise-distinct sources
/// and pairwise-distinct destinations. Delegates to the same
/// Hopcroft–Karp implementation the analytical contention metric uses,
/// so the empirical and analytical figures are counted by identical
/// code. Contender lists are bounded by router in-degree (≤ ports +
/// injection), so this is effectively constant-time per cycle.
pub fn matching_bound(pairs: &[(u32, u32)]) -> usize {
    let mut srcs: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let mut dsts: Vec<u32> = pairs.iter().map(|p| p.1).collect();
    srcs.sort_unstable();
    srcs.dedup();
    dsts.sort_unstable();
    dsts.dedup();
    let mut bip = fractanet_graph::matching::Bipartite::new(srcs.len(), dsts.len());
    for &(s, d) in pairs {
        let si = srcs.binary_search(&s).expect("deduped from pairs");
        let di = dsts.binary_search(&d).expect("deduped from pairs");
        bip.add_edge(si as u32, di as u32);
    }
    bip.max_matching()
}

/// The per-channel counter bank an engine feeds while recording.
#[derive(Clone, Debug)]
pub struct ChannelCounters {
    summaries: Vec<ChannelSummary>,
}

impl ChannelCounters {
    /// Counters for a network of `channels` channels.
    pub fn new(channels: usize) -> Self {
        ChannelCounters {
            summaries: vec![ChannelSummary::default(); channels],
        }
    }

    /// Books one flit leaving `channel`.
    pub fn flit_forwarded(&mut self, channel: usize) {
        self.summaries[channel].flits_forwarded += 1;
    }

    /// Books one cycle in which `channel` turned at least one flit
    /// away.
    pub fn blocked_cycle(&mut self, channel: usize) {
        self.summaries[channel].blocked_cycles += 1;
    }

    /// Observes an input-FIFO depth at a flit arrival.
    pub fn observe_depth(&mut self, channel: usize, depth: u32) {
        let s = &mut self.summaries[channel];
        if depth > s.peak_queue_depth {
            s.peak_queue_depth = depth;
        }
        s.occupancy_flits += depth as u64;
    }

    /// Books one credit-stalled transfer on `channel` (blocked on a
    /// full downstream FIFO rather than channel ownership).
    pub fn credit_stall(&mut self, channel: usize) {
        self.summaries[channel].credit_stalls += 1;
    }

    /// Observes one cycle's contention (matching of active transfer
    /// pairs) on `channel`.
    pub fn observe_contention(&mut self, channel: usize, k: u32) {
        let s = &mut self.summaries[channel];
        if k > s.peak_contention {
            s.peak_contention = k;
        }
    }

    /// Finalizes with the engine's authoritative busy counts.
    pub fn finish(mut self, busy: &[u64]) -> Vec<ChannelSummary> {
        for (s, &b) in self.summaries.iter_mut().zip(busy) {
            s.busy_cycles = b;
        }
        self.summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_dedupes_shared_endpoints() {
        // Three transfers sharing a source collapse to one.
        assert_eq!(matching_bound(&[(0, 1), (0, 2), (0, 3)]), 1);
        // Distinct on both sides: all count.
        assert_eq!(matching_bound(&[(0, 1), (2, 3), (4, 5)]), 3);
        // A matching, not min(|S|,|D|): the pair structure matters.
        // {(0,1),(1,0)} is a perfect matching of size 2.
        assert_eq!(matching_bound(&[(0, 1), (1, 0)]), 2);
        // Duplicated pair counts once.
        assert_eq!(matching_bound(&[(0, 1), (0, 1)]), 1);
        assert_eq!(matching_bound(&[]), 0);
    }

    #[test]
    fn matching_needs_augmenting_paths() {
        // Greedy in order would match (0,1) then strand (1,_): the
        // augmenting search must still find size 2.
        assert_eq!(matching_bound(&[(0, 1), (1, 1), (0, 2)]), 2);
    }

    #[test]
    fn counters_track_peaks_and_sums() {
        let mut c = ChannelCounters::new(2);
        c.flit_forwarded(0);
        c.flit_forwarded(0);
        c.blocked_cycle(1);
        c.observe_depth(1, 3);
        c.observe_depth(1, 2);
        c.observe_contention(1, 4);
        c.observe_contention(1, 1);
        c.credit_stall(1);
        let s = c.finish(&[7, 9]);
        assert_eq!(s[0].busy_cycles, 7);
        assert_eq!(s[0].flits_forwarded, 2);
        assert_eq!(s[1].blocked_cycles, 1);
        assert_eq!(s[1].peak_queue_depth, 3);
        assert_eq!(s[1].peak_contention, 4);
        assert_eq!(s[1].credit_stalls, 1);
        assert_eq!(s[1].occupancy_flits, 5, "3 + 2 observed depths");
    }
}
