//! Mergeable log₂-bucketed quantile sketches.
//!
//! A [`QuantileSketch`] is the streaming sibling of
//! [`LatencyHistogram`](crate::hist::LatencyHistogram): the same
//! power-of-two bucketing (bucket `i` holds values in `[2^(i-1), 2^i)`,
//! bucket 0 holds zero), the same rank-based quantile read-out, plus a
//! lossless [`merge`](QuantileSketch::merge). Merging is element-wise
//! bucket addition — associative and commutative by construction — so
//! per-shard or per-interval sketches combine into exactly the sketch
//! a single observer would have built, and sliding-window quantiles
//! fall out of merging the live interval ring. The only field that is
//! not a sum is `max`, which merges by maximum and stays exact.

/// Fixed-footprint mergeable quantile sketch over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The shared log₂ bucket index: identical to the histogram's, so a
/// sketch and a [`LatencyHistogram`](crate::hist::LatencyHistogram)
/// fed the same samples report the same bucket quantiles.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Lossless: the result is exactly the
    /// sketch of the concatenated sample streams, so the operation is
    /// associative and commutative (the merge proptests pin this).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Returns the merge of `self` and `other` without mutating either.
    pub fn merged(&self, other: &QuantileSketch) -> QuantileSketch {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Empties the sketch in place (for interval-ring reuse).
    pub fn reset(&mut self) {
        *self = QuantileSketch::default();
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing it, capped at the exact maximum — the
    /// same read-out rule as the whole-run histogram, so the two agree
    /// bucket-for-bucket on identical streams. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let ub = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return ub.min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (upper bucket bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty `(bucket_upper_bound, count)` rows, low to high.
    pub fn rows(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { (1u64 << i) - 1 }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn sketch_matches_histogram_on_identical_streams() {
        let mut s = QuantileSketch::new();
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1023, 1024, 65_536] {
            s.record(v);
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), h.quantile(q), "q={q}");
        }
        assert_eq!(s.max(), h.max());
        assert_eq!(s.count(), h.count());
        assert_eq!(s.rows(), h.rows());
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i) % 7919).collect();
        let mut whole = QuantileSketch::new();
        for &v in &samples {
            whole.record(v);
        }
        let (left, right) = samples.split_at(137);
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for &v in left {
            a.record(v);
        }
        for &v in right {
            b.record(v);
        }
        assert_eq!(a.merged(&b), whole);
        assert_eq!(b.merged(&a), whole, "merge must be commutative");
    }

    #[test]
    fn empty_sketch_reads_zero() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        // Merging an empty sketch is the identity.
        let mut t = QuantileSketch::new();
        t.record(42);
        assert_eq!(t.merged(&s), t);
    }

    #[test]
    fn reset_restores_the_identity() {
        let mut s = QuantileSketch::new();
        s.record(9);
        s.reset();
        assert_eq!(s, QuantileSketch::new());
    }
}
