//! Live streaming metrics: counters, gauges, sliding-window quantile
//! sketches, and per-traffic-class SLO accounting.
//!
//! The design mirrors the event-ring telemetry split: [`MetricsConfig`]
//! is pure *configuration* carried on `SimConfig` (cheap to clone, safe
//! to share across sweep points), and the mutable [`MetricsRecorder`]
//! is created privately by one engine run only when the config is on.
//! Every emit site in the engine sits behind one branch on an
//! `Option` that is `None` when metrics are off, and every emit and
//! the end-of-cycle [`MetricsRecorder::sample`] happen at the serial
//! commit point — never inside the sharded scan phase — so recording
//! is provably inert: results are bit-identical metrics-on vs
//! metrics-off at every `--threads` width (pinned by the workspace
//! parity proptests and the overhead guard bench).
//!
//! Labels: the topology spec, per-channel link class (attach / local /
//! level-k), the live routing epoch, and the traffic class. Traffic
//! classes partition end-node addresses into `groups` equal ranges and
//! account each `(src_group, dst_group)` pair separately: deliveries
//! within the SLO deadline, abandons, and retry-budget burn — the
//! serving-fabric SLO surface ROADMAP item 1 asks for.

use crate::sketch::QuantileSketch;
use fractanet_graph::{LinkClass, Network};
use std::collections::VecDeque;

/// Default cycles between samples when sampling is enabled.
pub const DEFAULT_SAMPLE_EVERY: u64 = 100;
/// Default sliding-window length, in sample intervals.
pub const DEFAULT_WINDOW: usize = 8;
/// Default traffic-class group count per axis.
pub const DEFAULT_GROUPS: usize = 4;
/// Default SLO delivery deadline, in cycles.
pub const DEFAULT_DEADLINE: u64 = 1_000;
/// Default delivered-within-deadline ratio below which a traffic
/// class is flagged as breaching its SLO.
pub const DEFAULT_SLO_TARGET: f64 = 0.99;

/// Metrics configuration carried on `SimConfig`. A value, not a
/// handle: engines construct their own private [`MetricsRecorder`]
/// from it, so cloning a config never shares mutable state.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsConfig {
    enabled: bool,
    sample_every: u64,
    window: usize,
    groups: usize,
    deadline: u64,
    slo_target: f64,
    topology: String,
}

impl MetricsConfig {
    /// Metrics disabled: no recorder is created, no report attached.
    pub fn off() -> Self {
        MetricsConfig {
            enabled: false,
            sample_every: 0,
            window: 0,
            groups: 0,
            deadline: 0,
            slo_target: 0.0,
            topology: String::new(),
        }
    }

    /// Metrics enabled, sampling every `every` cycles (clamped to at
    /// least 1) with default window, grouping, and SLO settings.
    pub fn sampling(every: u64) -> Self {
        MetricsConfig {
            enabled: true,
            sample_every: every.max(1),
            window: DEFAULT_WINDOW,
            groups: DEFAULT_GROUPS,
            deadline: DEFAULT_DEADLINE,
            slo_target: DEFAULT_SLO_TARGET,
            topology: String::new(),
        }
    }

    /// Sets the sliding-window length in sample intervals (min 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the traffic-class group count per axis (min 1).
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups.max(1);
        self
    }

    /// Sets the SLO delivery deadline in cycles.
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the delivered-within-deadline ratio that counts as meeting
    /// the SLO.
    pub fn with_slo_target(mut self, target: f64) -> Self {
        self.slo_target = target;
        self
    }

    /// Sets the topology label stamped on exported metrics.
    pub fn with_topology(mut self, topology: &str) -> Self {
        self.topology = topology.to_string();
        self
    }

    /// Whether a run under this config records metrics.
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// Cycles between samples.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Sliding-window length in sample intervals.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Traffic-class groups per axis.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// SLO delivery deadline in cycles.
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// The configured topology label.
    pub fn topology(&self) -> &str {
        &self.topology
    }

    /// A fresh recorder for a fabric described by `net` serving
    /// `ends` end-node addresses under `max_retries`, or `None` when
    /// metrics are off.
    pub fn recorder(
        &self,
        net: &Network,
        ends: usize,
        max_retries: u32,
    ) -> Option<MetricsRecorder> {
        if !self.enabled {
            return None;
        }
        let (chan_class, class_labels) = channel_classes(net);
        Some(MetricsRecorder::new(
            self.clone(),
            chan_class,
            class_labels,
            ends,
            max_retries,
        ))
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::off()
    }
}

/// Classifies every channel by its link class and returns
/// `(class index per channel, label per class index)`.
pub fn channel_classes(net: &Network) -> (Vec<u8>, Vec<String>) {
    let mut labels: Vec<String> = Vec::new();
    let mut ids = std::collections::BTreeMap::new();
    let mut chan_class = vec![0u8; net.channel_count()];
    for ch in net.channels() {
        let label = match net.link(ch.link()).class {
            LinkClass::Attach => "attach".to_string(),
            LinkClass::Local => "local".to_string(),
            LinkClass::Level(k) => format!("level{k}"),
        };
        let next = ids.len() as u8;
        let id = *ids.entry(label.clone()).or_insert_with(|| {
            labels.push(label);
            next
        });
        chan_class[ch.index()] = id;
    }
    (chan_class, labels)
}

/// Running totals over the whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsTotals {
    /// Packets generated.
    pub generated: u64,
    /// Packets delivered (first copy).
    pub delivered: u64,
    /// Deliveries within the SLO deadline.
    pub within_deadline: u64,
    /// Packets abandoned after exhausting retries.
    pub abandoned: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Destination CRC NACKs.
    pub nacks: u64,
    /// Duplicate deliveries suppressed.
    pub dups_suppressed: u64,
    /// Fault-schedule events applied.
    pub faults: u64,
    /// Certified healed-table installs.
    pub heal_installs: u64,
    /// Transfers stalled on exhausted downstream credits (full input
    /// FIFOs). Zero whenever FIFOs are unbounded.
    pub credit_stalls: u64,
    /// Cycle a deadlock verdict was reached, if any.
    pub deadlock_cycle: Option<u64>,
}

/// One `(src_group, dst_group)` traffic class's SLO account.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassStats {
    /// Source end-node address group.
    pub src_group: usize,
    /// Destination end-node address group.
    pub dst_group: usize,
    /// Packets generated in this class.
    pub generated: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Deliveries within the SLO deadline.
    pub within_deadline: u64,
    /// Packets abandoned.
    pub abandoned: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// End-to-end latency sketch for the class.
    pub latency: QuantileSketch,
}

impl ClassStats {
    fn new(src_group: usize, dst_group: usize) -> Self {
        ClassStats {
            src_group,
            dst_group,
            generated: 0,
            delivered: 0,
            within_deadline: 0,
            abandoned: 0,
            retries: 0,
            latency: QuantileSketch::new(),
        }
    }

    /// Delivered-within-deadline ratio (1.0 when nothing delivered
    /// yet — no delivery has missed its deadline).
    pub fn slo_ratio(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.within_deadline as f64 / self.delivered as f64
        }
    }

    /// Fraction of the class's total retry budget burned:
    /// `retries / (generated × max_retries)` (0 when nothing
    /// generated or retries are disabled).
    pub fn retry_budget_burn(&self, max_retries: u32) -> f64 {
        let budget = self.generated.saturating_mul(max_retries as u64);
        if budget == 0 {
            0.0
        } else {
            self.retries as f64 / budget as f64
        }
    }
}

/// One periodic scrape of the live registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSample {
    /// Cycle the sample was taken at (end of cycle).
    pub cycle: u64,
    /// Cumulative counters at sample time.
    pub generated: u64,
    /// Cumulative deliveries.
    pub delivered: u64,
    /// Cumulative abandons.
    pub abandoned: u64,
    /// Cumulative retries.
    pub retries: u64,
    /// Cumulative NACKs.
    pub nacks: u64,
    /// Cumulative duplicates suppressed.
    pub dups_suppressed: u64,
    /// Packets in flight (gauge).
    pub in_flight: u64,
    /// Live routing epoch (gauge).
    pub routing_epoch: u64,
    /// Deliveries inside the sliding window.
    pub window_count: u64,
    /// Sliding-window latency p50 (bucket upper bound).
    pub window_p50: u64,
    /// Sliding-window latency p95.
    pub window_p95: u64,
    /// Sliding-window latency p99.
    pub window_p99: u64,
    /// Sliding-window exact max latency.
    pub window_max: u64,
    /// Cumulative busy cycles per channel class (indexed like
    /// `MetricsReport::class_labels`).
    pub busy_by_class: Vec<u64>,
}

/// Why the flight recorder flagged a moment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The engine reached a wormhole-deadlock verdict.
    Deadlock,
    /// A traffic class's delivered-within-deadline ratio fell below
    /// the configured target.
    SloBreach {
        /// Source group of the breaching class.
        src_group: usize,
        /// Destination group of the breaching class.
        dst_group: usize,
    },
    /// A certified healed routing table was installed.
    HealInstall,
    /// An external harness (chaos) observed an invariant violation.
    InvariantViolation,
}

impl AnomalyKind {
    /// Stable string tag for exports.
    pub fn tag(&self) -> &'static str {
        match self {
            AnomalyKind::Deadlock => "deadlock",
            AnomalyKind::SloBreach { .. } => "slo_breach",
            AnomalyKind::HealInstall => "heal_install",
            AnomalyKind::InvariantViolation => "invariant_violation",
        }
    }
}

/// One flagged moment, with human-readable evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Anomaly {
    /// Cycle the anomaly was observed.
    pub cycle: u64,
    /// What kind of anomaly.
    pub kind: AnomalyKind,
    /// Evidence (counter values, verdict, …).
    pub detail: String,
}

/// Live metrics state for one engine run. Single-owner, fed only from
/// the engine's serial commit points.
#[derive(Clone, Debug)]
pub struct MetricsRecorder {
    cfg: MetricsConfig,
    chan_class: Vec<u8>,
    class_labels: Vec<String>,
    ends: usize,
    max_retries: u32,
    totals: MetricsTotals,
    classes: Vec<ClassStats>,
    latency: QuantileSketch,
    interval: QuantileSketch,
    window: VecDeque<QuantileSketch>,
    samples: Vec<MetricsSample>,
    anomalies: Vec<Anomaly>,
    injections: Vec<(u64, u32, u32)>,
    breached: Vec<bool>,
}

impl MetricsRecorder {
    fn new(
        cfg: MetricsConfig,
        chan_class: Vec<u8>,
        class_labels: Vec<String>,
        ends: usize,
        max_retries: u32,
    ) -> Self {
        let g = cfg.groups.max(1);
        let classes = (0..g * g).map(|i| ClassStats::new(i / g, i % g)).collect();
        MetricsRecorder {
            cfg,
            chan_class,
            class_labels,
            ends: ends.max(1),
            max_retries,
            totals: MetricsTotals::default(),
            classes,
            latency: QuantileSketch::new(),
            interval: QuantileSketch::new(),
            window: VecDeque::new(),
            samples: Vec::new(),
            anomalies: Vec::new(),
            injections: Vec::new(),
            breached: vec![false; g * g],
        }
    }

    fn group_of(&self, addr: usize) -> usize {
        (addr * self.cfg.groups / self.ends).min(self.cfg.groups - 1)
    }

    fn class_index(&self, src: usize, dst: usize) -> usize {
        self.group_of(src) * self.cfg.groups + self.group_of(dst)
    }

    /// Records one generated packet (also logged into the replayable
    /// injection schedule).
    pub fn generated(&mut self, cycle: u64, src: usize, dst: usize) {
        self.totals.generated += 1;
        let i = self.class_index(src, dst);
        self.classes[i].generated += 1;
        self.injections.push((cycle, src as u32, dst as u32));
    }

    /// Records a first-copy delivery with its end-to-end latency.
    pub fn delivered(&mut self, _cycle: u64, src: usize, dst: usize, latency: u64) {
        self.totals.delivered += 1;
        let within = latency <= self.cfg.deadline;
        if within {
            self.totals.within_deadline += 1;
        }
        let i = self.class_index(src, dst);
        let c = &mut self.classes[i];
        c.delivered += 1;
        if within {
            c.within_deadline += 1;
        }
        c.latency.record(latency);
        self.latency.record(latency);
        self.interval.record(latency);
    }

    /// Records a packet abandoned after exhausting its retry budget.
    pub fn abandoned(&mut self, _cycle: u64, src: usize, dst: usize) {
        self.totals.abandoned += 1;
        let i = self.class_index(src, dst);
        self.classes[i].abandoned += 1;
    }

    /// Records a retry being scheduled.
    pub fn retried(&mut self, _cycle: u64, src: usize, dst: usize) {
        self.totals.retries += 1;
        let i = self.class_index(src, dst);
        self.classes[i].retries += 1;
    }

    /// Records a destination CRC NACK.
    pub fn nacked(&mut self) {
        self.totals.nacks += 1;
    }

    /// Records `n` credit-stalled transfers committed this cycle.
    pub fn credit_stalled(&mut self, n: u64) {
        self.totals.credit_stalls += n;
    }

    /// Records a suppressed duplicate delivery.
    pub fn dup_suppressed(&mut self) {
        self.totals.dups_suppressed += 1;
    }

    /// Records a fault-schedule application.
    pub fn fault_applied(&mut self) {
        self.totals.faults += 1;
    }

    /// Records a certified healed-table install (an anomaly the
    /// flight recorder keeps).
    pub fn heal_installed(&mut self, cycle: u64, epoch: usize) {
        self.totals.heal_installs += 1;
        self.anomalies.push(Anomaly {
            cycle,
            kind: AnomalyKind::HealInstall,
            detail: format!("routing epoch {epoch} installed"),
        });
    }

    /// Records the deadlock verdict.
    pub fn deadlock(&mut self, cycle: u64, detail: String) {
        self.totals.deadlock_cycle = Some(cycle);
        self.anomalies.push(Anomaly {
            cycle,
            kind: AnomalyKind::Deadlock,
            detail,
        });
    }

    /// Whether `cycle` is a sampling boundary.
    pub fn due(&self, cycle: u64) -> bool {
        cycle > 0 && cycle.is_multiple_of(self.cfg.sample_every)
    }

    /// Takes one sample at the end of `cycle`: rolls the interval
    /// sketch into the sliding window, reads the window quantiles,
    /// snapshots every counter and gauge, and checks each traffic
    /// class against the SLO target (first breach per class is
    /// recorded as an anomaly).
    pub fn sample(&mut self, cycle: u64, in_flight: u64, routing_epoch: u64, busy: &[u64]) {
        if self.window.len() == self.cfg.window {
            self.window.pop_front();
        }
        self.window.push_back(std::mem::take(&mut self.interval));
        let mut merged = QuantileSketch::new();
        for s in &self.window {
            merged.merge(s);
        }
        let mut busy_by_class = vec![0u64; self.class_labels.len()];
        for (i, &b) in busy.iter().enumerate() {
            busy_by_class[self.chan_class[i] as usize] += b;
        }
        self.samples.push(MetricsSample {
            cycle,
            generated: self.totals.generated,
            delivered: self.totals.delivered,
            abandoned: self.totals.abandoned,
            retries: self.totals.retries,
            nacks: self.totals.nacks,
            dups_suppressed: self.totals.dups_suppressed,
            in_flight,
            routing_epoch,
            window_count: merged.count(),
            window_p50: merged.p50(),
            window_p95: merged.p95(),
            window_p99: merged.p99(),
            window_max: merged.max(),
            busy_by_class,
        });
        for (i, c) in self.classes.iter().enumerate() {
            if c.delivered > 0 && c.slo_ratio() < self.cfg.slo_target && !self.breached[i] {
                self.breached[i] = true;
                self.anomalies.push(Anomaly {
                    cycle,
                    kind: AnomalyKind::SloBreach {
                        src_group: c.src_group,
                        dst_group: c.dst_group,
                    },
                    detail: format!(
                        "class {}->{}: {}/{} within {} cycles ({:.4} < {:.4})",
                        c.src_group,
                        c.dst_group,
                        c.within_deadline,
                        c.delivered,
                        self.cfg.deadline,
                        c.slo_ratio(),
                        self.cfg.slo_target
                    ),
                });
            }
        }
    }

    /// Consumes the recorder into a report. `cycles` is the number of
    /// cycles simulated and `busy` the engine's authoritative final
    /// per-channel busy counts.
    pub fn finish(mut self, cycles: u64, busy: &[u64]) -> MetricsReport {
        // A final implicit sample so short runs and trailing partial
        // intervals are never lost from the time series.
        if self.samples.last().map(|s| s.cycle) != Some(cycles) {
            let epoch = self.samples.last().map(|s| s.routing_epoch).unwrap_or(0);
            self.sample(cycles, 0, epoch, busy);
        }
        let mut busy_by_class = vec![0u64; self.class_labels.len()];
        for (i, &b) in busy.iter().enumerate() {
            busy_by_class[self.chan_class[i] as usize] += b;
        }
        let classes = self
            .classes
            .into_iter()
            .filter(|c| c.generated > 0 || c.delivered > 0)
            .collect();
        MetricsReport {
            topology: self.cfg.topology,
            cycles,
            sample_every: self.cfg.sample_every,
            window: self.cfg.window,
            groups: self.cfg.groups,
            deadline: self.cfg.deadline,
            max_retries: self.max_retries,
            totals: self.totals,
            classes,
            class_labels: self.class_labels,
            busy_by_class,
            latency: self.latency,
            samples: self.samples,
            anomalies: self.anomalies,
            injections: self.injections,
        }
    }
}

/// Everything a metrics-recording run observed, attached to the sim
/// result.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Topology label (empty when the caller didn't set one).
    pub topology: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles between samples.
    pub sample_every: u64,
    /// Sliding-window length in sample intervals.
    pub window: usize,
    /// Traffic-class groups per axis.
    pub groups: usize,
    /// SLO delivery deadline in cycles.
    pub deadline: u64,
    /// Retry budget per packet the burn ratios are relative to.
    pub max_retries: u32,
    /// Whole-run totals.
    pub totals: MetricsTotals,
    /// Non-empty traffic classes, `(src_group, dst_group)` ordered.
    pub classes: Vec<ClassStats>,
    /// Channel-class labels (index = class id in `busy_by_class`).
    pub class_labels: Vec<String>,
    /// Final cumulative busy cycles per channel class.
    pub busy_by_class: Vec<u64>,
    /// Whole-run latency sketch.
    pub latency: QuantileSketch,
    /// The exported time series, one sample per boundary (plus a
    /// final sample at run end).
    pub samples: Vec<MetricsSample>,
    /// Flight-recorder anomalies, in observation order.
    pub anomalies: Vec<Anomaly>,
    /// The replayable injection schedule: every generated packet as
    /// `(cycle, src, dst)`.
    pub injections: Vec<(u64, u32, u32)>,
}

impl MetricsReport {
    /// Overall delivered-within-deadline ratio.
    pub fn slo_ratio(&self) -> f64 {
        if self.totals.delivered == 0 {
            1.0
        } else {
            self.totals.within_deadline as f64 / self.totals.delivered as f64
        }
    }

    /// Overall retry-budget burn.
    pub fn retry_budget_burn(&self) -> f64 {
        let budget = self
            .totals
            .generated
            .saturating_mul(self.max_retries as u64);
        if budget == 0 {
            0.0
        } else {
            self.totals.retries as f64 / budget as f64
        }
    }

    /// Whether the flight recorder saw anything worth dumping.
    pub fn has_anomalies(&self) -> bool {
        !self.anomalies.is_empty()
    }

    /// The samples inside the flight-recorder window: the last
    /// `window` entries of the time series.
    pub fn flight_window(&self) -> &[MetricsSample] {
        let n = self.samples.len();
        &self.samples[n.saturating_sub(self.window)..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(groups: usize, ends: usize) -> MetricsRecorder {
        MetricsRecorder::new(
            MetricsConfig::sampling(10)
                .with_groups(groups)
                .with_deadline(100)
                .with_window(2),
            vec![0, 0, 1, 1],
            vec!["attach".into(), "local".into()],
            ends,
            6,
        )
    }

    #[test]
    fn off_makes_no_recorder_config() {
        let c = MetricsConfig::default();
        assert!(!c.is_on());
        assert_eq!(c, MetricsConfig::off());
        assert!(MetricsConfig::sampling(0).sample_every() == 1);
    }

    #[test]
    fn classes_partition_addresses() {
        let r = recorder(4, 64);
        assert_eq!(r.group_of(0), 0);
        assert_eq!(r.group_of(15), 0);
        assert_eq!(r.group_of(16), 1);
        assert_eq!(r.group_of(63), 3);
        // Degenerate fabrics never index out of range.
        let tiny = recorder(4, 2);
        assert_eq!(tiny.group_of(1), 2);
        assert_eq!(tiny.group_of(0), 0);
    }

    #[test]
    fn slo_accounting_tracks_deadline() {
        let mut r = recorder(2, 8);
        r.generated(0, 0, 7);
        r.generated(0, 1, 7);
        r.delivered(50, 0, 7, 50);
        r.delivered(200, 1, 7, 200);
        r.retried(5, 0, 7);
        let rep = r.finish(200, &[3, 4, 5, 6]);
        assert_eq!(rep.totals.delivered, 2);
        assert_eq!(rep.totals.within_deadline, 1);
        assert_eq!(rep.slo_ratio(), 0.5);
        let c = &rep.classes[0];
        assert_eq!((c.src_group, c.dst_group), (0, 1));
        assert_eq!(c.generated, 2);
        assert_eq!(c.within_deadline, 1);
        assert!((c.retry_budget_burn(6) - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(rep.busy_by_class, vec![7, 11]);
        // The final implicit sample closes the series.
        assert_eq!(rep.samples.last().unwrap().cycle, 200);
        assert_eq!(rep.injections.len(), 2);
    }

    #[test]
    fn sliding_window_forgets_old_intervals() {
        let mut r = recorder(2, 8);
        r.delivered(1, 0, 7, 1_000);
        r.sample(10, 0, 0, &[0; 4]);
        assert_eq!(r.samples[0].window_max, 1_000);
        r.sample(20, 0, 0, &[0; 4]);
        // Window of 2 still holds the slow interval.
        assert_eq!(r.samples[1].window_max, 1_000);
        r.delivered(25, 0, 7, 3);
        r.sample(30, 0, 0, &[0; 4]);
        // The 1_000-cycle interval has rolled out.
        assert_eq!(r.samples[2].window_max, 3);
        assert_eq!(r.samples[2].window_count, 1);
    }

    #[test]
    fn slo_breach_is_flagged_once() {
        let mut r = recorder(2, 8);
        for i in 0..10 {
            r.generated(i, 0, 1);
            r.delivered(i + 500, 0, 1, 500); // all miss the 100 deadline
        }
        r.sample(10, 0, 0, &[0; 4]);
        r.sample(20, 0, 0, &[0; 4]);
        let rep = r.finish(20, &[0; 4]);
        let breaches: Vec<_> = rep
            .anomalies
            .iter()
            .filter(|a| matches!(a.kind, AnomalyKind::SloBreach { .. }))
            .collect();
        assert_eq!(breaches.len(), 1, "{:?}", rep.anomalies);
        assert_eq!(breaches[0].cycle, 10);
        assert!(rep.has_anomalies());
    }

    #[test]
    fn deadlock_and_heal_are_anomalies() {
        let mut r = recorder(2, 8);
        r.heal_installed(40, 1);
        r.deadlock(77, "4 channels stuck".into());
        let rep = r.finish(80, &[0; 4]);
        assert_eq!(rep.totals.heal_installs, 1);
        assert_eq!(rep.totals.deadlock_cycle, Some(77));
        assert_eq!(rep.anomalies.len(), 2);
        assert_eq!(rep.anomalies[0].kind.tag(), "heal_install");
        assert_eq!(rep.anomalies[1].kind.tag(), "deadlock");
    }

    #[test]
    fn due_respects_the_boundary() {
        let r = recorder(2, 8);
        assert!(!r.due(0));
        assert!(r.due(10));
        assert!(!r.due(11));
        assert!(r.due(20));
    }
}
