//! Prometheus text exposition format for a [`MetricsReport`].
//!
//! Renders the version-0.0.4 text format a Prometheus server scrapes:
//! `# HELP` / `# TYPE` headers followed by sample lines, one metric
//! family at a time, label values escaped per the exposition rules.
//! The CI `metrics-smoke` job validates the output against a strict
//! line grammar, so treat the shape here as a public contract.

use crate::metrics::{MetricsReport, MetricsSample};

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float the exposition format accepts (integral values
/// print without an exponent; NaN/inf cannot occur in our ratios).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v.trunc() as i64)
    } else {
        format!("{v}")
    }
}

struct Writer {
    out: String,
    topo: String,
}

impl Writer {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// One sample line; `labels` are extra `key="value"` pairs beyond
    /// the standing topology label.
    fn line(&mut self, name: &str, labels: &[(&str, String)], value: String) {
        let mut all: Vec<String> = Vec::new();
        if !self.topo.is_empty() {
            all.push(format!("topology=\"{}\"", escape_label(&self.topo)));
        }
        for (k, v) in labels {
            all.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if all.is_empty() {
            self.out.push_str(&format!("{name} {value}\n"));
        } else {
            self.out
                .push_str(&format!("{name}{{{}}} {value}\n", all.join(",")));
        }
    }

    fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.line(name, &[], value.to_string());
    }

    fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, "gauge", help);
        self.line(name, &[], num(value));
    }
}

/// Renders `report` as Prometheus text exposition format. The scrape
/// reflects the end-of-run registry state: whole-run counters, the
/// final gauges, the run latency summary, the last sliding-window
/// quantiles, per-channel-class busy counters, and the per-traffic-
/// class SLO surface.
pub fn to_prometheus(report: &MetricsReport) -> String {
    let mut w = Writer {
        out: String::new(),
        topo: report.topology.clone(),
    };

    w.counter(
        "fractanet_generated_total",
        "Packets generated.",
        report.totals.generated,
    );
    w.counter(
        "fractanet_delivered_total",
        "Packets delivered (first copy).",
        report.totals.delivered,
    );
    w.counter(
        "fractanet_delivered_within_deadline_total",
        "Deliveries within the SLO deadline.",
        report.totals.within_deadline,
    );
    w.counter(
        "fractanet_abandoned_total",
        "Packets abandoned after exhausting retries.",
        report.totals.abandoned,
    );
    w.counter(
        "fractanet_retries_total",
        "Retries scheduled.",
        report.totals.retries,
    );
    w.counter(
        "fractanet_nacks_total",
        "Destination CRC NACKs.",
        report.totals.nacks,
    );
    w.counter(
        "fractanet_dups_suppressed_total",
        "Duplicate deliveries suppressed.",
        report.totals.dups_suppressed,
    );
    w.counter(
        "fractanet_faults_total",
        "Fault-schedule events applied.",
        report.totals.faults,
    );
    w.counter(
        "fractanet_heal_installs_total",
        "Certified healed-table installs.",
        report.totals.heal_installs,
    );
    w.counter(
        "fractanet_credit_stalls_total",
        "Transfers stalled on exhausted downstream credits.",
        report.totals.credit_stalls,
    );
    w.counter("fractanet_cycles_total", "Cycles simulated.", report.cycles);
    w.counter(
        "fractanet_anomalies_total",
        "Flight-recorder anomalies observed.",
        report.anomalies.len() as u64,
    );
    w.gauge(
        "fractanet_deadlocked",
        "1 when the run reached a deadlock verdict.",
        if report.totals.deadlock_cycle.is_some() {
            1.0
        } else {
            0.0
        },
    );

    let last: Option<&MetricsSample> = report.samples.last();
    w.gauge(
        "fractanet_in_flight",
        "Packets in flight at the last sample.",
        last.map(|s| s.in_flight as f64).unwrap_or(0.0),
    );
    w.gauge(
        "fractanet_routing_epoch",
        "Live routing epoch at the last sample.",
        last.map(|s| s.routing_epoch as f64).unwrap_or(0.0),
    );

    // Whole-run latency summary (bucket-quantile read-out).
    w.family(
        "fractanet_latency_cycles",
        "summary",
        "End-to-end delivery latency over the whole run.",
    );
    for (q, v) in [
        (0.5, report.latency.p50()),
        (0.95, report.latency.p95()),
        (0.99, report.latency.p99()),
    ] {
        w.line(
            "fractanet_latency_cycles",
            &[("quantile", num(q))],
            v.to_string(),
        );
    }
    w.line(
        "fractanet_latency_cycles_sum",
        &[],
        report.latency.sum().to_string(),
    );
    w.line(
        "fractanet_latency_cycles_count",
        &[],
        report.latency.count().to_string(),
    );
    w.gauge(
        "fractanet_latency_cycles_max",
        "Exact maximum end-to-end latency.",
        report.latency.max() as f64,
    );

    // Sliding-window quantiles from the last sample.
    w.family(
        "fractanet_window_latency_cycles",
        "gauge",
        "Sliding-window delivery latency at the last sample.",
    );
    if let Some(s) = last {
        for (q, v) in [
            (0.5, s.window_p50),
            (0.95, s.window_p95),
            (0.99, s.window_p99),
        ] {
            w.line(
                "fractanet_window_latency_cycles",
                &[("quantile", num(q))],
                v.to_string(),
            );
        }
    }

    // Per-channel-class busy counters.
    w.family(
        "fractanet_channel_busy_cycles_total",
        "counter",
        "Busy cycles summed over the channels of each link class.",
    );
    for (label, busy) in report.class_labels.iter().zip(&report.busy_by_class) {
        w.line(
            "fractanet_channel_busy_cycles_total",
            &[("class", label.clone())],
            busy.to_string(),
        );
    }

    // Traffic-class SLO surface.
    w.family(
        "fractanet_class_generated_total",
        "counter",
        "Packets generated per traffic class.",
    );
    for c in &report.classes {
        w.line(
            "fractanet_class_generated_total",
            &class_labels(c.src_group, c.dst_group),
            c.generated.to_string(),
        );
    }
    w.family(
        "fractanet_class_delivered_total",
        "counter",
        "Packets delivered per traffic class.",
    );
    for c in &report.classes {
        w.line(
            "fractanet_class_delivered_total",
            &class_labels(c.src_group, c.dst_group),
            c.delivered.to_string(),
        );
    }
    w.family(
        "fractanet_slo_within_deadline_ratio",
        "gauge",
        "Delivered-within-deadline ratio per traffic class.",
    );
    for c in &report.classes {
        w.line(
            "fractanet_slo_within_deadline_ratio",
            &class_labels(c.src_group, c.dst_group),
            num(c.slo_ratio()),
        );
    }
    w.family(
        "fractanet_retry_budget_burn",
        "gauge",
        "Fraction of the per-class retry budget consumed.",
    );
    for c in &report.classes {
        w.line(
            "fractanet_retry_budget_burn",
            &class_labels(c.src_group, c.dst_group),
            num(c.retry_budget_burn(report.max_retries)),
        );
    }
    w.family(
        "fractanet_class_latency_p99_cycles",
        "gauge",
        "Per-traffic-class p99 latency (bucket upper bound).",
    );
    for c in &report.classes {
        w.line(
            "fractanet_class_latency_p99_cycles",
            &class_labels(c.src_group, c.dst_group),
            c.latency.p99().to_string(),
        );
    }

    w.out
}

fn class_labels(sg: usize, dg: usize) -> [(&'static str, String); 2] {
    [("src_group", sg.to_string()), ("dst_group", dg.to_string())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsConfig;
    use fractanet_graph::{LinkClass, Network};

    fn sample_report(topology: &str) -> MetricsReport {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let r1 = net.add_router("r1", 6);
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        net.connect_any(r0, r1, LinkClass::Local).unwrap();
        net.connect_any(n0, r0, LinkClass::Attach).unwrap();
        net.connect_any(n1, r1, LinkClass::Attach).unwrap();
        let mut rec = MetricsConfig::sampling(10)
            .with_groups(2)
            .with_deadline(50)
            .with_topology(topology)
            .recorder(&net, 2, 6)
            .expect("metrics on");
        rec.generated(0, 0, 1);
        rec.generated(1, 1, 0);
        rec.delivered(20, 0, 1, 20);
        rec.delivered(90, 1, 0, 89);
        rec.retried(5, 1, 0);
        rec.sample(10, 1, 0, &[2; 6]);
        rec.finish(30, &[4; 6])
    }

    #[test]
    fn exposition_has_help_type_and_samples() {
        let out = to_prometheus(&sample_report("mesh:2x1"));
        for family in [
            "fractanet_generated_total",
            "fractanet_delivered_total",
            "fractanet_latency_cycles",
            "fractanet_window_latency_cycles",
            "fractanet_channel_busy_cycles_total",
            "fractanet_slo_within_deadline_ratio",
            "fractanet_retry_budget_burn",
        ] {
            assert!(
                out.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}\n{out}"
            );
            assert!(
                out.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
        assert!(out.contains("fractanet_generated_total{topology=\"mesh:2x1\"} 2"));
        assert!(out.contains("quantile=\"0.5\""));
        assert!(out.contains("fractanet_latency_cycles_count{topology=\"mesh:2x1\"} 2"));
        assert!(out.contains("class=\"local\""));
        assert!(out.contains("class=\"attach\""));
        assert!(out.contains("src_group=\"0\",dst_group=\"1\""));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in out.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (head, value) = line.rsplit_once(' ').expect(line);
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let name = head.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
        }
    }

    #[test]
    fn empty_topology_omits_the_label() {
        let out = to_prometheus(&sample_report(""));
        assert!(out.contains("\nfractanet_cycles_total 30\n"), "{out}");
        assert!(!out.contains("topology="));
    }

    #[test]
    fn label_escaping_is_applied() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(1.0), "1");
    }
}
