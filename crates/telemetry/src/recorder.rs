//! The recorder an engine feeds, and the immutable report it yields.
//!
//! A [`Recorder`] is private to one engine run: it is created from the
//! [`Telemetry`](crate::Telemetry) config when the run starts, fed
//! through typed emit helpers (all cheap integer pushes — no locks, no
//! I/O, no allocation beyond the pre-sized buffers), and consumed by
//! [`Recorder::finish`] into a [`TelemetryReport`] attached to the
//! simulation result. Keeping the recorder single-owner preserves the
//! engine's determinism guarantees and keeps parallel load sweeps
//! (which clone the *config*, never a recorder) trivially safe.

use fractanet_graph::ChannelId;

use crate::channels::{matching_bound, ChannelCounters, ChannelSummary};
use crate::event::{Span, SpanKind, TraceEvent};
use crate::hist::LatencyHistogram;
use crate::ring::EventRing;

/// Live telemetry state for one engine run.
#[derive(Clone, Debug)]
pub struct Recorder {
    ring: EventRing,
    spans: Vec<Span>,
    counters: ChannelCounters,
    pre_fault: LatencyHistogram,
    post_fault: LatencyHistogram,
    first_fault: Option<u64>,
    last_install: Option<u64>,
    recovered: bool,
}

impl Recorder {
    /// A recorder for a fabric of `channels` channels, storing at most
    /// `event_capacity` events.
    pub fn new(event_capacity: usize, channels: usize) -> Self {
        Recorder {
            ring: EventRing::new(event_capacity),
            spans: Vec::new(),
            counters: ChannelCounters::new(channels),
            pre_fault: LatencyHistogram::new(),
            post_fault: LatencyHistogram::new(),
            first_fault: None,
            last_install: None,
            recovered: false,
        }
    }

    /// Records a packet's first flit entering its injection channel.
    pub fn packet_injected(&mut self, cycle: u64, worm: u32, src: u32, dst: u32, len: u32) {
        self.ring.push(TraceEvent::PacketInjected {
            cycle,
            worm,
            src,
            dst,
            len,
        });
    }

    /// Records a head flit advancing into `channel`.
    pub fn head_advanced(&mut self, cycle: u64, worm: u32, channel: ChannelId) {
        self.ring.push(TraceEvent::HeadAdvanced {
            cycle,
            worm,
            channel,
        });
    }

    /// Records a flit wanting `channel` and not getting it this cycle.
    pub fn blocked(&mut self, cycle: u64, worm: u32, channel: ChannelId) {
        self.ring.push(TraceEvent::Blocked {
            cycle,
            worm,
            channel,
        });
        self.counters.blocked_cycle(channel.index());
    }

    /// Records a virtual-channel grant.
    pub fn vc_allocated(&mut self, cycle: u64, worm: u32, channel: ChannelId, vc: u8) {
        self.ring.push(TraceEvent::VcAllocated {
            cycle,
            worm,
            channel,
            vc,
        });
    }

    /// Records an in-flight worm being torn down.
    pub fn worm_truncated(&mut self, cycle: u64, worm: u32, drained: bool) {
        self.ring.push(TraceEvent::WormTruncated {
            cycle,
            worm,
            drained,
        });
    }

    /// Records a retry being scheduled.
    pub fn retried(&mut self, cycle: u64, worm: u32, attempt: u32, release: u64) {
        self.ring.push(TraceEvent::Retried {
            cycle,
            worm,
            attempt,
            release,
        });
    }

    /// Records a packet exhausting its retry budget.
    pub fn abandoned(&mut self, cycle: u64, worm: u32, src: u32, dst: u32) {
        self.ring.push(TraceEvent::Abandoned {
            cycle,
            worm,
            src,
            dst,
        });
    }

    /// Records a delivery, filing the latency pre- or post-fault by
    /// whether any fault had been applied when the tail ejected.
    pub fn delivered(&mut self, cycle: u64, worm: u32, latency: u64) {
        self.ring.push(TraceEvent::Delivered {
            cycle,
            worm,
            latency,
        });
        if self.first_fault.is_some() {
            self.post_fault.record(latency);
        } else {
            self.pre_fault.record(latency);
        }
    }

    /// Records a worm traversing a corrupting link.
    pub fn corrupted(&mut self, cycle: u64, worm: u32, channel: ChannelId) {
        self.ring.push(TraceEvent::Corrupted {
            cycle,
            worm,
            channel,
        });
    }

    /// Records a destination CRC failure answered with a NACK.
    pub fn nacked(&mut self, cycle: u64, worm: u32, src: u32, dst: u32) {
        self.ring.push(TraceEvent::Nacked {
            cycle,
            worm,
            src,
            dst,
        });
    }

    /// Records a duplicate arrival suppressed by sequence numbering.
    pub fn dup_suppressed(&mut self, cycle: u64, worm: u32, original: u32) {
        self.ring.push(TraceEvent::DupSuppressed {
            cycle,
            worm,
            original,
        });
    }

    /// Records a fault-schedule application at `cycle` (an instant
    /// span), anchoring the recovery decomposition on the first one.
    pub fn fault_applied(&mut self, cycle: u64) {
        self.spans.push(Span {
            kind: SpanKind::FaultInjection,
            begin: cycle,
            end: cycle,
        });
        if self.first_fault.is_none() {
            self.first_fault = Some(cycle);
        }
    }

    /// Records a certified routing-table install at `cycle`.
    pub fn repair_installed(&mut self, cycle: u64) {
        self.spans.push(Span {
            kind: SpanKind::HealInstall,
            begin: cycle,
            end: cycle,
        });
        if !self.recovered {
            self.last_install = Some(cycle);
        }
    }

    /// Records the first retried delivery completing at `cycle`,
    /// closing the recovery decomposition: a `TableRepair` span (first
    /// fault → the install the recovery rode on, or zero-length when
    /// recovery needed no repair) and a `Redelivery` span covering the
    /// rest. Their durations sum to `cycle - first_fault`, the
    /// engine's `time_to_recover`.
    pub fn recovered(&mut self, cycle: u64) {
        let Some(first) = self.first_fault else {
            return;
        };
        if self.recovered {
            return;
        }
        self.recovered = true;
        let pivot = self.last_install.unwrap_or(first).clamp(first, cycle);
        self.spans.push(Span {
            kind: SpanKind::TableRepair,
            begin: first,
            end: pivot,
        });
        self.spans.push(Span {
            kind: SpanKind::Redelivery,
            begin: pivot,
            end: cycle,
        });
    }

    /// Books one flit leaving `channel`.
    pub fn flit_forwarded(&mut self, channel: ChannelId) {
        self.counters.flit_forwarded(channel.index());
    }

    /// Observes an input-FIFO depth on `channel`.
    pub fn observe_depth(&mut self, channel: ChannelId, depth: u32) {
        self.counters.observe_depth(channel.index(), depth);
    }

    /// Books a credit stall on `channel` — a transfer blocked on a
    /// full downstream FIFO. A counter, not a ring event, so enabling
    /// it never perturbs the event stream.
    pub fn credit_stalled(&mut self, channel: ChannelId) {
        self.counters.credit_stall(channel.index());
    }

    /// Observes one cycle's concurrent contenders for `channel` as
    /// `(src, dst)` transfer pairs; their maximum matching is the
    /// cycle's empirical contention.
    pub fn observe_contention(&mut self, channel: ChannelId, pairs: &[(u32, u32)]) {
        if pairs.len() < 2 {
            // 0 or 1 contender can never beat an existing peak ≥ 1,
            // but a first observation of 1 still counts.
            self.counters
                .observe_contention(channel.index(), pairs.len() as u32);
            return;
        }
        let k = matching_bound(pairs) as u32;
        self.counters.observe_contention(channel.index(), k);
    }

    /// Consumes the recorder into a report. `cycles` is the number of
    /// cycles simulated and `busy` the engine's authoritative
    /// per-channel busy counts.
    pub fn finish(mut self, cycles: u64, busy: &[u64]) -> TelemetryReport {
        self.spans.push(Span {
            kind: SpanKind::Simulation,
            begin: 0,
            end: cycles,
        });
        let events_seen = self.ring.seen();
        let events_dropped = self.ring.dropped();
        TelemetryReport {
            cycles,
            events: self.ring.into_events(),
            events_seen,
            events_dropped,
            spans: self.spans,
            channels: self.counters.finish(busy),
            pre_fault_latency: self.pre_fault,
            post_fault_latency: self.post_fault,
        }
    }
}

/// Everything a recorded run observed, attached to the sim result.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Stored trace events, oldest first (oldest are kept on
    /// overflow).
    pub events: Vec<TraceEvent>,
    /// Events offered to the ring, stored or not.
    pub events_seen: u64,
    /// Events dropped for ring capacity. Invariant:
    /// `events.len() + events_dropped == events_seen`.
    pub events_dropped: u64,
    /// Recovery / fault / simulation spans. Always contains at least
    /// the whole-run `Simulation` span.
    pub spans: Vec<Span>,
    /// Per-channel counters, indexed by `ChannelId::index()`.
    pub channels: Vec<ChannelSummary>,
    /// Latencies of packets delivered before any fault was applied.
    pub pre_fault_latency: LatencyHistogram,
    /// Latencies of packets delivered after the first fault.
    pub post_fault_latency: LatencyHistogram,
}

impl TelemetryReport {
    /// The channel with the highest observed contention, with its
    /// empirical `k` (`None` when nothing contended).
    pub fn worst_contention(&self) -> Option<(ChannelId, u32)> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, s)| s.peak_contention > 0)
            .max_by_key(|(_, s)| s.peak_contention)
            .map(|(i, s)| (ChannelId(i as u32), s.peak_contention))
    }

    /// Per-channel utilization (`busy_cycles / cycles`), indexed by
    /// `ChannelId::index()`. All zeros for a zero-cycle run.
    pub fn utilization(&self) -> Vec<f64> {
        self.channels
            .iter()
            .map(|s| {
                if self.cycles == 0 {
                    0.0
                } else {
                    s.busy_cycles as f64 / self.cycles as f64
                }
            })
            .collect()
    }

    /// Channel counts per utilization decile: slot `i` counts channels
    /// with utilization in `[i/10, (i+1)/10)` (slot 9 includes 1.0).
    pub fn utilization_histogram(&self) -> [u64; 10] {
        let mut bins = [0u64; 10];
        for u in self.utilization() {
            let slot = ((u * 10.0) as usize).min(9);
            bins[slot] += 1;
        }
        bins
    }

    /// The recovery time implied by the span decomposition: the sum of
    /// the `TableRepair` and `Redelivery` durations. `None` when the
    /// run never recovered (no faults, or no retried delivery).
    /// Matches `RecoveryStats::time_to_recover` exactly when present.
    pub fn recovery_span_cycles(&self) -> Option<u64> {
        let mut found = false;
        let mut sum = 0u64;
        for s in &self.spans {
            if matches!(s.kind, SpanKind::TableRepair | SpanKind::Redelivery) {
                found = true;
                sum += s.duration();
            }
        }
        found.then_some(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_decomposition_sums_to_recovery_time() {
        let mut r = Recorder::new(64, 4);
        r.fault_applied(100);
        r.fault_applied(120); // second fault must not move the anchor
        r.repair_installed(150);
        r.recovered(200);
        r.repair_installed(210); // post-recovery install: instant only
        let rep = r.finish(300, &[0; 4]);
        assert_eq!(rep.recovery_span_cycles(), Some(100));
        let repair = rep
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::TableRepair)
            .unwrap();
        assert_eq!((repair.begin, repair.end), (100, 150));
        let redeliver = rep
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Redelivery)
            .unwrap();
        assert_eq!((redeliver.begin, redeliver.end), (150, 200));
        // Two fault instants, two install instants, one simulation.
        assert_eq!(rep.spans.len(), 7);
        assert!(rep
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Simulation && s.begin == 0 && s.end == 300));
    }

    #[test]
    fn recovery_without_install_is_pure_redelivery() {
        let mut r = Recorder::new(64, 1);
        r.fault_applied(10);
        r.recovered(35);
        let rep = r.finish(50, &[0]);
        assert_eq!(rep.recovery_span_cycles(), Some(25));
        let repair = rep
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::TableRepair)
            .unwrap();
        assert_eq!(repair.duration(), 0);
    }

    #[test]
    fn no_recovery_yields_none_and_simulation_span_survives() {
        let r = Recorder::new(64, 2);
        let rep = r.finish(40, &[3, 0]);
        assert_eq!(rep.recovery_span_cycles(), None);
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].kind, SpanKind::Simulation);
        assert_eq!(rep.utilization()[0], 3.0 / 40.0);
    }

    #[test]
    fn latency_splits_on_first_fault() {
        let mut r = Recorder::new(64, 1);
        r.delivered(5, 0, 5);
        r.fault_applied(10);
        r.delivered(20, 1, 12);
        let rep = r.finish(30, &[0]);
        assert_eq!(rep.pre_fault_latency.count(), 1);
        assert_eq!(rep.post_fault_latency.count(), 1);
        assert_eq!(rep.post_fault_latency.max(), 12);
    }

    #[test]
    fn contention_peak_uses_matching() {
        let mut r = Recorder::new(8, 2);
        r.observe_contention(ChannelId(0), &[(0, 1), (2, 3), (2, 4)]);
        r.observe_contention(ChannelId(0), &[(9, 9)]);
        let rep = r.finish(10, &[0, 0]);
        assert_eq!(rep.worst_contention(), Some((ChannelId(0), 2)));
    }

    #[test]
    fn report_accounting_matches_ring() {
        let mut r = Recorder::new(2, 1);
        for c in 0..5 {
            r.delivered(c, c as u32, 1);
        }
        let rep = r.finish(5, &[0]);
        assert_eq!(rep.events_seen, 5);
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events_dropped, 3);
        assert_eq!(
            rep.events.len() as u64 + rep.events_dropped,
            rep.events_seen
        );
    }
}
