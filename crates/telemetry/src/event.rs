//! The trace event taxonomy: one variant per observable state change
//! in the wormhole engine, each stamped with the cycle, the worm
//! (packet) id, and — where one is involved — the channel.
//!
//! Events are deliberately small `Copy` records (a tagged bundle of
//! integers) so the bounded ring buffer stays cache-friendly and a
//! multi-thousand-event trace costs kilobytes, not megabytes.

use fractanet_graph::ChannelId;

/// One observable state change in a simulated fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet's first flit entered its injection channel.
    PacketInjected {
        /// Cycle of the injection.
        cycle: u64,
        /// Worm (packet) id.
        worm: u32,
        /// Source end-node address.
        src: u32,
        /// Destination end-node address.
        dst: u32,
        /// Packet length in flits.
        len: u32,
    },
    /// A worm's head flit was granted a channel and advanced into it.
    HeadAdvanced {
        /// Cycle of the advance.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// The channel the head entered.
        channel: ChannelId,
    },
    /// A flit wanted to enter `channel` this cycle and could not
    /// (arbitration loss, full buffer, or a foreign owner).
    Blocked {
        /// Cycle of the stall.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// The contended channel.
        channel: ChannelId,
    },
    /// A virtual channel was allocated to a worm's head (VC engine).
    VcAllocated {
        /// Cycle of the allocation.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// The physical channel.
        channel: ChannelId,
        /// The virtual channel index on that physical channel.
        vc: u8,
    },
    /// An in-flight worm was torn down: its channels released and its
    /// flits discarded.
    WormTruncated {
        /// Cycle of the teardown.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// `true` when the teardown was the routing-epoch drain after
        /// a table install (rather than a fault hit).
        drained: bool,
    },
    /// The retry machinery re-queued a packet after backoff.
    Retried {
        /// Cycle the retry was scheduled.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// Transmission attempts so far (1 = first retry).
        attempt: u32,
        /// Cycle the packet re-enters its source queue.
        release: u64,
    },
    /// A packet exhausted its retry budget and was abandoned to the
    /// failover layer.
    Abandoned {
        /// Cycle of the abandonment.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// Source end-node address.
        src: u32,
        /// Destination end-node address.
        dst: u32,
    },
    /// A packet's tail flit was ejected at its destination.
    Delivered {
        /// Cycle of the final ejection.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// End-to-end latency in cycles (creation → tail ejected).
        latency: u64,
    },
    /// A worm traversed a corrupting link: it still delivers, but its
    /// CRC will fail at the destination.
    Corrupted {
        /// Cycle the corruption happened.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// The corrupting channel.
        channel: ChannelId,
    },
    /// A destination CRC check failed and the worm was NACKed
    /// ("This Packet Bad"), feeding the retry machinery immediately.
    Nacked {
        /// Cycle the tail ejected and the CRC check failed.
        cycle: u64,
        /// Worm id.
        worm: u32,
        /// Source end-node address.
        src: u32,
        /// Destination end-node address.
        dst: u32,
    },
    /// A destination saw a sequence number it had already accepted and
    /// suppressed the duplicate (exactly-once delivery).
    DupSuppressed {
        /// Cycle the duplicate's tail ejected.
        cycle: u64,
        /// Worm id of the duplicate copy.
        worm: u32,
        /// Worm id of the logical packet it duplicates.
        original: u32,
    },
}

impl TraceEvent {
    /// The cycle stamp shared by every variant.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::PacketInjected { cycle, .. }
            | TraceEvent::HeadAdvanced { cycle, .. }
            | TraceEvent::Blocked { cycle, .. }
            | TraceEvent::VcAllocated { cycle, .. }
            | TraceEvent::WormTruncated { cycle, .. }
            | TraceEvent::Retried { cycle, .. }
            | TraceEvent::Abandoned { cycle, .. }
            | TraceEvent::Delivered { cycle, .. }
            | TraceEvent::Corrupted { cycle, .. }
            | TraceEvent::Nacked { cycle, .. }
            | TraceEvent::DupSuppressed { cycle, .. } => cycle,
        }
    }

    /// The worm id shared by every variant.
    pub fn worm(&self) -> u32 {
        match *self {
            TraceEvent::PacketInjected { worm, .. }
            | TraceEvent::HeadAdvanced { worm, .. }
            | TraceEvent::Blocked { worm, .. }
            | TraceEvent::VcAllocated { worm, .. }
            | TraceEvent::WormTruncated { worm, .. }
            | TraceEvent::Retried { worm, .. }
            | TraceEvent::Abandoned { worm, .. }
            | TraceEvent::Delivered { worm, .. }
            | TraceEvent::Corrupted { worm, .. }
            | TraceEvent::Nacked { worm, .. }
            | TraceEvent::DupSuppressed { worm, .. } => worm,
        }
    }

    /// The channel involved, when the variant names one.
    pub fn channel(&self) -> Option<ChannelId> {
        match *self {
            TraceEvent::HeadAdvanced { channel, .. }
            | TraceEvent::Blocked { channel, .. }
            | TraceEvent::VcAllocated { channel, .. }
            | TraceEvent::Corrupted { channel, .. } => Some(channel),
            _ => None,
        }
    }

    /// Stable lowercase tag used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PacketInjected { .. } => "injected",
            TraceEvent::HeadAdvanced { .. } => "head_advanced",
            TraceEvent::Blocked { .. } => "blocked",
            TraceEvent::VcAllocated { .. } => "vc_allocated",
            TraceEvent::WormTruncated { .. } => "truncated",
            TraceEvent::Retried { .. } => "retried",
            TraceEvent::Abandoned { .. } => "abandoned",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::Corrupted { .. } => "corrupted",
            TraceEvent::Nacked { .. } => "nacked",
            TraceEvent::DupSuppressed { .. } => "dup_suppressed",
        }
    }
}

/// What a [`Span`] measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole run, cycle 0 to the last simulated cycle. Every
    /// recorded trace contains exactly one.
    Simulation,
    /// One fault-schedule application (instant: begin == end).
    FaultInjection,
    /// First fault → the repaired-table install the recovery rode on.
    /// Emitted once, when the first retried packet is delivered.
    TableRepair,
    /// A certified routing-table install (instant: begin == end).
    HealInstall,
    /// Table install (or first fault when no repair was installed) →
    /// first retried packet delivered. Together with [`TableRepair`]
    /// this decomposes `RecoveryStats::time_to_recover` exactly:
    /// `TableRepair.duration() + Redelivery.duration() ==
    /// time_to_recover`.
    ///
    /// [`TableRepair`]: SpanKind::TableRepair
    Redelivery,
}

impl SpanKind {
    /// Stable lowercase tag used by the exporters.
    pub fn tag(self) -> &'static str {
        match self {
            SpanKind::Simulation => "simulation",
            SpanKind::FaultInjection => "fault_injection",
            SpanKind::TableRepair => "table_repair",
            SpanKind::HealInstall => "heal_install",
            SpanKind::Redelivery => "redelivery",
        }
    }
}

/// A closed interval of simulated cycles with a label — the Chrome
/// trace "complete event" (`"ph":"X"`) analogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the interval measures.
    pub kind: SpanKind,
    /// First cycle of the interval.
    pub begin: u64,
    /// One past the last cycle of the interval (`begin == end` is an
    /// instant).
    pub end: u64,
}

impl Span {
    /// The span length in cycles.
    pub fn duration(&self) -> u64 {
        self.end - self.begin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let evs = [
            TraceEvent::PacketInjected {
                cycle: 1,
                worm: 2,
                src: 0,
                dst: 3,
                len: 8,
            },
            TraceEvent::HeadAdvanced {
                cycle: 2,
                worm: 2,
                channel: ChannelId(5),
            },
            TraceEvent::Blocked {
                cycle: 3,
                worm: 2,
                channel: ChannelId(5),
            },
            TraceEvent::VcAllocated {
                cycle: 4,
                worm: 2,
                channel: ChannelId(5),
                vc: 1,
            },
            TraceEvent::WormTruncated {
                cycle: 5,
                worm: 2,
                drained: false,
            },
            TraceEvent::Retried {
                cycle: 6,
                worm: 2,
                attempt: 1,
                release: 20,
            },
            TraceEvent::Abandoned {
                cycle: 7,
                worm: 2,
                src: 0,
                dst: 3,
            },
            TraceEvent::Delivered {
                cycle: 8,
                worm: 2,
                latency: 7,
            },
            TraceEvent::Corrupted {
                cycle: 9,
                worm: 2,
                channel: ChannelId(5),
            },
            TraceEvent::Nacked {
                cycle: 10,
                worm: 2,
                src: 0,
                dst: 3,
            },
            TraceEvent::DupSuppressed {
                cycle: 11,
                worm: 2,
                original: 0,
            },
        ];
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
            assert_eq!(e.worm(), 2);
            assert!(!e.kind().is_empty());
        }
        assert_eq!(evs[1].channel(), Some(ChannelId(5)));
        assert_eq!(evs[8].channel(), Some(ChannelId(5)));
        assert_eq!(evs[0].channel(), None);
        assert_eq!(evs[9].channel(), None);
        assert_eq!(evs[9].kind(), "nacked");
        assert_eq!(evs[10].kind(), "dup_suppressed");
    }

    #[test]
    fn span_duration() {
        let s = Span {
            kind: SpanKind::TableRepair,
            begin: 100,
            end: 140,
        };
        assert_eq!(s.duration(), 40);
        assert_eq!(SpanKind::Redelivery.tag(), "redelivery");
    }
}
