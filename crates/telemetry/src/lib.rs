//! # fractanet-telemetry
//!
//! Flit-level observability for the wormhole simulator: what happened,
//! on which channel, at which cycle — and what it cost.
//!
//! The paper's evaluation story rests on aggregate numbers (delivered
//! fraction, mean latency, recovery time). Those tell you *that* a
//! configuration misbehaves, not *why*. This crate adds the missing
//! layer:
//!
//! * a trace-event taxonomy ([`TraceEvent`]) covering injection, head
//!   advances, blocking, VC allocation, truncation, retry, abandonment
//!   and delivery, stored in a bounded ring ([`ring::EventRing`]) with
//!   exact drop accounting;
//! * per-channel counters ([`ChannelSummary`]) — busy cycles, flits
//!   forwarded, blocked cycles, peak queue depth — plus an *empirical*
//!   worst-link-contention figure computed with the same bipartite
//!   matching the analytical L5 bound uses, so simulation can be
//!   checked against the paper's Table 2 numbers;
//! * log-bucketed latency histograms ([`LatencyHistogram`]) split
//!   pre-/post-fault;
//! * recovery spans ([`Span`]) that decompose
//!   `RecoveryStats::time_to_recover` into table-repair and
//!   redelivery phases;
//! * exporters: JSONL ([`export::to_jsonl`]), Chrome `trace_event`
//!   JSON ([`export::to_chrome_trace`]) and a plain-text summary
//!   ([`export::to_text_summary`]);
//! * a *live* metrics layer ([`metrics`]): counters, gauges,
//!   mergeable sliding-window quantile sketches ([`QuantileSketch`]),
//!   per-traffic-class SLO accounting, a Prometheus text exporter
//!   ([`prom::to_prometheus`]) and a flight recorder that renders
//!   Chrome-trace incident bundles on anomaly
//!   ([`flight::incident_chrome_trace`]).
//!
//! ## Zero cost when off
//!
//! The engine-facing surface is split in two. [`Telemetry`] is pure
//! *configuration* — a small `Clone + PartialEq` value carried on
//! `SimConfig`, safe to clone across parallel sweep points. The
//! mutable state lives in a [`Recorder`] the engine privately creates
//! only when `Telemetry::is_on()`; when off, every instrumentation
//! site reduces to one branch on an `Option` that is always `None`,
//! which the benchmark suite pins under a measurable bound.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channels;
pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod prom;
pub mod recorder;
pub mod ring;
pub mod sketch;

pub use channels::{matching_bound, ChannelSummary};
pub use event::{Span, SpanKind, TraceEvent};
pub use export::{to_chrome_trace, to_jsonl, to_text_summary};
pub use flight::incident_chrome_trace;
pub use hist::LatencyHistogram;
pub use metrics::{
    Anomaly, AnomalyKind, ClassStats, MetricsConfig, MetricsRecorder, MetricsReport, MetricsSample,
    MetricsTotals,
};
pub use prom::to_prometheus;
pub use recorder::{Recorder, TelemetryReport};
pub use sketch::QuantileSketch;

/// Default event-ring capacity when recording is enabled.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Telemetry configuration carried on `SimConfig`.
///
/// This is a value, not a handle: engines construct their own private
/// [`Recorder`] from it via [`Telemetry::recorder`], so cloning a
/// config (as load sweeps do per point) never shares mutable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Telemetry {
    enabled: bool,
    event_capacity: usize,
}

impl Telemetry {
    /// Telemetry disabled: no recorder is created, no report attached.
    pub fn off() -> Self {
        Telemetry {
            enabled: false,
            event_capacity: 0,
        }
    }

    /// Telemetry enabled with the default event-ring capacity.
    pub fn recording() -> Self {
        Telemetry {
            enabled: true,
            event_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Sets the event-ring capacity (only meaningful when recording;
    /// counters, histograms and spans are unaffected by it).
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Whether a run under this config records telemetry.
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// The configured event-ring capacity.
    pub fn event_capacity(&self) -> usize {
        self.event_capacity
    }

    /// A fresh recorder for a fabric of `channels` channels, or `None`
    /// when telemetry is off.
    pub fn recorder(&self, channels: usize) -> Option<Recorder> {
        self.enabled
            .then(|| Recorder::new(self.event_capacity, channels))
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_and_makes_no_recorder() {
        let t = Telemetry::default();
        assert!(!t.is_on());
        assert!(t.recorder(8).is_none());
        assert_eq!(t, Telemetry::off());
    }

    #[test]
    fn recording_builds_a_recorder() {
        let t = Telemetry::recording().with_event_capacity(16);
        assert!(t.is_on());
        assert_eq!(t.event_capacity(), 16);
        let rec = t.recorder(4).expect("recorder when on");
        let rep = rec.finish(0, &[0; 4]);
        assert_eq!(rep.channels.len(), 4);
    }
}
