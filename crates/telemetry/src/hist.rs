//! Log-bucketed latency histograms.
//!
//! Latencies land in power-of-two buckets (bucket `i` holds values in
//! `[2^(i-1), 2^i)`, bucket 0 holds zero), so recording is O(1), the
//! footprint is 65 counters regardless of run length, and quantiles
//! are exact to within a factor of two — plenty to tell a healthy p99
//! from a pileup. The true maximum is tracked exactly.

/// Fixed-footprint histogram of cycle counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing it (so `quantile(0.5)` is within 2× of
    /// the true median). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i, capped by the exact max.
                let ub = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return ub.min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (upper bucket bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty `(bucket_upper_bound, count)` rows, low to high.
    pub fn rows(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { (1u64 << i) - 1 }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_bound_truth_within_2x() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // True p50 = 500; bucket answer in [500, 1000).
        let p50 = h.p50();
        assert!((500..1000).contains(&p50), "{p50}");
        // p99 = 990; bucket answer in [990, 1980) but capped at max.
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "{p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.rows().is_empty());
    }

    #[test]
    fn rows_report_populated_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(5);
        h.record(6);
        let rows = h.rows();
        assert_eq!(rows, vec![(0, 1), (7, 2)]);
    }
}
