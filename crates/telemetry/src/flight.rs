//! Flight recorder: Chrome-trace incident bundles from the metrics
//! sliding window.
//!
//! The metrics recorder keeps the last `window` samples and an
//! anomaly log (deadlock verdicts, SLO breaches, heal installs). When
//! a run ends with anomalies — or an external harness such as chaos
//! adds one — [`incident_chrome_trace`] renders a self-contained
//! `chrome://tracing` / Perfetto bundle: one complete span covering
//! the flight window, a counter track per live gauge and windowed
//! quantile, and an instant event per anomaly. One trace microsecond
//! equals one simulated cycle, matching the event-ring exporter.

use fractanet_graph::json::{JsonArray, JsonObject};

use crate::metrics::{Anomaly, MetricsReport};

fn counter_event(name: &str, ts: u64, value: u64) -> String {
    JsonObject::new()
        .field_str("name", name)
        .field_str("ph", "C")
        .field_num("ts", ts)
        .field_num("pid", 0)
        .field_raw("args", &JsonObject::new().field_num("value", value).build())
        .build()
}

/// Renders the incident bundle for `report`, with `extra` anomalies
/// appended (the chaos harness passes its invariant violations here;
/// pass `&[]` otherwise). Returns `None` when there is nothing
/// anomalous to dump.
pub fn incident_chrome_trace(report: &MetricsReport, extra: &[Anomaly]) -> Option<String> {
    if report.anomalies.is_empty() && extra.is_empty() {
        return None;
    }
    let window = report.flight_window();
    let begin = window.first().map(|s| s.cycle).unwrap_or(0);
    let end = window
        .last()
        .map(|s| s.cycle)
        .unwrap_or(report.cycles)
        .max(begin + 1);

    let mut events = JsonArray::new();
    events.push_raw(
        &JsonObject::new()
            .field_str("name", "flight_window")
            .field_str("ph", "X")
            .field_num("ts", begin)
            .field_num("dur", end - begin)
            .field_num("pid", 0)
            .field_num("tid", 0)
            .field_raw(
                "args",
                &JsonObject::new()
                    .field_str("topology", &report.topology)
                    .field_num("sample_every", report.sample_every)
                    .field_num("samples", window.len() as u64)
                    .build(),
            )
            .build(),
    );
    for s in window {
        events.push_raw(&counter_event("in_flight", s.cycle, s.in_flight));
        events.push_raw(&counter_event("delivered_total", s.cycle, s.delivered));
        events.push_raw(&counter_event("retries_total", s.cycle, s.retries));
        events.push_raw(&counter_event("window_p50", s.cycle, s.window_p50));
        events.push_raw(&counter_event("window_p99", s.cycle, s.window_p99));
        events.push_raw(&counter_event("routing_epoch", s.cycle, s.routing_epoch));
    }
    for a in report.anomalies.iter().chain(extra) {
        events.push_raw(
            &JsonObject::new()
                .field_str("name", a.kind.tag())
                .field_str("ph", "i")
                .field_num("ts", a.cycle)
                .field_num("pid", 0)
                .field_num("tid", 0)
                .field_str("s", "g")
                .field_raw(
                    "args",
                    &JsonObject::new().field_str("detail", &a.detail).build(),
                )
                .build(),
        );
    }
    Some(
        JsonObject::new()
            .field_raw("traceEvents", &events.build())
            .field_str("displayTimeUnit", "ms")
            .build(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{AnomalyKind, MetricsConfig};
    use fractanet_graph::{LinkClass, Network};

    fn tiny_net() -> Network {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        net.connect_any(n0, r0, LinkClass::Attach).unwrap();
        net.connect_any(n1, r0, LinkClass::Attach).unwrap();
        net
    }

    fn report(with_anomaly: bool) -> MetricsReport {
        let net = tiny_net();
        let mut rec = MetricsConfig::sampling(10)
            .with_window(2)
            .recorder(&net, 2, 6)
            .unwrap();
        rec.generated(1, 0, 1);
        rec.delivered(8, 0, 1, 7);
        rec.sample(10, 3, 0, &[0; 4]);
        rec.sample(20, 1, 0, &[0; 4]);
        rec.sample(30, 0, 1, &[0; 4]);
        if with_anomaly {
            rec.deadlock(25, "stuck".into());
        }
        rec.finish(30, &[0; 4])
    }

    #[test]
    fn quiet_runs_dump_nothing() {
        assert!(incident_chrome_trace(&report(false), &[]).is_none());
    }

    #[test]
    fn anomalies_produce_a_valid_bundle() {
        let out = incident_chrome_trace(&report(true), &[]).expect("bundle");
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"name\":\"flight_window\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"name\":\"deadlock\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
        // The window keeps only the last two samples.
        assert!(!out.contains("\"ts\":10,\"pid\":0,\"args\""));
    }

    #[test]
    fn extra_anomalies_force_a_dump() {
        let extra = vec![Anomaly {
            cycle: 5,
            kind: AnomalyKind::InvariantViolation,
            detail: "exactly_once: lost 1".into(),
        }];
        let out = incident_chrome_trace(&report(false), &extra).expect("bundle");
        assert!(out.contains("\"name\":\"invariant_violation\""));
        assert!(out.contains("exactly_once: lost 1"));
    }
}
