//! Trace exporters: JSONL for scripting, Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto, and a plain-text summary for humans.
//!
//! All three render from a finished [`TelemetryReport`] and share the
//! workspace JSON writer (`fractanet_graph::json`) with the linter's
//! `--json` output. Cycle stamps are exported as-is: in the Chrome
//! view one microsecond of trace time equals one simulated cycle.

use fractanet_graph::json::{JsonArray, JsonObject};

use crate::event::{Span, TraceEvent};
use crate::recorder::TelemetryReport;

fn event_obj(ev: &TraceEvent) -> JsonObject {
    let o = JsonObject::new()
        .field_str("type", "event")
        .field_str("kind", ev.kind())
        .field_num("cycle", ev.cycle())
        .field_num("worm", ev.worm());
    match *ev {
        TraceEvent::PacketInjected { src, dst, len, .. } => o
            .field_num("src", src)
            .field_num("dst", dst)
            .field_num("len", len),
        TraceEvent::HeadAdvanced { channel, .. } | TraceEvent::Blocked { channel, .. } => {
            o.field_num("channel", channel.0)
        }
        TraceEvent::VcAllocated { channel, vc, .. } => {
            o.field_num("channel", channel.0).field_num("vc", vc)
        }
        TraceEvent::WormTruncated { drained, .. } => o.field_bool("drained", drained),
        TraceEvent::Retried {
            attempt, release, ..
        } => o
            .field_num("attempt", attempt)
            .field_num("release", release),
        TraceEvent::Abandoned { src, dst, .. } | TraceEvent::Nacked { src, dst, .. } => {
            o.field_num("src", src).field_num("dst", dst)
        }
        TraceEvent::Delivered { latency, .. } => o.field_num("latency", latency),
        TraceEvent::Corrupted { channel, .. } => o.field_num("channel", channel.0),
        TraceEvent::DupSuppressed { original, .. } => o.field_num("original", original),
    }
}

fn span_obj(s: &Span) -> JsonObject {
    JsonObject::new()
        .field_str("type", "span")
        .field_str("kind", s.kind.tag())
        .field_num("begin", s.begin)
        .field_num("end", s.end)
        .field_num("duration", s.duration())
}

/// One JSON object per line: a `meta` header, then every span, then
/// every stored event in arrival order.
pub fn to_jsonl(report: &TelemetryReport) -> String {
    let mut out = String::new();
    out.push_str(
        &JsonObject::new()
            .field_str("type", "meta")
            .field_num("cycles", report.cycles)
            .field_num("events_seen", report.events_seen)
            .field_num("events_stored", report.events.len())
            .field_num("events_dropped", report.events_dropped)
            .field_num("channels", report.channels.len())
            .build(),
    );
    out.push('\n');
    for s in &report.spans {
        out.push_str(&span_obj(s).build());
        out.push('\n');
    }
    for ev in &report.events {
        out.push_str(&event_obj(ev).build());
        out.push('\n');
    }
    out
}

/// Chrome `trace_event` JSON (the `{"traceEvents":[…]}` object form).
///
/// Spans with nonzero duration become complete events (`"ph":"X"`) —
/// every trace contains at least the whole-run `simulation` span —
/// zero-length spans and trace events become instants (`"ph":"i"`).
/// One trace microsecond equals one simulated cycle.
pub fn to_chrome_trace(report: &TelemetryReport) -> String {
    let mut events = JsonArray::new();
    for s in &report.spans {
        if s.duration() > 0 {
            events.push_raw(
                &JsonObject::new()
                    .field_str("name", s.kind.tag())
                    .field_str("ph", "X")
                    .field_num("ts", s.begin)
                    .field_num("dur", s.duration())
                    .field_num("pid", 0)
                    .field_num("tid", 0)
                    .build(),
            );
        } else {
            events.push_raw(
                &JsonObject::new()
                    .field_str("name", s.kind.tag())
                    .field_str("ph", "i")
                    .field_num("ts", s.begin)
                    .field_num("pid", 0)
                    .field_num("tid", 0)
                    .field_str("s", "p")
                    .build(),
            );
        }
    }
    for ev in &report.events {
        let mut args = JsonObject::new().field_num("worm", ev.worm());
        if let Some(ch) = ev.channel() {
            args = args.field_num("channel", ch.0);
        }
        if let TraceEvent::Delivered { latency, .. } = ev {
            args = args.field_num("latency", *latency);
        }
        events.push_raw(
            &JsonObject::new()
                .field_str("name", ev.kind())
                .field_str("ph", "i")
                .field_num("ts", ev.cycle())
                .field_num("pid", 0)
                .field_num("tid", ev.worm() as u64 + 1)
                .field_str("s", "t")
                .field_raw("args", &args.build())
                .build(),
        );
    }
    JsonObject::new()
        .field_raw("traceEvents", &events.build())
        .field_str("displayTimeUnit", "ms")
        .build()
}

fn hist_line(label: &str, h: &crate::hist::LatencyHistogram) -> String {
    if h.count() == 0 {
        format!("  {label}: (no samples)\n")
    } else {
        format!(
            "  {label}: n={} mean={:.1} p50={} p95={} p99={} max={}\n",
            h.count(),
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.max()
        )
    }
}

/// Human-readable per-channel summary: event accounting, recovery
/// spans, latency percentiles split pre-/post-fault, the utilization
/// decile histogram, and the busiest channels.
pub fn to_text_summary(report: &TelemetryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "telemetry: {} cycles, {} events seen ({} stored, {} dropped)\n",
        report.cycles,
        report.events_seen,
        report.events.len(),
        report.events_dropped
    ));

    out.push_str("spans:\n");
    for s in &report.spans {
        out.push_str(&format!(
            "  {:<16} [{:>8} .. {:>8}]  {} cycles\n",
            s.kind.tag(),
            s.begin,
            s.end,
            s.duration()
        ));
    }
    if let Some(t) = report.recovery_span_cycles() {
        out.push_str(&format!("  time_to_recover (repair + redelivery): {t}\n"));
    }

    out.push_str("latency (cycles):\n");
    out.push_str(&hist_line("pre-fault ", &report.pre_fault_latency));
    out.push_str(&hist_line("post-fault", &report.post_fault_latency));

    let bins = report.utilization_histogram();
    out.push_str("utilization histogram (channels per decile):\n  ");
    for (i, b) in bins.iter().enumerate() {
        out.push_str(&format!("{}0%:{b} ", i));
    }
    out.push('\n');

    let mut busiest: Vec<(usize, &crate::channels::ChannelSummary)> =
        report.channels.iter().enumerate().collect();
    busiest.sort_by(|a, b| b.1.busy_cycles.cmp(&a.1.busy_cycles).then(a.0.cmp(&b.0)));
    out.push_str("busiest channels (busy / fwd / blocked / depth / contention):\n");
    for (id, s) in busiest.iter().take(16) {
        if s.busy_cycles == 0 && s.flits_forwarded == 0 && s.blocked_cycles == 0 {
            break;
        }
        let util = if report.cycles == 0 {
            0.0
        } else {
            100.0 * s.busy_cycles as f64 / report.cycles as f64
        };
        out.push_str(&format!(
            "  c{:<5} {:>8} ({util:>5.1}%) {:>8} {:>8} {:>5} {:>5}\n",
            id,
            s.busy_cycles,
            s.flits_forwarded,
            s.blocked_cycles,
            s.peak_queue_depth,
            s.peak_contention
        ));
    }
    if let Some((ch, k)) = report.worst_contention() {
        out.push_str(&format!("worst link contention: {k}:1 on c{}\n", ch.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn faulted_report() -> TelemetryReport {
        let mut r = Recorder::new(128, 4);
        r.packet_injected(0, 0, 0, 3, 8);
        r.delivered(9, 0, 9);
        r.fault_applied(10);
        r.worm_truncated(10, 1, false);
        r.retried(10, 1, 1, 14);
        r.repair_installed(12);
        r.delivered(25, 1, 25);
        r.recovered(25);
        r.flit_forwarded(fractanet_graph::ChannelId(0));
        r.finish(40, &[5, 0, 0, 0])
    }

    fn balanced(j: &str) {
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count(), "{j}");
    }

    #[test]
    fn jsonl_has_meta_spans_and_events() {
        let rep = faulted_report();
        let out = to_jsonl(&rep);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"meta\""));
        assert!(lines[0].contains("\"events_seen\":5"));
        // meta + spans + stored events, nothing else.
        assert_eq!(lines.len(), 1 + rep.spans.len() + rep.events.len(), "{out}");
        assert!(out.contains("\"kind\":\"table_repair\""));
        assert!(out.contains("\"kind\":\"retried\""));
        for l in &lines {
            balanced(l);
        }
    }

    #[test]
    fn gray_failure_events_export_everywhere() {
        let mut r = Recorder::new(32, 2);
        r.corrupted(5, 3, fractanet_graph::ChannelId(1));
        r.nacked(9, 3, 0, 2);
        r.dup_suppressed(14, 7, 3);
        let rep = r.finish(20, &[0, 0]);
        let jsonl = to_jsonl(&rep);
        assert!(jsonl.contains("\"kind\":\"corrupted\",\"cycle\":5,\"worm\":3,\"channel\":1"));
        assert!(jsonl.contains("\"kind\":\"nacked\",\"cycle\":9,\"worm\":3,\"src\":0,\"dst\":2"));
        assert!(
            jsonl.contains("\"kind\":\"dup_suppressed\",\"cycle\":14,\"worm\":7,\"original\":3")
        );
        for l in jsonl.lines() {
            balanced(l);
        }
        let chrome = to_chrome_trace(&rep);
        balanced(&chrome);
        assert!(chrome.contains("\"name\":\"corrupted\""));
        assert!(chrome.contains("\"name\":\"nacked\""));
        assert!(chrome.contains("\"name\":\"dup_suppressed\""));
    }

    #[test]
    fn chrome_trace_has_complete_span() {
        let out = to_chrome_trace(&faulted_report());
        balanced(&out);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"name\":\"simulation\""));
        assert!(out.contains("\"name\":\"redelivery\""));
        // Instant fault marker.
        assert!(out.contains("\"name\":\"fault_injection\",\"ph\":\"i\""));
    }

    #[test]
    fn chrome_trace_without_faults_still_has_a_span() {
        let rep = Recorder::new(8, 1).finish(100, &[0]);
        let out = to_chrome_trace(&rep);
        balanced(&out);
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":100"));
    }

    #[test]
    fn text_summary_mentions_everything() {
        let out = to_text_summary(&faulted_report());
        assert!(out.contains("5 events seen"));
        assert!(out.contains("time_to_recover (repair + redelivery): 15"));
        assert!(out.contains("pre-fault"));
        assert!(out.contains("post-fault"));
        assert!(out.contains("utilization histogram"));
        assert!(out.contains("c0"));
    }
}
