//! A bounded event ring with exact drop accounting.
//!
//! Tracing must never make a run unbounded in memory, so the ring
//! holds at most `capacity` events. When full, the *newest* event is
//! dropped (the front of a trace explains how a pileup formed; the
//! tail of an overflowing trace is reconstructible from counters), and
//! every drop is counted so `stored + dropped == seen` holds exactly.

use crate::event::TraceEvent;

/// Bounded FIFO of trace events.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    seen: u64,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            capacity,
            seen: 0,
            dropped: 0,
        }
    }

    /// Records one event, dropping (and counting) it when full.
    pub fn push(&mut self, ev: TraceEvent) {
        self.seen += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Events offered, stored or not.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events dropped for capacity. Invariant:
    /// `len() as u64 + dropped() == seen()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stored events, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the ring, yielding the stored events in arrival order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Delivered {
            cycle,
            worm: 0,
            latency: 1,
        }
    }

    #[test]
    fn accounting_is_exact_across_overflow() {
        let mut r = EventRing::new(3);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.seen(), 10);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.len() as u64 + r.dropped(), r.seen());
        // Oldest events are the ones kept.
        let evs = r.into_events();
        assert_eq!(
            evs.iter().map(TraceEvent::cycle).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.seen(), 1);
    }
}
