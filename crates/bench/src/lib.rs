//! # fractanet-bench
//!
//! Experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus Criterion benches over the library's
//! computational kernels (`benches/`). `repro_all` runs every
//! experiment in sequence and is what `EXPERIMENTS.md` is generated
//! from.
//!
//! Every binary prints a human-readable table; set `FRACTANET_JSON=1`
//! to additionally emit one JSON object per result row on stderr for
//! downstream tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Emits a JSON-lines record on stderr when `FRACTANET_JSON=1`.
///
/// The row's fields are flattened next to an `experiment` tag, so each
/// line reads `{"experiment":"...", <row fields>}`.
pub fn emit_json<T: Serialize>(experiment: &str, row: &T) {
    if std::env::var("FRACTANET_JSON").as_deref() == Ok("1") {
        let tag = format!("\"experiment\":{}", experiment.json());
        match row.json_fields() {
            Some(fields) if !fields.is_empty() => eprintln!("{{{tag},{fields}}}"),
            _ => eprintln!("{{{tag}}}"),
        }
    }
}

/// Prints a section header in the style every experiment shares.
pub fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Builds a [`fractanet::System`] from a textual topology spec
/// (`mesh:6x6`, `fattree:64:4:2`, …), panicking on a malformed spec.
/// Experiment binaries use this instead of hand-rolled constructors so
/// their configurations read exactly like the CLI's.
pub fn system(spec: &str) -> fractanet::System {
    spec.parse::<fractanet::TopoSpec>()
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
        .build()
}

/// Formats `value (paper: expected)` with a match marker.
pub fn versus(value: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    let v = value.to_string();
    let p = paper.to_string();
    if v == p {
        format!("{v} (paper: {p} ✓)")
    } else {
        format!("{v} (paper: {p})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_marks_matches() {
        assert!(versus(48, 48).contains('✓'));
        assert!(!versus(47, 48).contains('✓'));
    }

    #[test]
    fn emit_json_respects_env() {
        // Not set in tests: must be a no-op (and not panic).
        #[derive(Serialize)]
        struct Row {
            x: u32,
        }
        emit_json("test", &Row { x: 1 });
    }
}
