//! # fractanet-bench
//!
//! Experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus Criterion benches over the library's
//! computational kernels (`benches/`). `repro_all` runs every
//! experiment in sequence and is what `EXPERIMENTS.md` is generated
//! from.
//!
//! Every binary prints a human-readable table; set `FRACTANET_JSON=1`
//! to additionally emit one JSON object per result row on stderr for
//! downstream tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Emits a JSON-lines record on stderr when `FRACTANET_JSON=1`.
///
/// The row's fields are flattened next to an `experiment` tag, so each
/// line reads `{"experiment":"...", <row fields>}`.
pub fn emit_json<T: Serialize>(experiment: &str, row: &T) {
    if std::env::var("FRACTANET_JSON").as_deref() == Ok("1") {
        let tag = format!("\"experiment\":{}", experiment.json());
        match row.json_fields() {
            Some(fields) if !fields.is_empty() => eprintln!("{{{tag},{fields}}}"),
            _ => eprintln!("{{{tag}}}"),
        }
    }
}

/// Prints a section header in the style every experiment shares.
pub fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// One machine-readable perf-trajectory point: how fast one engine
/// configuration pushed one topology, in the shared `BENCH_*.json`
/// schema every perf binary emits.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRecord {
    /// Which experiment produced the row (`scaling`, `loadlatency`, …).
    pub experiment: String,
    /// Topology spec string, e.g. `mesh:100x100`.
    pub topology: String,
    /// Worker threads the engine was sharded across.
    pub threads: usize,
    /// Simulated cycles the run covered.
    pub cycles: u64,
    /// Wall-clock time for the run, in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Peak resident routing state in bytes (the destination-indexed
    /// tables; the dense per-pair matrix is never built by the runs).
    pub peak_routing_bytes: usize,
    /// Logical CPUs on the measuring host — speedup claims are only
    /// meaningful when `threads <= host_cpus`.
    pub host_cpus: usize,
    /// Median simulated packet latency in cycles (0 = not measured).
    pub latency_p50: u64,
    /// 95th-percentile simulated packet latency in cycles.
    pub latency_p95: u64,
    /// 99th-percentile simulated packet latency in cycles.
    pub latency_p99: u64,
}

impl BenchRecord {
    /// Builds a record from a timed run, deriving `cycles_per_sec` and
    /// stamping the host's CPU count.
    pub fn new(
        experiment: &str,
        topology: &str,
        threads: usize,
        cycles: u64,
        wall: std::time::Duration,
        peak_routing_bytes: usize,
    ) -> Self {
        let wall_ms = wall.as_secs_f64() * 1e3;
        BenchRecord {
            experiment: experiment.to_string(),
            topology: topology.to_string(),
            threads,
            cycles,
            wall_ms,
            cycles_per_sec: cycles as f64 / wall.as_secs_f64().max(1e-9),
            peak_routing_bytes,
            host_cpus: host_cpus(),
            latency_p50: 0,
            latency_p95: 0,
            latency_p99: 0,
        }
    }

    /// Stamps simulated-latency percentiles (from the run's streaming
    /// quantile sketch) onto the record.
    pub fn with_latency(mut self, p50: u64, p95: u64, p99: u64) -> Self {
        self.latency_p50 = p50;
        self.latency_p95 = p95;
        self.latency_p99 = p99;
        self
    }
}

/// Logical CPUs available to this process (1 when undetectable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Writes `records` as JSON lines to `<results-dir>/BENCH_<name>.json`
/// (one object per line, same shape as the `FRACTANET_JSON` stderr
/// stream) and returns the path. The directory defaults to `results/`
/// and is overridable via `FRACTANET_RESULTS_DIR`, so CI smoke runs can
/// write to a scratch location without disturbing checked-in results.
pub fn write_bench_records(name: &str, records: &[BenchRecord]) -> std::path::PathBuf {
    let dir = std::env::var("FRACTANET_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let mut out = String::new();
    for r in records {
        out.push_str(&r.json());
        out.push('\n');
    }
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(&path, out).expect("write BENCH json");
    path
}

/// Builds a [`fractanet::System`] from a textual topology spec
/// (`mesh:6x6`, `fattree:64:4:2`, …), panicking on a malformed spec.
/// Experiment binaries use this instead of hand-rolled constructors so
/// their configurations read exactly like the CLI's.
pub fn system(spec: &str) -> fractanet::System {
    spec.parse::<fractanet::TopoSpec>()
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
        .build()
}

/// Formats `value (paper: expected)` with a match marker.
pub fn versus(value: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    let v = value.to_string();
    let p = paper.to_string();
    if v == p {
        format!("{v} (paper: {p} ✓)")
    } else {
        format!("{v} (paper: {p})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_marks_matches() {
        assert!(versus(48, 48).contains('✓'));
        assert!(!versus(47, 48).contains('✓'));
    }

    #[test]
    fn emit_json_respects_env() {
        // Not set in tests: must be a no-op (and not panic).
        #[derive(Serialize)]
        struct Row {
            x: u32,
        }
        emit_json("test", &Row { x: 1 });
    }
}
