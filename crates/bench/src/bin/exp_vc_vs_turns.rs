//! Experiment E20 — the Dally–Seitz head-to-head the 1996 paper could
//! only speculate about: table-driven turn-disable deadlock avoidance
//! (§2.4) versus virtual-channel ordering (Dally & Seitz), run on the
//! same physical networks with the same credit-based router core.
//!
//! For every topology two arms run under identical load:
//!
//! * **turn-disable** — the canonical turn-restricted tables where the
//!   repo's routing is already acyclic (fractahedron fractal routes,
//!   mesh XY, fat-tree up/down, hypercube e-cube), or a synthesized
//!   minimal-ish disable set (`synthesize_disables`) where the
//!   canonical routing is cyclic (ring, torus wraps). One FIFO per
//!   port; the wrap cables go unused or paths lengthen.
//! * **Dally–Seitz VCs** — the unrestricted minimal routes made safe
//!   by a 2-VC ordering: dateline on ring/torus, e-cube classes on
//!   mesh/hypercube, and a static class map on the inherently acyclic
//!   topologies (where the second VC sits idle — the paper's buffer
//!   objection, quantified).
//!
//! The Table 2 VC column: delivered latency quantiles, provisioned
//! buffer slots, and credit-stall cycles per arm. Rows always land in
//! `results/BENCH_vc_vs_turns.json` (one JSON object per line;
//! directory overridable via `FRACTANET_RESULTS_DIR`), and on stderr
//! with `FRACTANET_JSON=1`.

use fractanet::prelude::*;
use fractanet::System;
use fractanet_bench::{emit_json, header, system};
use fractanet_deadlock::disables::synthesize_disables;
use fractanet_route::table::Routes;
use fractanet_sim::{SimResult, VcMap};
use fractanet_topo::mesh::{PORT_EAST, PORT_NODE0, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use fractanet_topo::Torus2D;
use serde::Serialize;

#[derive(Clone, Serialize)]
struct Row {
    system: String,
    scheme: String,
    vcs: u8,
    /// Turns disabled to break cycles (0 when the tables are already
    /// turn-restricted, or when VC ordering does the breaking).
    turn_disables: usize,
    /// Mean router hops of the arm's routing — the freedom axis.
    avg_hops: f64,
    /// Provisioned input-FIFO slots network-wide — the cost axis.
    buffer_slots: usize,
    generated: usize,
    delivered: usize,
    latency_avg: f64,
    latency_p50: u64,
    latency_p95: u64,
    latency_p99: u64,
    latency_max: u64,
    /// Transfers stalled on exhausted downstream credits.
    credit_stalls: u64,
    credits_conserved: bool,
    deadlocked: bool,
}

const DEPTH: u32 = 4;
const VCS: u8 = 2;
const GEN_UNTIL: u64 = 8_000;

fn sim_cfg() -> SimConfig {
    SimConfig {
        packet_flits: 8,
        buffer_depth: DEPTH,
        max_cycles: 60_000,
        stall_threshold: 10_000,
        seed: 0x7E57,
        ..SimConfig::default()
    }
    .with_metrics(MetricsConfig::sampling(100))
}

fn workload() -> Workload {
    Workload::Bernoulli {
        injection_rate: 0.2,
        pattern: DstPattern::Uniform,
        until_cycle: GEN_UNTIL,
    }
}

fn finish(
    label: &str,
    scheme: &str,
    vcs: u8,
    turn_disables: usize,
    avg_hops: f64,
    buffer_slots: usize,
    mut res: SimResult,
) -> Row {
    let metrics = res.metrics.take().expect("metrics were on");
    assert!(
        res.deadlock.is_none(),
        "{label} [{scheme}] deadlocked: {:?}",
        res.deadlock
    );
    assert_eq!(
        res.delivered, res.generated,
        "{label} [{scheme}] dropped packets"
    );
    assert!(
        res.credits.is_conserved(),
        "{label} [{scheme}] leaked credits: consumed {} returned {}",
        res.credits.consumed,
        res.credits.returned
    );
    Row {
        system: label.into(),
        scheme: scheme.into(),
        vcs,
        turn_disables,
        avg_hops,
        buffer_slots,
        generated: res.generated,
        delivered: res.delivered,
        latency_avg: res.avg_latency,
        latency_p50: metrics.latency.p50(),
        latency_p95: metrics.latency.p95(),
        latency_p99: metrics.latency.p99(),
        latency_max: res.max_latency,
        credit_stalls: res.credits.stalls,
        credits_conserved: res.credits.is_conserved(),
        deadlocked: res.deadlock.is_some(),
    }
}

/// The turn-disable arm: canonical tables when they already certify,
/// otherwise a synthesized disable set over the same physical network.
fn run_turn_arm(label: &str, sys: &System) -> Row {
    let net = sys.net();
    let slots = net.channel_count() * DEPTH as usize;
    if verify_deadlock_free(net, sys.route_set()).is_ok() {
        let res = Engine::new(net, sys.route_set(), sim_cfg()).run(workload());
        let hops = sys.route_set().avg_router_hops();
        return finish(label, "turn-disable (table)", 1, 0, hops, slots, res);
    }
    let (disables, routes) =
        synthesize_disables(net, sys.end_nodes(), 512).expect("turn synthesis converges");
    let report = verify_deadlock_free(net, &routes);
    assert!(report.is_ok(), "synthesized routes must certify");
    let res = Engine::new(net, &routes, sim_cfg()).run(workload());
    let hops = routes.avg_router_hops();
    finish(
        label,
        "turn-disable (synth)",
        1,
        disables.len(),
        hops,
        slots,
        res,
    )
}

/// The Dally–Seitz arm for topologies with a grammar discipline: the
/// system is rebuilt from its `:vc2[:…]` spec so the run reads exactly
/// like the CLI's.
fn run_vc_spec_arm(label: &str, spec: &str) -> Row {
    let sys = system(spec);
    let (vcs, scheme) = sys.vc().expect("spec enables VCs");
    assert_eq!(
        sys.vc_deadlock_free(),
        Some(true),
        "{spec}: extended (channel, vc) graph must be acyclic"
    );
    let slots = sys.net().channel_count() * vcs as usize * DEPTH as usize;
    let res = sys.simulate(workload(), sim_cfg());
    let hops = sys.route_set().avg_router_hops();
    finish(
        label,
        &format!("vc{vcs}:{scheme}"),
        vcs,
        0,
        hops,
        slots,
        res,
    )
}

/// The Dally–Seitz arm for inherently acyclic topologies: the same
/// turn-restricted routes on 2 VCs under a static class map. The
/// second VC is provisioned but idle — pure buffer cost.
fn run_vc_classes_arm(label: &str, sys: &System) -> Row {
    let net = sys.net();
    let map = VcMap::classes(VCS, vec![0; net.channel_count()]);
    let slots = net.channel_count() * VCS as usize * DEPTH as usize;
    let res = Engine::new(net, sys.route_set(), sim_cfg())
        .with_vc_map(map)
        .run(workload());
    let hops = sys.route_set().avg_router_hops();
    finish(label, "vc2:classes (idle spare)", VCS, 0, hops, slots, res)
}

/// The torus turn-disable arm built the way the paper's §2.4 path
/// disable logic would: every turn onto a wrap cable is disabled, so
/// routing degenerates to plain mesh XY and the wrap cables idle. The
/// reported disable count is the number of idled wrap channels.
fn run_torus_no_wrap_arm(label: &str, cols: usize, rows: usize) -> Row {
    let t = Torus2D::new(cols, rows, 2, 6).expect("valid torus");
    let net = t.net();
    let tables = Routes::from_fn(net, t.end_nodes().len(), |router, dst| {
        let (x, y) = t.coords_of(router)?;
        let (dx, dy, k) = t.end_coords(dst);
        Some(if x < dx {
            PORT_EAST
        } else if x > dx {
            PORT_WEST
        } else if y < dy {
            PORT_NORTH
        } else if y > dy {
            PORT_SOUTH
        } else {
            PortId(PORT_NODE0.0 + k as u8)
        })
    });
    let routes = RouteSet::from_table(net, t.end_nodes(), &tables).expect("no-wrap XY routes");
    assert!(
        verify_deadlock_free(net, &routes).is_ok(),
        "no-wrap XY on the torus must certify"
    );
    let wrap_channels = net
        .channels()
        .filter(|&ch| {
            let (a, b) = (net.channel_src(ch), net.channel_dst(ch));
            match (t.coords_of(a), t.coords_of(b)) {
                (Some((ax, ay)), Some((bx, by))) => {
                    ax.abs_diff(bx) == cols - 1 || ay.abs_diff(by) == rows - 1
                }
                _ => false,
            }
        })
        .count();
    let slots = net.channel_count() * DEPTH as usize;
    let res = Engine::new(net, &routes, sim_cfg()).run(workload());
    let hops = routes.avg_router_hops();
    finish(
        label,
        "turn-disable (no wraps)",
        1,
        wrap_channels,
        hops,
        slots,
        res,
    )
}

fn write_rows(rows: &[Row]) -> std::path::PathBuf {
    let dir = std::env::var("FRACTANET_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = std::path::Path::new(&dir).join("BENCH_vc_vs_turns.json");
    let mut out = String::new();
    for r in rows {
        out.push_str(&r.json());
        out.push('\n');
    }
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(&path, out).expect("write BENCH json");
    path
}

fn main() {
    header(
        "E20 / vc-vs-turns",
        "turn-disable tables vs Dally-Seitz virtual channels, one router core",
    );
    println!(
        "  {:<18} {:<24} {:>8} {:>6} {:>6} {:>7} {:>6} {:>6} {:>6} {:>8}",
        "system", "scheme", "disables", "hops", "slots", "p50", "p95", "p99", "stalls", "delivered"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut emit = |row: Row| {
        println!(
            "  {:<18} {:<24} {:>8} {:>6.2} {:>6} {:>7} {:>6} {:>6} {:>6} {:>8}",
            row.system,
            row.scheme,
            row.turn_disables,
            row.avg_hops,
            row.buffer_slots,
            row.latency_p50,
            row.latency_p95,
            row.latency_p99,
            row.credit_stalls,
            row.delivered,
        );
        emit_json("vc_vs_turns", &row);
        rows.push(row);
    };

    // Cyclic wrap topologies: turn-disable must lengthen paths or idle
    // the wrap cables; the dateline VCs keep minimal routing. The ring
    // uses the synthesized disable set; on the torus the greedy
    // synthesis thrashes, so the turn arm is the paper's §2.4 endgame
    // computed directly — every turn onto a wrap cable disabled.
    for (label, vc_spec, turn) in [
        (
            "8-ring",
            "ring:8:vc2",
            run_turn_arm("8-ring", &system("ring:8")),
        ),
        (
            "6x6 torus",
            "torus:6x6:vc2",
            run_torus_no_wrap_arm("6x6 torus", 6, 6),
        ),
    ] {
        let vc = run_vc_spec_arm(label, vc_spec);
        assert!(
            vc.avg_hops < turn.avg_hops,
            "{label}: dateline VCs must shorten routes ({} vs {})",
            vc.avg_hops,
            turn.avg_hops
        );
        assert_eq!(vc.buffer_slots, 2 * turn.buffer_slots);
        emit(turn);
        emit(vc);
    }

    // Dimension-ordered topologies: the canonical tables are already
    // acyclic, so e-cube VCs buy load spreading, not routing freedom.
    for (label, base, vc_spec) in [
        ("8x8 mesh", "mesh:8x8", "mesh:8x8:vc2:ecube"),
        ("4-cube", "hypercube:4", "hypercube:4:vc2"),
    ] {
        let sys = system(base);
        let turn = run_turn_arm(label, &sys);
        let vc = run_vc_spec_arm(label, vc_spec);
        assert!(
            (vc.avg_hops - turn.avg_hops).abs() < 1e-9,
            "{label}: same minimal routes"
        );
        emit(turn);
        emit(vc);
    }

    // The paper's own families: routing is turn-restricted by
    // construction, so a second VC is pure buffer cost.
    for (label, base) in [
        ("fat fractahedron", "fat-fractahedron:2"),
        ("4-2 fat tree", "fattree:64:4:2"),
    ] {
        let sys = system(base);
        let turn = run_turn_arm(label, &sys);
        let vc = run_vc_classes_arm(label, &sys);
        assert_eq!(vc.buffer_slots, 2 * turn.buffer_slots);
        emit(turn);
        emit(vc);
    }

    let path = write_rows(&rows);
    println!(
        "\n  On wrap topologies the 2-VC dateline keeps minimal routes that\n\
         turn-disable must forbid — shorter paths bought with double the\n\
         FIFO slots. On dimension-ordered and fractahedral systems the\n\
         tables are already acyclic and the spare VC is pure cost: the\n\
         buffer-cost-vs-routing-freedom axis of Table 2, measured.\n\
         \n  rows -> {}",
        path.display()
    );
}
