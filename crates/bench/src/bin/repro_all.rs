//! Runs every experiment binary's logic in sequence — the one-shot
//! reproduction of all tables and figures. `EXPERIMENTS.md` is the
//! curated transcript of this program.
//!
//! ```text
//! cargo run --release -p fractanet-bench --bin repro_all
//! ```

use std::process::Command;

fn main() {
    let exes = [
        "exp_fig1_deadlock",
        "exp_fig2_hypercube",
        "exp_fig3_clusters",
        "exp_table1_fractahedron",
        "exp_sec31_mesh",
        "exp_table2_compare",
        "exp_sim_loadlatency",
        "exp_servernet_faults",
        "exp_generalized",
        "exp_fault_recovery",
    ];
    // Re-exec sibling binaries from the same target directory so one
    // command reproduces everything.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir");
    for exe in exes {
        let path = dir.join(exe);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{exe} failed");
    }
    println!("\nall experiments reproduced.");
}
