//! Experiment E16 — sharded-engine scaling: wall-clock throughput of
//! the parallel wormhole engine across worker-thread counts on the
//! large targets (a 100×100 XY mesh at 0.5 offered load and a level-4
//! fat fractahedron at full load).
//!
//! Every thread count simulates the *same* run — the sharded engine is
//! bit-identical to the single-thread oracle — so each row is checked
//! against the 1-thread baseline before it is reported, and the only
//! thing that may vary with `threads` is wall time. Rows land in
//! `results/BENCH_scaling.json` (shared `BenchRecord` schema; directory
//! overridable via `FRACTANET_RESULTS_DIR`) with the measuring host's
//! CPU count stamped on every row: speedup columns are only meaningful
//! where `threads <= host_cpus`, and the CI scale-smoke job enforces
//! the 2-thread bound on multi-core runners.
//!
//! `FRACTANET_SCALING_GRID=small` shrinks the generation windows and
//! drops the 8-thread column for CI smoke budgets; the topologies stay
//! the same so the gate always measures the real targets.

use fractanet::prelude::*;
use fractanet::System;
use fractanet_bench::{emit_json, header, host_cpus, system, write_bench_records, BenchRecord};
use fractanet_sim::SimResult;
use std::time::Instant;

struct Target {
    spec: &'static str,
    load: f64,
    generate_until: u64,
    max_cycles: u64,
}

fn timed_run(sys: &System, t: &Target, threads: usize) -> (SimResult, BenchRecord) {
    let cfg = SimConfig {
        packet_flits: 8,
        buffer_depth: 4,
        max_cycles: t.max_cycles,
        stall_threshold: t.max_cycles,
        seed: 0x5CA1_AB1E,
        ..SimConfig::default()
    }
    .with_threads(threads)
    // The live-metrics pipeline rides along on every measured run: it
    // is provably inert (see tests/properties.rs), so the bit-identity
    // baseline asserts below still hold, and its streaming sketch
    // stamps real latency percentiles onto each trajectory row.
    .with_metrics(MetricsConfig::sampling(500).with_topology(t.spec));
    let wl = Workload::Bernoulli {
        injection_rate: t.load,
        pattern: DstPattern::Uniform,
        until_cycle: t.generate_until,
    };
    let t0 = Instant::now();
    let res = sys.simulate(wl, cfg);
    let wall = t0.elapsed();
    let sketch = &res.metrics.as_ref().expect("metrics were on").latency;
    let rec = BenchRecord::new(
        "scaling",
        t.spec,
        threads,
        res.cycles,
        wall,
        sys.routes().resident_bytes(),
    )
    .with_latency(sketch.p50(), sketch.p95(), sketch.p99());
    (res, rec)
}

fn main() {
    let small = std::env::var("FRACTANET_SCALING_GRID").as_deref() == Ok("small");
    let threads: &[usize] = if small { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let (mesh_until, mesh_max, ff_until, ff_max) = if small {
        (300, 600, 300, 600)
    } else {
        (1_000, 1_500, 1_000, 1_500)
    };
    let targets = [
        Target {
            spec: "mesh:100x100",
            load: 0.5,
            generate_until: mesh_until,
            max_cycles: mesh_max,
        },
        Target {
            spec: "fat-fractahedron:4",
            load: 1.0,
            generate_until: ff_until,
            max_cycles: ff_max,
        },
    ];

    header(
        "E16",
        "sharded-engine scaling (identical results, wall time only)",
    );
    println!(
        "  host CPUs: {} (speedup meaningful where threads <= host CPUs)",
        host_cpus()
    );
    let mut records = Vec::new();
    for t in &targets {
        let sys = system(t.spec);
        println!(
            "\n  {} @ {} load — {} channels, {} end nodes, {} routing bytes",
            t.spec,
            t.load,
            sys.net().channels().count(),
            sys.end_nodes().len(),
            sys.routes().resident_bytes(),
        );
        println!(
            "  {:>7} {:>10} {:>12} {:>12} {:>9}",
            "threads", "cycles", "wall ms", "cycles/s", "speedup"
        );
        let mut baseline: Option<(SimResult, f64)> = None;
        for &n in threads {
            let (res, rec) = timed_run(&sys, t, n);
            if let Some((base, base_ms)) = &baseline {
                // The sharded engine is bit-identical to the oracle;
                // a mismatch here means the measurement is invalid.
                assert_eq!(res.generated, base.generated, "{} x{n}", t.spec);
                assert_eq!(res.delivered, base.delivered, "{} x{n}", t.spec);
                assert_eq!(res.cycles, base.cycles, "{} x{n}", t.spec);
                assert_eq!(res.avg_latency, base.avg_latency, "{} x{n}", t.spec);
                println!(
                    "  {:>7} {:>10} {:>12.1} {:>12.0} {:>8.2}x",
                    n,
                    rec.cycles,
                    rec.wall_ms,
                    rec.cycles_per_sec,
                    base_ms / rec.wall_ms
                );
            } else {
                assert!(res.delivered > 0, "{} delivered nothing", t.spec);
                println!(
                    "  {:>7} {:>10} {:>12.1} {:>12.0} {:>9}",
                    n, rec.cycles, rec.wall_ms, rec.cycles_per_sec, "1.00x"
                );
                baseline = Some((res, rec.wall_ms));
            }
            emit_json("scaling", &rec);
            records.push(rec);
        }
    }
    let path = write_bench_records("scaling", &records);
    println!("\n  wrote {} rows to {}", records.len(), path.display());
}
