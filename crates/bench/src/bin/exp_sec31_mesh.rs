//! Experiment E7 — §3.1: 2-D mesh scaling (6x6 → 11 hops, 8x8 → 15,
//! 23x23 → 45) and the 10:1 worst-case contention corner, plus the
//! XY-vs-YX dimension-order ablation.

use fractanet::graph::bfs;
use fractanet::metrics::contention::contention_of_channel;
use fractanet::metrics::max_link_contention;
use fractanet::prelude::*;
use fractanet::route::dor::{mesh_xy_routes, mesh_yx_routes};
use fractanet_bench::{emit_json, header, system, versus};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    side: usize,
    nodes_hosted: usize,
    max_hops: u32,
    routers: usize,
}

fn main() {
    header(
        "E7 / §3.1",
        "2-D mesh scaling with 6-port routers (2 nodes per router)",
    );
    println!(
        "{:<8} {:>8} {:>9} {:>22}",
        "mesh", "routers", "capacity", "max hops"
    );
    for (target, paper_hops) in [(64usize, 11u32), (128, 15), (1024, 45)] {
        let m = Mesh2D::for_nodes(target).unwrap();
        let side = m.cols();
        // Corner-to-corner shortest path = max router hops.
        let a = m.end_at(0, 0, 0);
        let b = m.end_at(side - 1, side - 1, 0);
        let hops = bfs::router_hops(m.net(), a, b).unwrap();
        println!(
            "{:<8} {:>8} {:>9} {:>22}",
            format!("{side}x{side}"),
            m.net().router_count(),
            m.end_nodes().len(),
            versus(hops, paper_hops)
        );
        emit_json(
            "sec31_mesh",
            &Row {
                side,
                nodes_hosted: m.end_nodes().len(),
                max_hops: hops,
                routers: m.net().router_count(),
            },
        );
    }

    header(
        "E7 / §3.1",
        "worst-case contention on the 6x6 mesh (dimension-order)",
    );
    let sys = system("mesh:6x6");
    let rep = max_link_contention(sys.net(), sys.route_set());
    println!(
        "  max link contention: {}",
        versus(format!("{}:1", rep.worst), "10:1")
    );
    let (_, witness) = contention_of_channel(sys.net(), sys.route_set(), rep.worst_channel);
    let ch = rep.worst_channel;
    println!(
        "  hot corner: {} -> {} carrying {} simultaneous transfers:",
        sys.net().label(sys.net().channel_src(ch)),
        sys.net().label(sys.net().channel_dst(ch)),
        witness.len()
    );
    let list: Vec<String> = witness.iter().map(|(s, d)| format!("{s}->{d}")).collect();
    println!("    {}", list.join(", "));
    println!("  (the paper's A1-F6 ... A5-B6 turning at corner A6, times two nodes per router)");

    header(
        "E7 / ablation",
        "XY vs YX dimension order (mirrored hotspot, same worst case)",
    );
    let m = Mesh2D::new(6, 6, 2, 6).unwrap();
    for (label, routes) in [
        ("X-then-Y", mesh_xy_routes(&m)),
        ("Y-then-X", mesh_yx_routes(&m)),
    ] {
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &routes).unwrap();
        let rep = max_link_contention(m.net(), &rs);
        let ch = rep.worst_channel;
        println!(
            "  {label}: {}:1 at {} -> {}",
            rep.worst,
            m.net().label(m.net().channel_src(ch)),
            m.net().label(m.net().channel_dst(ch)),
        );
    }
}
