//! Experiments E4–E6 — Figures 4/5, Table 1, §2.2–2.4: N-level 2-3-1
//! fractahedral parameters, thin vs fat, with and without the CPU
//! fan-out level, plus the §2.4 deadlock-freedom verification.

use fractanet::deadlock::verify_deadlock_free;
use fractanet::graph::bfs;
use fractanet::metrics::bisection_estimate;
use fractanet::prelude::*;
use fractanet::route::fractal::fractal_routes;
use fractanet_bench::{emit_json, header, versus};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    levels: usize,
    variant: String,
    nodes: usize,
    routers: usize,
    max_hops: u32,
    bisection: u64,
    deadlock_free: bool,
}

fn report(n: usize, variant: Variant) -> Row {
    let f = Fractahedron::new(n, variant, false).unwrap();
    let routes = fractal_routes(&f);
    let max_hops = bfs::max_router_hops(f.net()).unwrap();
    let bis = bisection_estimate(f.net(), f.end_nodes(), 4).links;
    // CDG verification from full traced routes (kept to N<=2 for the
    // 512-node case's O(n^2) trace; topological delay covers N=3).
    let deadlock_free = if f.end_nodes().len() <= 64 {
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        verify_deadlock_free(f.net(), &rs).is_ok()
    } else {
        let ends = f.end_nodes().to_vec();
        // Sampled route set: every 8th source, all destinations.
        let rs = RouteSet::from_pairs(ends.len(), |s, d| {
            if s % 8 == 0 {
                routes.trace(f.net(), &ends, s, d).unwrap()
            } else {
                Vec::new()
            }
        });
        verify_deadlock_free(f.net(), &rs).is_ok()
    };
    Row {
        levels: n,
        variant: format!("{variant:?}"),
        nodes: f.end_nodes().len(),
        routers: f.net().router_count(),
        max_hops,
        bisection: bis,
        deadlock_free,
    }
}

fn main() {
    header(
        "E5 / Table 1",
        "N-level 2-3-1 fractahedral parameters (direct attach)",
    );
    println!(
        "{:<3} {:<5} {:>6} {:>8} {:>22} {:>22} {:>9}",
        "N", "kind", "nodes", "routers", "max delay (hops)", "bisection (links)", "dl-free"
    );
    for n in 1..=3usize {
        for variant in [Variant::Thin, Variant::Fat] {
            let row = report(n, variant);
            let paper_delay = match variant {
                Variant::Thin => 4 * n - 2,
                Variant::Fat => 3 * n - 1,
            };
            let paper_bis = match variant {
                Variant::Thin => 4u64,
                Variant::Fat => 4u64.pow(n as u32), // "4N" in the OCR = 4^N
            };
            println!(
                "{:<3} {:<5} {:>6} {:>8} {:>22} {:>22} {:>9}",
                n,
                row.variant,
                row.nodes,
                row.routers,
                versus(row.max_hops, paper_delay),
                versus(row.bisection, paper_bis),
                if row.deadlock_free { "yes" } else { "NO" }
            );
            emit_json("table1", &row);
        }
    }
    println!("\npaper: max nodes 2*8^N with the fan-out level; delays exclude fan-out routers.");

    header("E4 / §2.2", "CPU systems with the fan-out level");
    for (n, variant, want_nodes, want_delay) in [
        (1usize, Variant::Thin, 16usize, 4u32),
        (3, Variant::Thin, 1024, 12),
        (3, Variant::Fat, 1024, 10),
    ] {
        let f = Fractahedron::new(n, variant, true).unwrap();
        let delay = bfs::max_router_hops(f.net()).unwrap();
        println!(
            "  {:?} N={} + fanout: {} CPUs (paper: {}), max delay {}",
            variant,
            n,
            f.end_nodes().len(),
            want_nodes,
            versus(delay, want_delay),
        );
    }

    header("E6 / §2.4", "deadlock freedom of the fractahedral routing");
    for (n, variant) in [
        (1usize, Variant::Fat),
        (2, Variant::Fat),
        (2, Variant::Thin),
        (3, Variant::Fat),
    ] {
        let row = report(n, variant);
        println!(
            "  {:?} N={}: channel dependency graph {}",
            variant,
            n,
            if row.deadlock_free {
                "acyclic — deadlock-free"
            } else {
                "HAS A CYCLE"
            }
        );
    }
    println!(
        "\n\"the routing algorithm always takes a local inter-level link rather than\n\
         going through a neighboring inter-level link. This algorithm eliminates\n\
         possible loops in a way similar to dimension-order routing.\"  — §2.4"
    );
}
