//! Experiment E14 — §4's closing generalization: "the concepts easily
//! generalize to other fully connected groups of N-port routers."
//! Compares two-level fat fractahedrons built from different cluster
//! shapes, plus the virtual-channel alternative of §2 (Dally & Seitz)
//! quantified on the Fig 1 ring.

use fractanet::deadlock::verify_deadlock_free;
use fractanet::graph::bfs;
use fractanet::metrics::{bisection_estimate, max_link_contention, CostSummary};
use fractanet::prelude::*;
use fractanet::route::genfracta::genfracta_routes;
use fractanet::sim::vc::{dateline_ring_routes, VcEngine};
use fractanet::topo::{ClusterShape, GenFractahedron};
use fractanet_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    shape: String,
    nodes: usize,
    routers: usize,
    avg_hops: f64,
    max_hops: u32,
    contention: usize,
    bisection: u64,
    deadlock_free: bool,
}

fn main() {
    header(
        "E14 / §4",
        "generalized cluster fractahedrons (two levels, fat)",
    );
    println!(
        "{:<22} {:>6} {:>8} {:>9} {:>9} {:>11} {:>10} {:>8}",
        "cluster shape",
        "nodes",
        "routers",
        "avg hops",
        "max hops",
        "contention",
        "bisection",
        "dl-free"
    );
    let shapes = [
        ("4x6p 2-3-1 (paper)", ClusterShape::PAPER),
        (
            "3x6p 2-2-2",
            ClusterShape {
                cluster: 3,
                ports: 6,
                down: 2,
                up: 2,
            },
        ),
        (
            "4x8p 3-3-2",
            ClusterShape {
                cluster: 4,
                ports: 8,
                down: 3,
                up: 2,
            },
        ),
        (
            "5x8p 2-4-2",
            ClusterShape {
                cluster: 5,
                ports: 8,
                down: 2,
                up: 2,
            },
        ),
    ];
    for (label, shape) in shapes {
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        let routes = genfracta_routes(&g);
        let rs = RouteSet::from_table(g.net(), g.end_nodes(), &routes).unwrap();
        let cont = max_link_contention(g.net(), &rs);
        let bis = bisection_estimate(g.net(), g.end_nodes(), 4);
        let free = verify_deadlock_free(g.net(), &rs).is_ok();
        let cost = CostSummary::of(g.net());
        let row = Row {
            shape: label.to_string(),
            nodes: g.end_nodes().len(),
            routers: cost.routers,
            avg_hops: rs.avg_router_hops(),
            max_hops: bfs::max_router_hops(g.net()).unwrap(),
            contention: cont.worst,
            bisection: bis.links,
            deadlock_free: free,
        };
        println!(
            "{:<22} {:>6} {:>8} {:>9.2} {:>9} {:>10}:1 {:>10} {:>8}",
            row.shape,
            row.nodes,
            row.routers,
            row.avg_hops,
            row.max_hops,
            row.contention,
            row.bisection,
            if row.deadlock_free { "yes" } else { "NO" }
        );
        emit_json("generalized", &row);
    }
    println!(
        "\n  every shape keeps the fractahedral properties: 3N-1 worst delay,\n\
         depth-first routing, acyclic channel dependencies. Bigger clusters\n\
         trade routers for fan-out; more up ports buy bisection."
    );

    header(
        "E14 / §2",
        "the rejected alternative: virtual channels on the Fig 1 ring",
    );
    let ring = Ring::new(4, 1, 6).unwrap();
    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 20_000,
        stall_threshold: 300,
        ..SimConfig::default()
    };
    println!(
        "{:<8} {:>14} {:>14} {:>22}",
        "VCs", "buffer slots", "CDG verdict", "Fig 1 pattern"
    );
    for vcs in [1u8, 2] {
        let routes = dateline_ring_routes(&ring, vcs);
        let engine = VcEngine::new(ring.net(), &routes, cfg.clone());
        let slots = engine.total_buffer_slots();
        let free = routes.is_deadlock_free(ring.net());
        let res = engine.run(Workload::fig1_ring(4));
        println!(
            "{:<8} {:>14} {:>14} {:>22}",
            vcs,
            slots,
            if free { "acyclic" } else { "cyclic" },
            match &res.deadlock {
                Some(dl) => format!("deadlock @ {}", dl.cycle),
                None => format!("completes in {}", res.cycles),
            }
        );
    }
    println!(
        "\n  Two virtual channels (the dateline discipline) do break the loop —\n\
         at double the buffer space per router, \"the cost of the buffers can\n\
         be quite significant because buffering space may dominate the area of\n\
         a typical router\" (§2). The fractahedron avoids the loop topologically\n\
         and keeps the single-FIFO router."
    );
}
