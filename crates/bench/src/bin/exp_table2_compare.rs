//! Experiments E9–E11 — Figures 6/7, Table 2, §3.3–3.4: the 64-node
//! comparison between the 4-2 fat tree and the fat fractahedron, the
//! 3-3 fat tree alternative, the paper's adversarial transfer sets,
//! and the up-link policy ablation.

use fractanet::metrics::contention::{contention_of_channel, pattern_contention};
use fractanet::metrics::max_link_contention;
use fractanet::prelude::*;
use fractanet::route::fattree::{fattree_routes, UpPolicy};
use fractanet_bench::{emit_json, header, system, versus};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    routers: usize,
    avg_hops: f64,
    contention: usize,
    local_contention: usize,
    bisection: u64,
}

fn main() {
    header("E9-E10 / Table 2", "64-node comparison");
    let ft = system("fattree:64:4:2");
    let ff = system("fat-fractahedron:2");
    let t33 = system("fattree:64:3:3");

    println!(
        "{:<22} {:>22} {:>18} {:>22} {:>16} {:>10}",
        "attribute", "4-2 fat tree", "(paper)", "fat fractahedron", "(paper)", "3-3 tree"
    );
    let (a, b, c) = (ft.analyze(), ff.analyze(), t33.analyze());
    println!(
        "{:<22} {:>22} {:>18} {:>22} {:>16} {:>10}",
        "max link contention",
        format!("{}:1", a.worst_contention),
        "12:1",
        format!("{}:1 ({}:1 local)", b.worst_contention, b.local_contention),
        "4:1 local",
        format!("{}:1", c.worst_contention)
    );
    println!(
        "{:<22} {:>22} {:>18} {:>22} {:>16} {:>10.2}",
        "average hops",
        format!("{:.2}", a.avg_hops),
        "4.4",
        format!("{:.2}", b.avg_hops),
        "4.3",
        c.avg_hops
    );
    println!(
        "{:<22} {:>22} {:>18} {:>22} {:>16} {:>10}",
        "routers",
        versus(a.routers, 28),
        "28",
        versus(b.routers, 48),
        "48",
        versus(c.routers, 100)
    );
    println!(
        "{:<22} {:>22} {:>18} {:>22} {:>16} {:>10}",
        "bisection (links)", a.bisection_links, "4*", b.bisection_links, "same*", c.bisection_links
    );
    println!(
        "{:<22} {:>22} {:>18} {:>22} {:>16} {:>10}",
        "max hops", a.max_hops, "5 (odd)", b.max_hops, "3N-1=5", c.max_hops
    );
    println!("\n* the paper quotes 4 links for both; measured min-cut of the as-built");
    println!("  networks is larger (see EXPERIMENTS.md discussion).");
    for (name, r) in [
        ("fat tree 4-2", &a),
        ("fat fractahedron", &b),
        ("fat tree 3-3", &c),
    ] {
        emit_json(
            "table2",
            &Row {
                system: name.into(),
                routers: r.routers,
                avg_hops: r.avg_hops,
                contention: r.worst_contention,
                local_contention: r.local_contention,
                bisection: r.bisection_links,
            },
        );
    }

    header(
        "E9 / §3.3",
        "the fat tree's 12:1 adversarial set (link \"HLP\")",
    );
    let rep = max_link_contention(ft.net(), ft.route_set());
    let (k, witness) = contention_of_channel(ft.net(), ft.route_set(), rep.worst_channel);
    println!("  worst channel carries a {k}-transfer matching:");
    let pairs: Vec<String> = witness.iter().map(|(s, d)| format!("{s}->{d}")).collect();
    println!("    {}", pairs.join(", "));
    println!("  (the paper's example: nodes 52-63 sending to nodes 36-47)");

    header(
        "E10 / §3.4",
        "the fractahedron's 4:1 example: 6,7,14,15 -> 54,55,62,63",
    );
    let pattern = [(6, 54), (7, 55), (14, 62), (15, 63)];
    let (worst, ch) = pattern_contention(ff.net(), ff.route_set(), &pattern);
    let src = ff.net().channel_src(ch);
    let dst = ff.net().channel_dst(ch);
    println!(
        "  all four transfers share {} -> {}: contention {} (paper: 4 ✓)",
        ff.net().label(src),
        ff.net().label(dst),
        worst
    );

    header("E11 / ablation", "fat-tree up-link partitioning policies");
    println!(
        "{:<16} {:>22} {:>12}",
        "policy", "max contention", "avg hops"
    );
    for policy in [
        UpPolicy::ByLeafRouter,
        UpPolicy::ByNodeModulo,
        UpPolicy::ByGroup,
    ] {
        let ftopo = FatTree::paper_4_2_64();
        let rs = RouteSet::from_table(
            ftopo.net(),
            ftopo.end_nodes(),
            &fattree_routes(&ftopo, policy),
        )
        .unwrap();
        let rep = max_link_contention(ftopo.net(), &rs);
        println!(
            "{:<16} {:>21}:1 {:>12.2}",
            format!("{policy:?}"),
            rep.worst,
            rs.avg_router_hops()
        );
    }
    println!("\n\"Other static partitionings of traffic through the high-level links can");
    println!("do no better than the 12:1 contention ratio\" — and ByGroup does worse.");
}
