//! Experiment E3 — Figure 3 (§2.1): fully-connected configurations of
//! 6-port routers: node ports and maximum inter-router link
//! contention, measured from real route sets.

use fractanet::prelude::*;
use fractanet::System;
use fractanet_bench::{emit_json, header, versus};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    routers: usize,
    ports: usize,
    contention: usize,
}

fn main() {
    header("E3 / Fig 3", "fully-connected 6-port router clusters");
    println!(
        "{:<8} {:>11} {:>24} {:>26}",
        "routers", "node ports", "max link contention", "deadlock-free"
    );
    let paper_ports = [6usize, 10, 12, 12, 10, 6];
    let paper_cont = [0usize, 5, 4, 3, 2, 1];
    for m in 1..=6usize {
        let c = FullyConnectedCluster::new(m, 6).unwrap();
        let ports = c.total_node_ports();
        if m == 1 {
            println!(
                "{:<8} {:>11} {:>24} {:>26}",
                m,
                versus(ports, paper_ports[0]),
                "- (no inter-router links)",
                "trivially"
            );
            continue;
        }
        let sys = System::cluster(m);
        let rep = sys.analyze();
        emit_json(
            "fig3",
            &Row {
                routers: m,
                ports,
                contention: rep.worst_contention,
            },
        );
        println!(
            "{:<8} {:>11} {:>24} {:>26}",
            m,
            versus(ports, paper_ports[m - 1]),
            versus(
                format!("{}:1", rep.worst_contention),
                format!("{}:1", paper_cont[m - 1])
            ),
            if rep.deadlock_free { "yes" } else { "NO" }
        );
    }
    println!(
        "\nThe 4-router tetrahedron maximizes ports (12) at the lowest contention (3:1),\n\
         which is why it anchors the fractahedral construction (Fig 4)."
    );
}
