//! Experiment E15 — robustness: live fault injection, source retry,
//! certified self-healing and dual-fabric failover under load.
//!
//! Sweeps the number of inter-router links killed mid-run on the three
//! 64-node-class systems (fat fractahedron, 4-2 fat tree, 6×6 mesh) at
//! 0.2 offered load. The X fabric takes the faults, retries with
//! exponential backoff, and installs certified (Dally & Seitz-verified)
//! repaired tables; transfers it abandons fail over to the identical
//! healthy Y fabric. The headline claim: one link killed mid-run on the
//! fat fractahedron still completes ≥ 99% of transfers with zero
//! deadlocks.

use fractanet::prelude::*;
use fractanet::System;
use fractanet_bench::{emit_json, header, system};
use fractanet_graph::LinkId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    faults: usize,
    generated: usize,
    delivered_x: usize,
    delivered_y: usize,
    delivery_fraction: f64,
    retries: u64,
    dropped_worms: u64,
    failovers: usize,
    unrecovered: usize,
    repairs_installed: u64,
    time_to_recover: Option<u64>,
    /// `TableRepair + Redelivery` span sum from the X-fabric trace —
    /// must equal `time_to_recover` whenever both are present.
    span_recover: Option<u64>,
    post_fault_p50: u64,
    post_fault_p95: u64,
    post_fault_p99: u64,
    post_fault_max: u64,
    heal_coverage: f64,
    heal_verified: bool,
    deadlocked: bool,
}

const FAULT_AT: u64 = 3_000;
const GEN_UNTIL: u64 = 6_000;
const MAX_CYCLES: u64 = 24_000;

fn retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: 32,
        max_retries: 5,
        backoff_base: 16,
        jitter_seed: 0x5EED,
    }
}

/// Deterministically picks `count` inter-router links, spread across
/// the fabric.
fn victims(sys: &System, count: usize) -> Vec<LinkId> {
    let net = sys.net();
    let pool: Vec<LinkId> = net
        .links()
        .filter(|&l| {
            let info = net.link(l);
            net.is_router(info.a.0) && net.is_router(info.b.0)
        })
        .collect();
    assert!(count <= pool.len(), "not enough inter-router links");
    if count == 0 {
        return Vec::new();
    }
    let stride = pool.len() / count;
    (0..count).map(|i| pool[i * stride]).collect()
}

fn run_one(name: &str, sys: &System, count: usize) -> Row {
    let kills = victims(sys, count);

    // Static view of the damage: what certified healing can reconnect.
    let mut fault_set = FaultSet::none();
    for &l in &kills {
        fault_set.kill_link(l);
    }
    let healed = heal(sys.net(), sys.end_nodes(), &fault_set);
    let (heal_coverage, heal_verified) = match &healed {
        Ok(h) => (h.coverage(), true),
        Err(_) => (0.0, false),
    };

    let cfg_x = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: MAX_CYCLES,
        stall_threshold: 8_000,
        retry: retry(),
        ..SimConfig::default()
    }
    .with_telemetry(Telemetry::recording().with_event_capacity(8_192))
    .with_faults(
        kills
            .iter()
            .map(|&l| FaultEvent::kill_link(l, FAULT_AT))
            .collect(),
    );
    let cfg_y = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: MAX_CYCLES,
        stall_threshold: 8_000,
        ..SimConfig::default()
    };
    let x = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_x,
        heal: true,
    };
    // The Y fabric is an identical, healthy twin of X.
    let y = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_y,
        heal: false,
    };
    let workload = Workload::Bernoulli {
        injection_rate: 0.2,
        pattern: DstPattern::Uniform,
        until_cycle: GEN_UNTIL,
    };
    let out = run_with_failover(x, y, workload);

    let tel = out
        .x
        .telemetry
        .as_ref()
        .expect("X fabric records telemetry");
    let span_recover = tel.recovery_span_cycles();
    assert_eq!(
        span_recover, out.x.recovery.time_to_recover,
        "span decomposition must telescope to time_to_recover"
    );
    let post = &tel.post_fault_latency;

    Row {
        system: name.into(),
        faults: count,
        generated: out.total_generated(),
        delivered_x: out.x.delivered,
        delivered_y: out.y.as_ref().map_or(0, |r| r.delivered),
        delivery_fraction: out.delivery_ratio(),
        retries: out.x.recovery.retries,
        dropped_worms: out.x.recovery.dropped_worms,
        failovers: out.failovers,
        unrecovered: out.unrecovered.len(),
        repairs_installed: out.x.recovery.repairs_installed,
        time_to_recover: out.x.recovery.time_to_recover,
        span_recover,
        post_fault_p50: post.p50(),
        post_fault_p95: post.p95(),
        post_fault_p99: post.p99(),
        post_fault_max: post.max(),
        heal_coverage,
        heal_verified,
        deadlocked: out.x.deadlock.is_some() || out.y.iter().any(|r| r.deadlock.is_some()),
    }
}

fn main() {
    header(
        "E15 / robustness",
        "live link kills at 0.2 load: retry, self-healing, dual-fabric failover",
    );
    let systems = [
        ("fat fractahedron", system("fat-fractahedron:2")),
        ("4-2 fat tree", system("fattree:64:4:2")),
        ("6x6 mesh", system("mesh:6x6")),
    ];
    println!(
        "  {:<18} {:>6} {:>9} {:>10} {:>8} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "system",
        "kills",
        "delivery",
        "retries",
        "dropped",
        "failover",
        "repairs",
        "coverage",
        "recover",
        "p95post"
    );

    for (name, sys) in &systems {
        for count in [0usize, 1, 2, 4, 8] {
            let row = run_one(name, sys, count);
            assert!(!row.deadlocked, "{name} deadlocked with {count} faults");
            assert!(row.heal_verified, "{name} healed tables must certify");
            println!(
                "  {:<18} {:>6} {:>8.2}% {:>10} {:>8} {:>9} {:>8} {:>8.1}% {:>9} {:>8}",
                name,
                count,
                100.0 * row.delivery_fraction,
                row.retries,
                row.dropped_worms,
                row.failovers,
                row.repairs_installed,
                100.0 * row.heal_coverage,
                row.time_to_recover.map_or("-".into(), |t| t.to_string()),
                row.post_fault_p95,
            );
            if *name == "fat fractahedron" && count == 1 {
                // The issue's acceptance bar.
                assert!(
                    row.delivery_fraction >= 0.99,
                    "single-fault fat fractahedron delivered only {:.4}",
                    row.delivery_fraction
                );
            }
            emit_json("fault_recovery", &row);
        }
    }
    println!(
        "\n  One mid-run link kill on the fat fractahedron still completes ≥ 99% of\n\
         transfers: truncated worms are torn down, sources retry with backoff,\n\
         certified repaired tables install, and stragglers fail over to Y."
    );
}
