//! Experiment E15 — robustness: live fault injection, source retry,
//! certified self-healing and dual-fabric failover under load.
//!
//! Sweeps the number of inter-router links killed mid-run on the three
//! 64-node-class systems (fat fractahedron, 4-2 fat tree, 6×6 mesh) at
//! 0.2 offered load. The X fabric takes the faults, retries with
//! exponential backoff, and installs certified (Dally & Seitz-verified)
//! repaired tables; transfers it abandons fail over to the identical
//! healthy Y fabric. The headline claim: one link killed mid-run on the
//! fat fractahedron still completes ≥ 99% of transfers with zero
//! deadlocks.
//!
//! A second phase measures the *recovery-time distribution*: per
//! topology, many seeded runs of a mixed gray + kill schedule (flaky
//! cable, corrupting cable, transient link kill) with speculative ACK
//! retransmission on, reporting `time_to_recover` p50/p95/p99 and the
//! exactly-once counters (NACKs, duplicates suppressed). With
//! `FRACTANET_JSON=1` both phases stream JSON rows on stderr — the
//! checked-in `results/BENCH_fault_recovery.json` is that stream.

use fractanet::prelude::*;
use fractanet::System;
use fractanet_bench::{emit_json, header, system};
use fractanet_graph::LinkId;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    faults: usize,
    generated: usize,
    delivered_x: usize,
    delivered_y: usize,
    delivery_fraction: f64,
    retries: u64,
    dropped_worms: u64,
    failovers: usize,
    unrecovered: usize,
    repairs_installed: u64,
    time_to_recover: Option<u64>,
    /// `TableRepair + Redelivery` span sum from the X-fabric trace —
    /// must equal `time_to_recover` whenever both are present.
    span_recover: Option<u64>,
    post_fault_p50: u64,
    post_fault_p95: u64,
    post_fault_p99: u64,
    post_fault_max: u64,
    heal_coverage: f64,
    heal_verified: bool,
    deadlocked: bool,
    /// Destination CRC failures answered with a NACK.
    nacks: u64,
    /// Timeout-race copies suppressed by per-pair sequence numbers.
    duplicates_suppressed: u64,
    /// X fabric: delivered + abandoned == generated (no loss, no
    /// double-count).
    exactly_once: bool,
}

/// Recovery-time distribution across seeded gray-failure runs.
#[derive(Serialize)]
struct RecoveryDistRow {
    system: String,
    samples: usize,
    /// Runs where a retried packet actually redelivered.
    recovered: usize,
    recover_p50: u64,
    recover_p95: u64,
    recover_p99: u64,
    retries: u64,
    flaky_drops: u64,
    corrupted_worms: u64,
    nacks: u64,
    duplicates_suppressed: u64,
    /// Every run: delivered + abandoned == generated on both fabrics.
    exactly_once: bool,
}

const FAULT_AT: u64 = 3_000;
const GEN_UNTIL: u64 = 6_000;
const MAX_CYCLES: u64 = 24_000;

fn retry() -> RetryPolicy {
    RetryPolicy {
        ack_timeout: 32,
        max_retries: 5,
        backoff_base: 16,
        jitter_seed: 0x5EED,
    }
}

/// Deterministically picks `count` inter-router links, spread across
/// the fabric.
fn victims(sys: &System, count: usize) -> Vec<LinkId> {
    let net = sys.net();
    let pool: Vec<LinkId> = net
        .links()
        .filter(|&l| {
            let info = net.link(l);
            net.is_router(info.a.0) && net.is_router(info.b.0)
        })
        .collect();
    assert!(count <= pool.len(), "not enough inter-router links");
    if count == 0 {
        return Vec::new();
    }
    let stride = pool.len() / count;
    (0..count).map(|i| pool[i * stride]).collect()
}

fn run_one(name: &str, sys: &System, count: usize) -> Row {
    let kills = victims(sys, count);

    // Static view of the damage: what certified healing can reconnect.
    let mut fault_set = FaultSet::none();
    for &l in &kills {
        fault_set.kill_link(l);
    }
    let healed = heal(sys.net(), sys.end_nodes(), &fault_set);
    let (heal_coverage, heal_verified) = match &healed {
        Ok(h) => (h.coverage(), true),
        Err(_) => (0.0, false),
    };

    let cfg_x = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: MAX_CYCLES,
        stall_threshold: 8_000,
        retry: retry(),
        ..SimConfig::default()
    }
    .with_telemetry(Telemetry::recording().with_event_capacity(8_192))
    .with_faults(
        kills
            .iter()
            .map(|&l| FaultEvent::kill_link(l, FAULT_AT))
            .collect(),
    );
    let cfg_y = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: MAX_CYCLES,
        stall_threshold: 8_000,
        ..SimConfig::default()
    };
    let x = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_x,
        heal: true,
        vc: None,
    };
    // The Y fabric is an identical, healthy twin of X.
    let y = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_y,
        heal: false,
        vc: None,
    };
    let workload = Workload::Bernoulli {
        injection_rate: 0.2,
        pattern: DstPattern::Uniform,
        until_cycle: GEN_UNTIL,
    };
    let out = run_with_failover(x, y, workload);

    let tel = out
        .x
        .telemetry
        .as_ref()
        .expect("X fabric records telemetry");
    let span_recover = tel.recovery_span_cycles();
    assert_eq!(
        span_recover, out.x.recovery.time_to_recover,
        "span decomposition must telescope to time_to_recover"
    );
    let post = &tel.post_fault_latency;

    Row {
        system: name.into(),
        faults: count,
        generated: out.total_generated(),
        delivered_x: out.x.delivered,
        delivered_y: out.y.as_ref().map_or(0, |r| r.delivered),
        delivery_fraction: out.delivery_ratio(),
        retries: out.x.recovery.retries,
        dropped_worms: out.x.recovery.dropped_worms,
        failovers: out.failovers,
        unrecovered: out.unrecovered.len(),
        repairs_installed: out.x.recovery.repairs_installed,
        time_to_recover: out.x.recovery.time_to_recover,
        span_recover,
        post_fault_p50: post.p50(),
        post_fault_p95: post.p95(),
        post_fault_p99: post.p99(),
        post_fault_max: post.max(),
        heal_coverage,
        heal_verified,
        deadlocked: out.x.deadlock.is_some() || out.y.iter().any(|r| r.deadlock.is_some()),
        nacks: out.x.recovery.nacks,
        duplicates_suppressed: out.x.recovery.duplicates_suppressed,
        exactly_once: out.x.delivered + out.x.recovery.abandoned.len() == out.x.generated,
    }
}

/// One seeded gray-failure run: a transient link kill, a flaky cable
/// and a corrupting cable all active mid-run, speculative ACK
/// retransmission on.
fn run_gray_case(sys: &System, seed: u64) -> FailoverOutcome {
    const GRAY_FAULT_AT: u64 = 1_500;
    const GRAY_GEN_UNTIL: u64 = 3_500;
    let v = victims(sys, 3);
    let faults = vec![
        FaultEvent::kill_link(v[0], GRAY_FAULT_AT).transient(GRAY_FAULT_AT + 1_000),
        FaultEvent::flaky_link(v[1], 60, GRAY_FAULT_AT).transient(GRAY_GEN_UNTIL),
        FaultEvent::corrupt_link(v[2], 80, GRAY_FAULT_AT / 2).transient(GRAY_GEN_UNTIL),
    ];
    let cfg_x = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 16_000,
        stall_threshold: 4_000,
        retry: retry(),
        seed,
        ..SimConfig::default()
    }
    .with_ack_retransmit(true)
    .with_faults(faults);
    let cfg_y = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 16_000,
        stall_threshold: 4_000,
        seed: seed ^ 0xD0A1,
        ..SimConfig::default()
    };
    let x = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_x,
        heal: true,
        vc: None,
    };
    let y = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_y,
        heal: false,
        vc: None,
    };
    let workload = Workload::Bernoulli {
        injection_rate: 0.15,
        pattern: DstPattern::Uniform,
        until_cycle: GRAY_GEN_UNTIL,
    };
    run_with_failover(x, y, workload)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

fn recovery_distribution(name: &str, sys: &System, samples: usize) -> RecoveryDistRow {
    let mut times = Vec::new();
    let mut retries = 0u64;
    let mut flaky_drops = 0u64;
    let mut corrupted = 0u64;
    let mut nacks = 0u64;
    let mut dups = 0u64;
    let mut exactly_once = true;
    for i in 0..samples {
        let out = run_gray_case(sys, 0xBE2C_u64.wrapping_add(i as u64));
        assert!(out.x.deadlock.is_none(), "{name} deadlocked (seed {i})");
        if let Some(t) = out.x.recovery.time_to_recover {
            times.push(t);
        }
        retries += out.x.recovery.retries;
        flaky_drops += out.x.recovery.flaky_drops;
        corrupted += out.x.recovery.corrupted_worms;
        nacks += out.x.recovery.nacks;
        dups += out.x.recovery.duplicates_suppressed;
        exactly_once &= out.x.delivered + out.x.recovery.abandoned.len() == out.x.generated
            && out.total_delivered() == out.total_generated();
    }
    times.sort_unstable();
    RecoveryDistRow {
        system: name.into(),
        samples,
        recovered: times.len(),
        recover_p50: percentile(&times, 50.0),
        recover_p95: percentile(&times, 95.0),
        recover_p99: percentile(&times, 99.0),
        retries,
        flaky_drops,
        corrupted_worms: corrupted,
        nacks,
        duplicates_suppressed: dups,
        exactly_once,
    }
}

fn main() {
    header(
        "E15 / robustness",
        "live link kills at 0.2 load: retry, self-healing, dual-fabric failover",
    );
    let systems = [
        ("fat fractahedron", system("fat-fractahedron:2")),
        ("4-2 fat tree", system("fattree:64:4:2")),
        ("6x6 mesh", system("mesh:6x6")),
    ];
    println!(
        "  {:<18} {:>6} {:>9} {:>10} {:>8} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "system",
        "kills",
        "delivery",
        "retries",
        "dropped",
        "failover",
        "repairs",
        "coverage",
        "recover",
        "p95post"
    );

    for (name, sys) in &systems {
        for count in [0usize, 1, 2, 4, 8] {
            let row = run_one(name, sys, count);
            assert!(!row.deadlocked, "{name} deadlocked with {count} faults");
            assert!(row.heal_verified, "{name} healed tables must certify");
            println!(
                "  {:<18} {:>6} {:>8.2}% {:>10} {:>8} {:>9} {:>8} {:>8.1}% {:>9} {:>8}",
                name,
                count,
                100.0 * row.delivery_fraction,
                row.retries,
                row.dropped_worms,
                row.failovers,
                row.repairs_installed,
                100.0 * row.heal_coverage,
                row.time_to_recover.map_or("-".into(), |t| t.to_string()),
                row.post_fault_p95,
            );
            if *name == "fat fractahedron" && count == 1 {
                // The issue's acceptance bar.
                assert!(
                    row.delivery_fraction >= 0.99,
                    "single-fault fat fractahedron delivered only {:.4}",
                    row.delivery_fraction
                );
            }
            emit_json("fault_recovery", &row);
        }
    }
    println!(
        "\n  One mid-run link kill on the fat fractahedron still completes ≥ 99% of\n\
         transfers: truncated worms are torn down, sources retry with backoff,\n\
         certified repaired tables install, and stragglers fail over to Y."
    );

    println!(
        "\n  recovery-time distribution over 16 seeded gray-failure runs per system\n\
         (transient kill + 60\u{2030} flaky + 80\u{2030} corrupting cable, speculative retransmit):"
    );
    println!(
        "  {:<18} {:>9} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}",
        "system", "recovered", "p50", "p95", "p99", "nacks", "dups", "1x"
    );
    for (name, sys) in &systems {
        let row = recovery_distribution(name, sys, 16);
        assert!(row.exactly_once, "{name}: exactly-once accounting broke");
        assert!(
            row.recovered >= row.samples / 2,
            "{name}: too few runs recovered ({}/{})",
            row.recovered,
            row.samples
        );
        println!(
            "  {:<18} {:>6}/{:<2} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}",
            name,
            row.recovered,
            row.samples,
            row.recover_p50,
            row.recover_p95,
            row.recover_p99,
            row.nacks,
            row.duplicates_suppressed,
            if row.exactly_once { "yes" } else { "NO" },
        );
        emit_json("fault_recovery_distribution", &row);
    }
    println!(
        "\n  Gray failures never break exactly-once delivery: CRC-failed worms are\n\
         NACKed and retried immediately, timeout-race copies are suppressed by\n\
         per-pair sequence numbers, and every generated packet is delivered\n\
         once or explicitly failed over."
    );
}
