//! Experiment E12 — §4 future work: "simulations of large topologies
//! in order to better understand network performance under heavy
//! loading." Load–latency curves for the three 64-node systems under
//! uniform traffic, plus the paper's adversarial patterns as sustained
//! hotspots; the saturation ordering should reflect the 10:1 / 12:1 /
//! 4:1 contention ranking.

use fractanet::prelude::*;
use fractanet::sim::sweep::{saturation_rate, sweep_loads};
use fractanet::System;
use fractanet_bench::{emit_json, header, host_cpus, system, write_bench_records, BenchRecord};
use fractanet_telemetry::QuantileSketch;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    system: String,
    rate: f64,
    avg_latency: f64,
    /// Log-bucketed histogram percentiles from telemetry — the curve
    /// is no longer means-only, so tail inflation near saturation is
    /// visible per point.
    p50_latency: u64,
    p95_latency: u64,
    p99_latency: u64,
    max_latency: u64,
    throughput: f64,
}

fn curve(
    name: &str,
    spec: &str,
    sys: &System,
    rates: &[f64],
    bench: &mut Vec<BenchRecord>,
) -> Vec<f64> {
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 12_000,
        stall_threshold: 6_000,
        warmup_cycles: 2_000,
        // Histograms only: a small ring keeps sweep memory flat.
        telemetry: Telemetry::recording().with_event_capacity(256),
        ..SimConfig::default()
    }
    // Streaming quantile sketches ride along (inert; see
    // tests/properties.rs) so the per-curve trajectory row carries
    // whole-sweep latency percentiles via sketch merge.
    .with_metrics(MetricsConfig::sampling(1_000).with_topology(spec));
    let t0 = Instant::now();
    let pts = sweep_loads(
        sys.net(),
        sys.route_set(),
        &cfg,
        &DstPattern::Uniform,
        rates,
        10_000,
    );
    let mut curve_sketch = QuantileSketch::new();
    for p in &pts {
        curve_sketch.merge(&p.result.metrics.as_ref().expect("metrics were on").latency);
    }
    // One trajectory point per sweep: total simulated cycles across
    // the whole curve against its wall time, on the shared pool width.
    bench.push(
        BenchRecord::new(
            "loadlatency",
            spec,
            host_cpus(),
            pts.iter().map(|p| p.result.cycles).sum(),
            t0.elapsed(),
            sys.routes().resident_bytes(),
        )
        .with_latency(curve_sketch.p50(), curve_sketch.p95(), curve_sketch.p99()),
    );
    print!("  {name:<22}");
    let mut lat = Vec::new();
    for p in &pts {
        assert!(
            p.result.deadlock.is_none(),
            "{name} deadlocked at {}",
            p.injection_rate
        );
        print!(" {:>8.1}", p.result.avg_latency);
        lat.push(p.result.avg_latency);
        let hist = p
            .result
            .telemetry
            .as_ref()
            .map(|t| &t.pre_fault_latency)
            .expect("sweep points record telemetry");
        emit_json(
            "loadlatency",
            &Point {
                system: name.into(),
                rate: p.injection_rate,
                avg_latency: p.result.avg_latency,
                p50_latency: hist.p50(),
                p95_latency: hist.p95(),
                p99_latency: hist.p99(),
                max_latency: hist.max(),
                throughput: p.result.throughput,
            },
        );
    }
    let sat = saturation_rate(&pts, 0.9);
    match sat {
        Some(r) => println!("   saturates ≈ {r:.2}"),
        None => println!("   keeps up at all swept loads"),
    }
    lat
}

fn main() {
    header(
        "E12 / §4",
        "load-latency under uniform traffic (64-node systems)",
    );
    let rates = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    print!("  {:<22}", "offered load (flits/node/cycle)");
    for r in rates {
        print!(" {r:>8.2}");
    }
    println!();

    let mesh = system("mesh:6x6");
    let ft = system("fattree:64:4:2");
    let ff = system("fat-fractahedron:2");
    let thin = system("thin-fractahedron:2");

    let mut bench = Vec::new();
    let _ = curve("6x6 mesh / XY", "mesh:6x6", &mesh, &rates, &mut bench);
    let lat_ft = curve("4-2 fat tree", "fattree:64:4:2", &ft, &rates, &mut bench);
    let lat_ff = curve(
        "fat fractahedron",
        "fat-fractahedron:2",
        &ff,
        &rates,
        &mut bench,
    );
    let _ = curve(
        "thin fractahedron",
        "thin-fractahedron:2",
        &thin,
        &rates,
        &mut bench,
    );
    write_bench_records("loadlatency", &bench);

    let better = lat_ff.iter().zip(&lat_ft).filter(|(a, b)| a <= b).count();
    println!(
        "\n  fat fractahedron at or below fat-tree latency at {better}/{} load points",
        rates.len()
    );

    header(
        "E12 / adversarial",
        "sustained adversarial flows (avg latency, cycles)",
    );
    // The paper's worst-case placements, replayed continuously.
    let adversarial_ft: Vec<usize> = {
        // 12 sources of group 3 onto the 12 destinations behind one
        // top link (ByLeafRouter: routers 0,4,8 => nodes 0-3,16-19,32-35).
        let mut perm: Vec<usize> = (0..64).collect();
        let dests = [0, 1, 2, 3, 16, 17, 18, 19, 32, 33, 34, 35];
        for (i, s) in (52..64).enumerate() {
            perm[s] = dests[i];
        }
        for (s, slot) in perm.iter_mut().enumerate().take(52) {
            *slot = s; // silent
        }
        perm
    };
    let adversarial_ff: Vec<usize> = {
        let mut perm: Vec<usize> = (0..64).collect();
        for (s, d) in [(6, 54), (7, 55), (14, 62), (15, 63)] {
            perm[s] = d;
        }
        perm
    };
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 16_000,
        stall_threshold: 8_000,
        warmup_cycles: 2_000,
        ..SimConfig::default()
    };
    for (name, sys, perm, active) in [
        ("4-2 fat tree (12 hot flows)", &ft, adversarial_ft, 12.0),
        ("fat fractahedron (4 hot flows)", &ff, adversarial_ff, 4.0),
    ] {
        print!("  {name:<32}");
        for rate in [0.2, 0.5, 0.8] {
            let pts = sweep_loads(
                sys.net(),
                sys.route_set(),
                &cfg,
                &DstPattern::Permutation(perm.clone()),
                &[rate],
                12_000,
            );
            let res = &pts[0].result;
            assert!(res.deadlock.is_none());
            if res.avg_latency == 0.0 && res.generated > res.delivered {
                // No post-warm-up packet finished inside the window:
                // the hot link is past saturation.
                print!("  @{rate:.1}: {:>8}", "(satur.)");
            } else {
                print!("  @{rate:.1}: {:>8.1}", res.avg_latency);
            }
        }
        println!("   ({active} concurrent hot flows)");
    }
    println!(
        "\n  The fat tree funnels 12 flows through one link; the fractahedron's\n\
         adversarial case tops out at 4 — the Table 2 contention gap, measured\n\
         as queueing latency."
    );
}
