//! Experiment E13 — §1's fault-tolerance claim: dual fabrics with
//! dual-ported nodes mask network faults. A randomized fault campaign
//! measures single-fabric vs dual-fabric pair survival on the 64-node
//! fat fractahedron, and the ServerNet ASIC's disable logic is shown
//! rejecting corrupted-table turns.

use fractanet::graph::PortId;
use fractanet::servernet::faults::surviving_pair_fraction;
use fractanet::servernet::{DualFabric, FaultSet, RouterAsic};
use fractanet::topo::{Fractahedron, Topology};
use fractanet_bench::{emit_json, header};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    faults: usize,
    single_fabric_alive: f64,
    dual_fabric_alive: f64,
}

#[derive(Serialize)]
struct StaticTableRow {
    topological_alive: f64,
    routed_alive: f64,
    healed_alive: f64,
    healed_certified: bool,
}

#[derive(Serialize)]
struct DisableRow {
    healthy_port: u32,
    corrupted_blocked: bool,
}

fn main() {
    header(
        "E13 / §1",
        "dual-fabric fault campaign (64-node fat fractahedron, 20 trials each)",
    );
    println!(
        "{:<26} {:>18} {:>18}",
        "faults per fabric", "single fabric alive", "dual fabric alive"
    );
    let trials = 20;
    for faults in [1usize, 2, 4, 8, 12] {
        let mut single = 0.0;
        let mut dual = 0.0;
        for t in 0..trials {
            let mut pair = DualFabric::new(Fractahedron::paper_fat_64);
            let mut rng = StdRng::seed_from_u64(faults as u64 * 1000 + t);
            // Independent fault draws for X and Y (links only + one
            // router past 4 faults).
            let routers = usize::from(faults >= 4);
            pair.x_faults = FaultSet::random(pair.x.net(), faults, routers, &mut rng);
            pair.y_faults = FaultSet::random(pair.y.net(), faults, routers, &mut rng);
            single += surviving_pair_fraction(pair.x.net(), &pair.x_faults, pair.x.end_nodes());
            dual += pair.surviving_pair_fraction();
        }
        let row = Row {
            faults,
            single_fabric_alive: single / trials as f64,
            dual_fabric_alive: dual / trials as f64,
        };
        println!(
            "{:<26} {:>17.2}% {:>17.3}%",
            format!(
                "{faults} links{}",
                if faults >= 4 { " + 1 router" } else { "" }
            ),
            100.0 * row.single_fabric_alive,
            100.0 * row.dual_fabric_alive
        );
        emit_json("faults", &row);
    }
    println!("\n  dual fabrics mask nearly everything: a pair is cut only when *both*");
    println!("  fabrics independently lose it — probability ≈ (single-fabric loss)².");

    header("E13 / §2.4", "static tables vs topology under one fault");
    {
        use fractanet::prelude::RouteSet;
        use fractanet::route::fractal::fractal_routes;
        use fractanet::servernet::faults::routed_surviving_fraction;
        let f = Fractahedron::paper_fat_64();
        let routes = fractal_routes(&f);
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        let victim = f
            .net()
            .channel_between(f.router(2, 0, 0, 0), f.router(2, 0, 0, 3))
            .unwrap()
            .link();
        let mut faults = FaultSet::none();
        faults.kill_link(victim);
        let topo = surviving_pair_fraction(f.net(), &faults, f.end_nodes());
        let routed = routed_surviving_fraction(f.net(), &rs, &faults);
        let healed = fractanet::servernet::heal(f.net(), f.end_nodes(), &faults);
        let (healed_alive, healed_certified) = healed
            .as_ref()
            .map(|h| (h.coverage(), true))
            .unwrap_or((0.0, false));
        println!("  one level-2 diagonal cable cut:");
        println!(
            "    topological connectivity : {:.2}% of pairs (the clique detours)",
            100.0 * topo
        );
        println!(
            "    fixed-table service      : {:.2}% of pairs (routes crossing it die)",
            100.0 * routed
        );
        println!(
            "    certified healed tables  : {:.2}% of pairs (fault-avoiding regeneration)",
            100.0 * healed_alive
        );
        println!("  static destination tables cannot exploit redundancy until reprogrammed —");
        println!("  ServerNet pairs whole fabrics (§1); `servernet::heal` reprograms around");
        println!("  the fault and re-certifies deadlock freedom before installing.");
        emit_json(
            "faults_static_tables",
            &StaticTableRow {
                topological_alive: topo,
                routed_alive: routed,
                healed_alive,
                healed_certified,
            },
        );
    }

    header(
        "E13 / §2.4",
        "path-disable logic vs corrupted routing tables",
    );
    let mut asic = RouterAsic::new(6, 64);
    asic.program(42, PortId(2));
    asic.disable_turn(PortId(5), PortId(0));
    let healthy = asic.forward(PortId(5), 42);
    println!("  healthy:   forward(in 5, dest 42) = {healthy:?}");
    asic.corrupt(42, PortId(0));
    let corrupted = asic.forward(PortId(5), 42);
    println!("  corrupted: table[42] now points at port 0 (an illegal up-turn)");
    println!("  enforced:  forward(in 5, dest 42) = {corrupted:?}");
    println!("  the packet is dropped and NACKed instead of closing a dependency loop.");
    emit_json(
        "faults_path_disable",
        &DisableRow {
            healthy_port: healthy.map(|p| u32::from(p.0)).unwrap_or(u32::MAX),
            corrupted_blocked: corrupted.is_err(),
        },
    );
}
