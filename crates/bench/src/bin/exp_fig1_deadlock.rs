//! Experiment E1 — Figure 1 (§2): wormhole deadlock in a 4-router
//! loop, demonstrated in the flit simulator, with the dimension-order
//! escape and a buffer-depth/packet-length ablation of deadlock onset.

use fractanet::prelude::*;
use fractanet::route::dor::mesh_xy_routes;
use fractanet::route::ringroute::ring_clockwise_routes;
use fractanet_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    buffer_depth: u32,
    packet_flits: u32,
    outcome: String,
    cycle: u64,
}

fn main() {
    header("E1 / Fig 1", "wormhole deadlock in a four-router loop");
    let ring = Ring::new(4, 1, 6).unwrap();
    let cw =
        RouteSet::from_table(ring.net(), ring.end_nodes(), &ring_clockwise_routes(&ring)).unwrap();

    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 20_000,
        stall_threshold: 200,
        ..SimConfig::default()
    };
    let res = Engine::new(ring.net(), &cw, cfg.clone()).run(Workload::fig1_ring(4));
    match &res.deadlock {
        Some(dl) => {
            println!(
                "  clockwise ring, 4 simultaneous wrap transfers: DEADLOCK at cycle {}",
                dl.cycle
            );
            println!("  circular wait ({} channels):", dl.cycle_channels.len());
            for ch in &dl.cycle_channels {
                println!(
                    "    {} --> {}   (head blocked by the tail ahead of it)",
                    ring.net().label(ring.net().channel_src(*ch)),
                    ring.net().label(ring.net().channel_dst(*ch))
                );
            }
        }
        None => println!("  UNEXPECTED: no deadlock"),
    }

    let mesh = Mesh2D::new(2, 2, 1, 6).unwrap();
    let xy = RouteSet::from_table(mesh.net(), mesh.end_nodes(), &mesh_xy_routes(&mesh)).unwrap();
    let wl = Workload::Scripted(vec![(0, 0, 3), (0, 1, 2), (0, 2, 1), (0, 3, 0)]);
    let res2 = Engine::new(mesh.net(), &xy, cfg).run(wl);
    println!(
        "\n  same four routers as a 2x2 mesh under dimension-order routing:\n  {} — {} packets delivered in {} cycles (routes B and D rerouted)",
        if res2.deadlock.is_none() { "NO deadlock" } else { "deadlock?!" },
        res2.delivered,
        res2.cycles
    );

    header(
        "E1 / ablation",
        "deadlock onset vs buffer depth and packet length",
    );
    println!(
        "{:<14} {:<14} {:<22}",
        "buffer depth", "packet flits", "outcome"
    );
    for depth in [1u32, 2, 4, 8, 16] {
        for flits in [4u32, 8, 16, 64] {
            let cfg = SimConfig {
                packet_flits: flits,
                buffer_depth: depth,
                max_cycles: 50_000,
                stall_threshold: 300,
                ..SimConfig::default()
            };
            let res = Engine::new(ring.net(), &cw, cfg).run(Workload::fig1_ring(4));
            let outcome = match &res.deadlock {
                Some(dl) => format!("deadlock @ cycle {}", dl.cycle),
                None => format!("completed in {} cycles", res.cycles),
            };
            emit_json(
                "fig1_ablation",
                &Row {
                    buffer_depth: depth,
                    packet_flits: flits,
                    outcome: if res.deadlock.is_some() {
                        "deadlock"
                    } else {
                        "completed"
                    }
                    .to_string(),
                    cycle: res.deadlock.as_ref().map(|d| d.cycle).unwrap_or(res.cycles),
                },
            );
            println!("{:<14} {:<14} {:<22}", depth, flits, outcome);
        }
    }
    println!(
        "\n  every configuration deadlocks: a wormhole channel is held until the\n\
         packet's tail *leaves* it, and all four heads block simultaneously, so\n\
         neither deeper FIFOs nor shorter packets help — only the onset cycle\n\
         shifts (body flits keep trickling a little longer). This is why Dally &\n\
         Seitz needed virtual channels (costly buffers, complex routers — §2)\n\
         and why the paper avoids loops topologically instead."
    );
}
