//! Experiments E2/E8 — Figure 2 and §3.2: breaking hypercube deadlocks
//! with path disables, the resulting uneven link utilization, and the
//! 6-cube port-budget problem. Three route-restriction styles are
//! compared: e-cube (dimension order), up*/down* (the Fig 2 disable
//! discipline), and automatically synthesized turn disables.

use fractanet::deadlock::{synthesize_disables, verify_deadlock_free};
use fractanet::metrics::utilization::utilization;
use fractanet::prelude::*;
use fractanet::route::dor::ecube_routes;
use fractanet::route::treeroute::updown_routeset;
use fractanet_bench::{emit_json, header};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    deadlock_free: bool,
    min_load: usize,
    max_load: usize,
    cv: f64,
}

fn show(net: &fractanet::graph::Network, label: &str, rs: &RouteSet) -> Row {
    let free = verify_deadlock_free(net, rs).is_ok();
    let u = utilization(net, rs, Some(LinkClass::Local));
    let row = Row {
        scheme: label.to_string(),
        deadlock_free: free,
        min_load: u.min,
        max_load: u.max,
        cv: u.cv,
    };
    println!(
        "  {:<22} {:<14} load min {:>3} / max {:>3}   cv {:>6.3}   avg hops {:>5.2}",
        label,
        if free {
            "deadlock-free"
        } else {
            "CAN DEADLOCK"
        },
        u.min,
        u.max,
        u.cv,
        rs.avg_router_hops(),
    );
    emit_json("fig2", &row);
    row
}

fn main() {
    header("E8 / §3.2", "the 6-cube does not fit 6-port routers");
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // the failure below is the expected result
    let attempt = std::panic::catch_unwind(|| Hypercube::new(6, 1, 6));
    std::panic::set_hook(default_hook);
    match attempt {
        Err(_) => {
            println!("  Hypercube::new(6, 1, 6 ports) rejected: needs 6 cube ports + 1 node port ✓")
        }
        Ok(_) => println!("  UNEXPECTED: 6-cube built on 6-port routers"),
    }
    let h7 = Hypercube::new(6, 1, 7).unwrap();
    println!(
        "  with 7-port routers: {} routers, {} nodes",
        h7.net().router_count(),
        h7.end_nodes().len()
    );

    header(
        "E2 / Fig 2",
        "3-cube route restriction styles (2 nodes per corner)",
    );
    let h = Hypercube::new(3, 2, 6).unwrap();

    let ecube = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
    let e = show(h.net(), "e-cube (dim order)", &ecube);

    let ud = updown_routeset(h.net(), h.end_nodes(), h.router(0b111));
    let u = show(h.net(), "up*/down* (disables)", &ud);

    match synthesize_disables(h.net(), h.end_nodes(), 500) {
        Ok((disables, rs)) => {
            println!(
                "  synthesized {} turn disables (greedy order was already acyclic here):",
                disables.len()
            );
            show(h.net(), "synthesized disables", &rs);
        }
        Err(e) => println!("  synthesis failed: {e}"),
    }

    println!("\n  synthesis on a topology whose greedy routing *does* loop (6-ring):");
    let ring = Ring::new(6, 1, 6).unwrap();
    match synthesize_disables(ring.net(), ring.end_nodes(), 500) {
        Ok((disables, rs)) => {
            println!(
                "  {} turn disables break the loop; routing stays complete, avg hops {:.2}",
                disables.len(),
                rs.avg_router_hops()
            );
            assert!(verify_deadlock_free(ring.net(), &rs).is_ok());
        }
        Err(e) => println!("  synthesis failed: {e}"),
    }

    println!(
        "\n  e-cube is perfectly even (cv {:.3}); the disable discipline skews the\n\
         load (cv {:.3}): \"most arrangements of path disables give uneven link\n\
         utilization under uniform load\" — §2. Links far from the root carry\n\
         {}x the traffic of the lightest link.",
        e.cv,
        u.cv,
        u.max_load.checked_div(u.min_load).unwrap_or(u.max_load)
    );
}
