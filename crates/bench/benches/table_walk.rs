//! Route-state memory and injection-path guard for the table-canonical
//! refactor.
//!
//! Two hard assertions back the README's memory-model claim and fail
//! the bench (and the CI job that runs it) if a regression sneaks the
//! dense path matrix back onto the hot path:
//!
//! 1. Destination tables (O(routers · N) bytes) must undercut the
//!    traced dense matrix (O(N² · path length) words) by at least 10×
//!    at N = 1024. The resident sizes at N ∈ {64, 256, 1024} are
//!    printed for the record.
//! 2. A seeded simulation routed hop-by-hop from the shared tables
//!    must produce *identical* results to the legacy path-snapshot
//!    engine — same delivered count, latencies, and per-channel busy
//!    cycles — and must not be slower beyond CI noise.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fractanet::prelude::*;
use fractanet::System;
use fractanet_bench::system;
use fractanet_route::RouteSet;
use std::time::Instant;

/// The three sizes the guard reports; only the largest is asserted.
const SPECS: [(&str, usize); 3] = [
    ("fat-fractahedron:2", 64),
    ("hypercube:8", 256),
    ("thin-fractahedron:3:fanout", 1024),
];

/// Guard 1: table memory undercuts the dense matrix, 10× at N=1024.
fn guard_resident_bytes(_c: &mut Criterion) {
    for (spec, nodes) in SPECS {
        let sys = system(spec);
        assert_eq!(sys.end_nodes().len(), nodes, "{spec}");
        let table_bytes = sys.routes().resident_bytes();
        let dense_bytes = sys.route_set().resident_bytes();
        let ratio = dense_bytes as f64 / table_bytes as f64;
        println!(
            "bench route-state bytes N={nodes:>4} ({spec}): tables {table_bytes} \
             vs dense {dense_bytes} ({ratio:.1}x)"
        );
        if nodes >= 1024 {
            assert!(
                ratio >= 10.0,
                "{spec}: tables must be >=10x smaller than the dense matrix, got {ratio:.1}x"
            );
        }
    }
}

fn sim_cfg() -> SimConfig {
    SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 4_000,
        stall_threshold: 3_900,
        ..SimConfig::default()
    }
}

fn workload() -> Workload {
    Workload::Bernoulli {
        injection_rate: 0.3,
        pattern: DstPattern::Uniform,
        until_cycle: 3_000,
    }
}

fn sim_dense(sys: &System, rs: &RouteSet) -> fractanet_sim::SimResult {
    Engine::new(sys.net(), rs, sim_cfg()).run(workload())
}

fn sim_tables(sys: &System) -> fractanet_sim::SimResult {
    Engine::with_tables(sys.net(), sys.end_nodes(), sys.shared_routes(), sim_cfg()).run(workload())
}

/// Wall time of the fastest of `reps` runs — min is the right
/// statistic for a noise-robust lower bound on both sides of a ratio.
fn min_wall(reps: usize, mut f: impl FnMut()) -> u128 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .unwrap()
}

/// Guard 2: table-walk injection matches path-snapshot injection
/// bit-for-bit and is not slower beyond CI noise.
fn guard_injection_parity(c: &mut Criterion) {
    let sys = system("fat-fractahedron:2");
    let rs = sys.route_set().clone();

    let dense = sim_dense(&sys, &rs);
    let tabled = sim_tables(&sys);
    assert_eq!(dense.delivered, tabled.delivered, "table walk diverged");
    assert_eq!(dense.avg_latency, tabled.avg_latency, "table walk diverged");
    assert_eq!(
        dense.channel_busy, tabled.channel_busy,
        "table walk diverged"
    );

    let t_dense = min_wall(5, || {
        black_box(sim_dense(&sys, &rs));
    });
    let t_tables = min_wall(5, || {
        black_box(sim_tables(&sys));
    });
    let ratio = t_tables as f64 / t_dense.max(1) as f64;
    println!(
        "bench table-walk/path-snapshot wall ratio: {ratio:.2}x ({t_tables} ns vs {t_dense} ns)"
    );
    assert!(
        ratio <= 1.25,
        "table-walk injection is {ratio:.2}x the path-snapshot run (bound: 1.25x)"
    );

    c.bench_function("sim_fat64_path_snapshot", |b| {
        b.iter(|| sim_dense(&sys, &rs).delivered)
    });
    c.bench_function("sim_fat64_table_walk", |b| {
        b.iter(|| sim_tables(&sys).delivered)
    });
}

criterion_group! {
    name = table_walk;
    config = Criterion::default().sample_size(10);
    targets = guard_resident_bytes, guard_injection_parity
}
criterion_main!(table_walk);
