//! Criterion benches, one group per paper artifact, measuring the
//! computational kernels behind each reproduction: construction,
//! route tracing, contention matching, bisection max-flow,
//! channel-dependency analysis, and simulator cycle throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fractanet::deadlock::{verify_deadlock_free, ChannelDependencyGraph};
use fractanet::metrics::{bisection_estimate, max_link_contention};
use fractanet::prelude::*;
use fractanet::route::ringroute::ring_clockwise_routes;
use fractanet::route::treeroute::updown_routeset;
use fractanet::System;

/// Fig 1: simulate the four-packet loop to deadlock detection.
fn bench_fig1(c: &mut Criterion) {
    let ring = Ring::new(4, 1, 6).unwrap();
    let rs =
        RouteSet::from_table(ring.net(), ring.end_nodes(), &ring_clockwise_routes(&ring)).unwrap();
    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 5_000,
        stall_threshold: 200,
        ..SimConfig::default()
    };
    c.bench_function("fig1_ring_deadlock_sim", |b| {
        b.iter(|| {
            let res = Engine::new(ring.net(), &rs, cfg.clone()).run(Workload::fig1_ring(4));
            assert!(res.deadlock.is_some());
        })
    });
}

/// Fig 2: up*/down* route generation + CDG verification on a cube.
fn bench_fig2(c: &mut Criterion) {
    let h = Hypercube::new(4, 2, 6).unwrap();
    c.bench_function("fig2_updown_routes_4cube", |b| {
        b.iter(|| updown_routeset(h.net(), h.end_nodes(), h.router(0)))
    });
    let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
    c.bench_function("fig2_cdg_verify_4cube", |b| {
        b.iter(|| verify_deadlock_free(h.net(), &rs).is_ok())
    });
}

/// Fig 3: cluster construction + contention for all sizes.
fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_cluster_series_contention", |b| {
        b.iter(|| {
            let mut total = 0;
            for m in 2..=6 {
                let sys = System::cluster(m);
                total += max_link_contention(sys.net(), sys.route_set()).worst;
            }
            assert_eq!(total, 5 + 4 + 3 + 2 + 1);
        })
    });
}

/// Table 1: fractahedron construction and bisection max-flow.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_build_fat_fractahedron_n2", |b| {
        b.iter(|| Fractahedron::new(2, Variant::Fat, false).unwrap())
    });
    c.bench_function("table1_build_thin_fractahedron_n3", |b| {
        b.iter(|| Fractahedron::new(3, Variant::Thin, false).unwrap())
    });
    let f = Fractahedron::paper_fat_64();
    c.bench_function("table1_bisection_fat_64", |b| {
        b.iter(|| bisection_estimate(f.net(), f.end_nodes(), 4).links)
    });
}

/// Table 2: the full analytical battery on both 64-node systems.
fn bench_table2(c: &mut Criterion) {
    let ft = System::fat_tree(64, 4, 2);
    let ff = System::fat_fractahedron(2);
    c.bench_function("table2_contention_fat_tree_64", |b| {
        b.iter(|| max_link_contention(ft.net(), ft.route_set()).worst)
    });
    c.bench_function("table2_contention_fractahedron_64", |b| {
        b.iter(|| max_link_contention(ff.net(), ff.route_set()).worst)
    });
    c.bench_function("table2_full_analyze_fractahedron", |b| {
        b.iter(|| ff.analyze().routers)
    });
    c.bench_function("table2_cdg_build_fractahedron", |b| {
        b.iter(|| ChannelDependencyGraph::from_routes(ff.net(), ff.route_set()).dependency_count())
    });
}

/// §3.1: mesh route tracing for all pairs.
fn bench_mesh(c: &mut Criterion) {
    let m = Mesh2D::new(6, 6, 2, 6).unwrap();
    let routes = fractanet::route::dor::mesh_xy_routes(&m);
    c.bench_function("sec31_mesh_trace_all_pairs", |b| {
        b.iter(|| {
            RouteSet::from_table(m.net(), m.end_nodes(), &routes)
                .unwrap()
                .len()
        })
    });
}

/// §4 simulation: engine cycle throughput at moderate load.
fn bench_sim(c: &mut Criterion) {
    let ff = System::fat_fractahedron(2);
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 2_000,
        stall_threshold: 1_900,
        ..SimConfig::default()
    };
    c.bench_function("sim_2000_cycles_fat_64_load_0p3", |b| {
        b.iter_batched(
            || Workload::Bernoulli {
                injection_rate: 0.3,
                pattern: DstPattern::Uniform,
                until_cycle: 2_000,
            },
            |wl| {
                let res = ff.simulate(wl, cfg.clone());
                assert!(res.deadlock.is_none());
            },
            BatchSize::SmallInput,
        )
    });
}

/// §4 extensions: generalized construction + VC engine + bisection
/// max-flow at the 1024-node scale.
fn bench_extensions(c: &mut Criterion) {
    use fractanet::sim::vc::{dateline_ring_routes, VcEngine};
    use fractanet::topo::{ClusterShape, Fractahedron, GenFractahedron};

    c.bench_function("ext_build_generalized_3_6_2_2", |b| {
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        b.iter(|| GenFractahedron::new(shape, 2, true).unwrap())
    });

    let ring = Ring::new(4, 1, 6).unwrap();
    let routes = dateline_ring_routes(&ring, 2);
    let cfg = SimConfig {
        packet_flits: 32,
        buffer_depth: 2,
        max_cycles: 5_000,
        stall_threshold: 300,
        ..SimConfig::default()
    };
    c.bench_function("ext_vc_ring_fig1_completes", |b| {
        b.iter(|| {
            let res = VcEngine::new(ring.net(), &routes, cfg.clone()).run(Workload::fig1_ring(4));
            assert!(res.deadlock.is_none());
        })
    });

    c.bench_function("ext_bisection_thin_1024cpu", |b| {
        let f = Fractahedron::paper_thin_1024();
        b.iter(|| bisection_estimate(f.net(), f.end_nodes(), 0).links)
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig3, bench_table1, bench_table2, bench_mesh,
              bench_sim, bench_extensions
}
criterion_main!(paper);
