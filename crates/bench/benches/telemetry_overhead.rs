//! Telemetry overhead guard: the tracer must be effectively free when
//! off and boundedly cheap when on.
//!
//! Two hard assertions back the README's overhead numbers and fail the
//! bench (and the CI job that runs it) when instrumentation creep
//! makes recording mandatory-expensive:
//!
//! 1. The disabled path — every instrumentation site is an
//!    `Option<Recorder>` check that stays `None` — must average under
//!    25 ns per would-be emit (it is really a branch on a `None`).
//! 2. An identical simulation with recording on must finish within 5×
//!    the disabled wall time (generous for CI noise; typical is well
//!    under 2×).
//!
//! The guard also cross-checks that recording does not perturb the
//! simulation: delivered counts and latencies must match exactly.
//! That parity check extends to gray failures — a run with flaky and
//! corrupting links (ACK retransmission and dedup on) must produce the
//! same delivered counts, retries, NACKs, and suppressed duplicates
//! whether or not the gray events (`corrupted`, `nacked`,
//! `dup_suppressed`) are being recorded.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fractanet::prelude::*;
use fractanet::System;
use fractanet_sim::{FaultEvent, RetryPolicy, Telemetry};
use fractanet_telemetry::{MetricsRecorder, Recorder};
use std::time::Instant;

fn sim_once(sys: &System, telemetry: Telemetry) -> fractanet_sim::SimResult {
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 4_000,
        stall_threshold: 3_900,
        ..SimConfig::default()
    }
    .with_telemetry(telemetry);
    let wl = Workload::Bernoulli {
        injection_rate: 0.3,
        pattern: DstPattern::Uniform,
        until_cycle: 3_000,
    };
    sys.simulate(wl, cfg)
}

fn metrics_sim_once(sys: &System, metrics: MetricsConfig) -> fractanet_sim::SimResult {
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 4_000,
        stall_threshold: 3_900,
        metrics,
        ..SimConfig::default()
    };
    let wl = Workload::Bernoulli {
        injection_rate: 0.3,
        pattern: DstPattern::Uniform,
        until_cycle: 3_000,
    };
    sys.simulate(wl, cfg)
}

/// Wall time of the fastest of `reps` runs — min is the right
/// statistic for a noise-robust lower bound on both sides of a ratio.
fn min_wall(reps: usize, mut f: impl FnMut()) -> u128 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .unwrap()
}

/// Guard 1: the disabled emit path is a branch, not a call.
fn guard_noop_emit(c: &mut Criterion) {
    let mut tel: Option<Recorder> = Telemetry::off().recorder(8);
    assert!(tel.is_none(), "Telemetry::off() must yield no recorder");
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        if let Some(t) = black_box(&mut tel).as_mut() {
            t.flit_forwarded(ChannelId((i % 8) as u32));
        }
    }
    let per_call = t0.elapsed().as_nanos() / CALLS as u128;
    assert!(
        per_call < 25,
        "disabled emit path costs {per_call} ns/call (bound: 25 ns)"
    );
    c.bench_function("telemetry_noop_emit_1e6", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                if let Some(t) = black_box(&mut tel).as_mut() {
                    t.flit_forwarded(ChannelId((i % 8) as u32));
                }
            }
        })
    });

    // The gray-failure sites (corrupted / nacked / dup_suppressed) sit
    // on the engine's hot delivery path and must obey the same bound.
    let t0 = Instant::now();
    for i in 0..CALLS {
        if let Some(t) = black_box(&mut tel).as_mut() {
            match i % 3 {
                0 => t.corrupted(i, i as u32, ChannelId((i % 8) as u32)),
                1 => t.nacked(i, i as u32, 0, 1),
                _ => t.dup_suppressed(i, i as u32, (i / 2) as u32),
            }
        }
    }
    let per_call = t0.elapsed().as_nanos() / CALLS as u128;
    assert!(
        per_call < 25,
        "disabled gray emit path costs {per_call} ns/call (bound: 25 ns)"
    );
    c.bench_function("telemetry_noop_gray_emit_1e6", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                if let Some(t) = black_box(&mut tel).as_mut() {
                    match i % 3 {
                        0 => t.corrupted(i, i as u32, ChannelId((i % 8) as u32)),
                        1 => t.nacked(i, i as u32, 0, 1),
                        _ => t.dup_suppressed(i, i as u32, (i / 2) as u32),
                    }
                }
            }
        })
    });
}

/// Guard 1m: the disabled metrics emit path is the same shape as the
/// tracer's — a branch on a `None`, never a call.
fn guard_metrics_noop_emit(c: &mut Criterion) {
    let sys = System::fat_fractahedron(1);
    let ends = sys
        .net()
        .nodes()
        .filter(|&n| !sys.net().is_router(n))
        .count();
    let mut met: Option<MetricsRecorder> = MetricsConfig::off().recorder(sys.net(), ends, 6);
    assert!(met.is_none(), "MetricsConfig::off() must yield no recorder");
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        if let Some(m) = black_box(&mut met).as_mut() {
            match i % 3 {
                0 => m.generated(i, (i % 16) as usize, ((i + 1) % 16) as usize),
                1 => m.delivered(i, (i % 16) as usize, ((i + 1) % 16) as usize, i % 512),
                _ => m.abandoned(i, (i % 16) as usize, ((i + 1) % 16) as usize),
            }
        }
    }
    let per_call = t0.elapsed().as_nanos() / CALLS as u128;
    assert!(
        per_call < 25,
        "disabled metrics emit path costs {per_call} ns/call (bound: 25 ns)"
    );
    c.bench_function("metrics_noop_emit_1e6", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                if let Some(m) = black_box(&mut met).as_mut() {
                    match i % 3 {
                        0 => m.generated(i, (i % 16) as usize, ((i + 1) % 16) as usize),
                        1 => m.delivered(i, (i % 16) as usize, ((i + 1) % 16) as usize, i % 512),
                        _ => m.abandoned(i, (i % 16) as usize, ((i + 1) % 16) as usize),
                    }
                }
            }
        })
    });
}

/// Guard 2m: sampling metrics stays within 5× of the disabled run and
/// does not change the simulation's outcome — same contract as the
/// tracer, now for the streaming-quantile pipeline.
fn guard_metrics_on_off_ratio(c: &mut Criterion) {
    let sys = System::fat_fractahedron(1);

    let off = metrics_sim_once(&sys, MetricsConfig::off());
    let on = metrics_sim_once(&sys, MetricsConfig::sampling(100));
    assert!(off.metrics.is_none());
    assert!(on.metrics.is_some());
    assert_eq!(off.delivered, on.delivered, "metrics perturbed the sim");
    assert_eq!(off.avg_latency, on.avg_latency, "metrics perturbed the sim");
    assert_eq!(
        off.channel_busy, on.channel_busy,
        "metrics perturbed the sim"
    );

    let t_off = min_wall(5, || {
        black_box(metrics_sim_once(&sys, MetricsConfig::off()));
    });
    let t_on = min_wall(5, || {
        black_box(metrics_sim_once(&sys, MetricsConfig::sampling(100)));
    });
    let ratio = t_on as f64 / t_off.max(1) as f64;
    println!("bench metrics on/off wall ratio: {ratio:.2}x ({t_on} ns vs {t_off} ns)");
    assert!(
        ratio <= 5.0,
        "metrics-on run is {ratio:.2}x the disabled run (bound: 5x)"
    );

    c.bench_function("sim_fat16_metrics_off", |b| {
        b.iter(|| metrics_sim_once(&sys, MetricsConfig::off()).delivered)
    });
    c.bench_function("sim_fat16_metrics_on", |b| {
        b.iter(|| metrics_sim_once(&sys, MetricsConfig::sampling(100)).delivered)
    });
}

/// A simulation whose run crosses every gray-failure instrumentation
/// site: a flaky link forces drops, NACKs, and retransmissions; a
/// corrupting link forces CRC rejections; retransmission races mint
/// duplicates for the dedup filter to suppress.
fn gray_sim_once(sys: &System, telemetry: Telemetry) -> fractanet_sim::SimResult {
    let victim = sys
        .net()
        .links()
        .find(|&l| {
            let info = sys.net().link(l);
            sys.net().is_router(info.a.0) && sys.net().is_router(info.b.0)
        })
        .expect("fabric has an inter-router link");
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 4_000,
        stall_threshold: 3_900,
        ..SimConfig::default()
    }
    .with_faults(vec![
        FaultEvent::flaky_link(victim, 120, 200).transient(3_200),
        FaultEvent::corrupt_link(victim, 80, 400).transient(3_200),
    ])
    // An ACK timeout shorter than the uncontended delivery latency makes
    // speculative retransmission race real deliveries, so the dedup
    // filter has duplicates to suppress.
    .with_retry(RetryPolicy {
        ack_timeout: 4,
        max_retries: 6,
        backoff_base: 16,
        jitter_seed: 11,
    })
    .with_ack_retransmit(true)
    .with_dedup(true)
    .with_telemetry(telemetry);
    let wl = Workload::Bernoulli {
        injection_rate: 0.2,
        pattern: DstPattern::Uniform,
        until_cycle: 3_000,
    };
    sys.simulate(wl, cfg)
}

/// Guard 3: recording the gray events does not perturb a run that
/// actually emits them — drops, NACKs, retransmits, and duplicate
/// suppression are bit-identical with telemetry on and off.
fn guard_gray_parity(_c: &mut Criterion) {
    let sys = System::fat_fractahedron(1);
    let off = gray_sim_once(&sys, Telemetry::off());
    let on = gray_sim_once(&sys, Telemetry::recording());
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert!(
        off.recovery.nacks > 0 && off.recovery.duplicates_suppressed > 0,
        "gray run must exercise the NACK and dedup paths \
         (nacks {}, dups {})",
        off.recovery.nacks,
        off.recovery.duplicates_suppressed
    );
    assert_eq!(off.delivered, on.delivered, "recording perturbed the sim");
    assert_eq!(
        off.avg_latency, on.avg_latency,
        "recording perturbed the sim"
    );
    for (label, a, b) in [
        ("retries", off.recovery.retries, on.recovery.retries),
        (
            "flaky_drops",
            off.recovery.flaky_drops,
            on.recovery.flaky_drops,
        ),
        (
            "corrupted_worms",
            off.recovery.corrupted_worms,
            on.recovery.corrupted_worms,
        ),
        ("nacks", off.recovery.nacks, on.recovery.nacks),
        (
            "duplicates_suppressed",
            off.recovery.duplicates_suppressed,
            on.recovery.duplicates_suppressed,
        ),
    ] {
        assert_eq!(a, b, "recording perturbed gray counter {label}");
    }
    println!(
        "bench gray parity: nacks {} dups {} identical on/off",
        off.recovery.nacks, off.recovery.duplicates_suppressed
    );
}

/// Guard 2: recording stays within 5× of the disabled run and does
/// not change the simulation's outcome.
fn guard_on_off_ratio(c: &mut Criterion) {
    let sys = System::fat_fractahedron(1);

    let off = sim_once(&sys, Telemetry::off());
    let on = sim_once(&sys, Telemetry::recording());
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert_eq!(off.delivered, on.delivered, "recording perturbed the sim");
    assert_eq!(
        off.avg_latency, on.avg_latency,
        "recording perturbed the sim"
    );
    assert_eq!(
        off.channel_busy, on.channel_busy,
        "recording perturbed the sim"
    );

    let t_off = min_wall(5, || {
        black_box(sim_once(&sys, Telemetry::off()));
    });
    let t_on = min_wall(5, || {
        black_box(sim_once(&sys, Telemetry::recording()));
    });
    let ratio = t_on as f64 / t_off.max(1) as f64;
    println!("bench telemetry on/off wall ratio: {ratio:.2}x ({t_on} ns vs {t_off} ns)");
    assert!(
        ratio <= 5.0,
        "telemetry-on run is {ratio:.2}x the disabled run (bound: 5x)"
    );

    c.bench_function("sim_fat16_telemetry_off", |b| {
        b.iter(|| sim_once(&sys, Telemetry::off()).delivered)
    });
    c.bench_function("sim_fat16_telemetry_on", |b| {
        b.iter(|| sim_once(&sys, Telemetry::recording()).delivered)
    });
}

criterion_group! {
    name = telemetry;
    config = Criterion::default().sample_size(10);
    targets = guard_noop_emit, guard_metrics_noop_emit, guard_on_off_ratio,
        guard_metrics_on_off_ratio, guard_gray_parity
}
criterion_main!(telemetry);
