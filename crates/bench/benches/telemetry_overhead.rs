//! Telemetry overhead guard: the tracer must be effectively free when
//! off and boundedly cheap when on.
//!
//! Two hard assertions back the README's overhead numbers and fail the
//! bench (and the CI job that runs it) when instrumentation creep
//! makes recording mandatory-expensive:
//!
//! 1. The disabled path — every instrumentation site is an
//!    `Option<Recorder>` check that stays `None` — must average under
//!    25 ns per would-be emit (it is really a branch on a `None`).
//! 2. An identical simulation with recording on must finish within 5×
//!    the disabled wall time (generous for CI noise; typical is well
//!    under 2×).
//!
//! The guard also cross-checks that recording does not perturb the
//! simulation: delivered counts and latencies must match exactly.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fractanet::prelude::*;
use fractanet::System;
use fractanet_sim::Telemetry;
use fractanet_telemetry::Recorder;
use std::time::Instant;

fn sim_once(sys: &System, telemetry: Telemetry) -> fractanet_sim::SimResult {
    let cfg = SimConfig {
        packet_flits: 16,
        buffer_depth: 4,
        max_cycles: 4_000,
        stall_threshold: 3_900,
        ..SimConfig::default()
    }
    .with_telemetry(telemetry);
    let wl = Workload::Bernoulli {
        injection_rate: 0.3,
        pattern: DstPattern::Uniform,
        until_cycle: 3_000,
    };
    sys.simulate(wl, cfg)
}

/// Wall time of the fastest of `reps` runs — min is the right
/// statistic for a noise-robust lower bound on both sides of a ratio.
fn min_wall(reps: usize, mut f: impl FnMut()) -> u128 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .unwrap()
}

/// Guard 1: the disabled emit path is a branch, not a call.
fn guard_noop_emit(c: &mut Criterion) {
    let mut tel: Option<Recorder> = Telemetry::off().recorder(8);
    assert!(tel.is_none(), "Telemetry::off() must yield no recorder");
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        if let Some(t) = black_box(&mut tel).as_mut() {
            t.flit_forwarded(ChannelId((i % 8) as u32));
        }
    }
    let per_call = t0.elapsed().as_nanos() / CALLS as u128;
    assert!(
        per_call < 25,
        "disabled emit path costs {per_call} ns/call (bound: 25 ns)"
    );
    c.bench_function("telemetry_noop_emit_1e6", |b| {
        b.iter(|| {
            for i in 0..CALLS {
                if let Some(t) = black_box(&mut tel).as_mut() {
                    t.flit_forwarded(ChannelId((i % 8) as u32));
                }
            }
        })
    });
}

/// Guard 2: recording stays within 5× of the disabled run and does
/// not change the simulation's outcome.
fn guard_on_off_ratio(c: &mut Criterion) {
    let sys = System::fat_fractahedron(1);

    let off = sim_once(&sys, Telemetry::off());
    let on = sim_once(&sys, Telemetry::recording());
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert_eq!(off.delivered, on.delivered, "recording perturbed the sim");
    assert_eq!(
        off.avg_latency, on.avg_latency,
        "recording perturbed the sim"
    );
    assert_eq!(
        off.channel_busy, on.channel_busy,
        "recording perturbed the sim"
    );

    let t_off = min_wall(5, || {
        black_box(sim_once(&sys, Telemetry::off()));
    });
    let t_on = min_wall(5, || {
        black_box(sim_once(&sys, Telemetry::recording()));
    });
    let ratio = t_on as f64 / t_off.max(1) as f64;
    println!("bench telemetry on/off wall ratio: {ratio:.2}x ({t_on} ns vs {t_off} ns)");
    assert!(
        ratio <= 5.0,
        "telemetry-on run is {ratio:.2}x the disabled run (bound: 5x)"
    );

    c.bench_function("sim_fat16_telemetry_off", |b| {
        b.iter(|| sim_once(&sys, Telemetry::off()).delivered)
    });
    c.bench_function("sim_fat16_telemetry_on", |b| {
        b.iter(|| sim_once(&sys, Telemetry::recording()).delivered)
    });
}

criterion_group! {
    name = telemetry;
    config = Criterion::default().sample_size(10);
    targets = guard_noop_emit, guard_on_off_ratio
}
criterion_main!(telemetry);
