//! Scaling guard: the sharded engine must actually scale where the
//! host has the cores, and must never change results anywhere.
//!
//! Host-aware hard assertions (the bench fails, and with it the CI job
//! that runs it, when the parallel engine regresses):
//!
//! 1. Everywhere: every thread count produces results identical to the
//!    single-thread oracle on the 100×100 mesh run.
//! 2. ≥ 2 cores: the 2-thread run is at most 1.25× the 1-thread wall
//!    time — the same bound the CI scale-smoke job enforces on
//!    `exp_scaling` output.
//! 3. ≥ 8 cores: ≥ 4× speedup at 8 threads vs 1 thread on the
//!    100×100 mesh at 0.5 load — the PR's headline scaling claim.
//!
//! On hosts below a tier the corresponding bound is reported but not
//! asserted (a 1-core box cannot measure parallel speedup, only
//! sharding overhead). Criterion groups then track the per-run wall
//! time at fixed widths for trend history.

use criterion::{criterion_group, criterion_main, Criterion};
use fractanet::prelude::*;
use fractanet::System;
use std::time::Instant;

fn scaling_run(sys: &System, threads: usize) -> fractanet_sim::SimResult {
    let cfg = SimConfig {
        packet_flits: 8,
        buffer_depth: 4,
        max_cycles: 600,
        stall_threshold: 600,
        seed: 0x5CA1_AB1E,
        ..SimConfig::default()
    }
    .with_threads(threads);
    let wl = Workload::Bernoulli {
        injection_rate: 0.5,
        pattern: DstPattern::Uniform,
        until_cycle: 300,
    };
    sys.simulate(wl, cfg)
}

/// Wall time of the fastest of `reps` runs — min is the right
/// statistic for a noise-robust lower bound on both sides of a ratio.
fn min_wall(reps: usize, mut f: impl FnMut()) -> u128 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .min()
        .unwrap()
}

fn guard_scaling(c: &mut Criterion) {
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let sys = fractanet_bench::system("mesh:100x100");

    // Guard 1: identical results at every width, always.
    let oracle = scaling_run(&sys, 1);
    assert!(oracle.delivered > 0, "mesh run must deliver traffic");
    for threads in [2usize, 4, 8] {
        let sharded = scaling_run(&sys, threads);
        assert_eq!(sharded.generated, oracle.generated, "threads={threads}");
        assert_eq!(sharded.delivered, oracle.delivered, "threads={threads}");
        assert_eq!(sharded.cycles, oracle.cycles, "threads={threads}");
        assert_eq!(sharded.avg_latency, oracle.avg_latency, "threads={threads}");
    }

    // Guards 2 and 3: wall-time bounds, gated on the host's cores.
    let wall_1t = min_wall(2, || {
        scaling_run(&sys, 1);
    });
    let wall_2t = min_wall(2, || {
        scaling_run(&sys, 2);
    });
    let ratio_2t = wall_2t as f64 / wall_1t as f64;
    if cpus >= 2 {
        assert!(
            ratio_2t <= 1.25,
            "2-thread run is {ratio_2t:.2}x the 1-thread wall time (bound: 1.25x) on {cpus} cores"
        );
    } else {
        eprintln!("scaling: {cpus} core(s); 2-thread ratio {ratio_2t:.2}x reported, not asserted");
    }
    let wall_8t = min_wall(2, || {
        scaling_run(&sys, 8);
    });
    let speedup_8t = wall_1t as f64 / wall_8t as f64;
    if cpus >= 8 {
        assert!(
            speedup_8t >= 4.0,
            "8-thread speedup is {speedup_8t:.2}x (bound: >= 4x) on {cpus} cores"
        );
    } else {
        eprintln!(
            "scaling: {cpus} core(s); 8-thread speedup {speedup_8t:.2}x reported, not asserted"
        );
    }

    c.bench_function("scaling_mesh100_1t", |b| b.iter(|| scaling_run(&sys, 1)));
    c.bench_function("scaling_mesh100_8t", |b| b.iter(|| scaling_run(&sys, 8)));
}

criterion_group!(benches, guard_scaling);
criterion_main!(benches);
