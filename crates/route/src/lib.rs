//! # fractanet-route
//!
//! Routing for the `fractanet` workspace, in the ServerNet style: every
//! router holds a **destination-indexed table** mapping a destination
//! node ID to one output port ("these matches are actually done by
//! looking up entries in the routing table inside each router", §2.3).
//! Table routing is deterministic, so every node pair has a **fixed
//! path** — the property the paper needs for in-order delivery ("To
//! maintain in-order delivery, there must be a fixed path between each
//! pair of nodes", §3.3).
//!
//! * [`table::Routes`] — the canonical per-router destination tables:
//!   flat O(routers · destinations) storage, allocation-free walking
//!   via [`table::PathIter`], and route tracing.
//! * [`table::RouteSet`] — the derived dense view: all traced
//!   source→destination paths, for callers that want materialized
//!   per-pair slices (corrupted-fixture tests, dense baselines).
//! * [`paths::Paths`] — a unified per-pair view over either
//!   representation, so analyses never materialize a path matrix.
//! * Generators, one per topology family:
//!   [`direct`] (fully-connected clusters, Fig 3/4),
//!   [`dor`] (dimension-order mesh §3.1 and e-cube hypercube §3.2),
//!   [`ringroute`] (shortest / all-clockwise ring routing for the Fig 1
//!   deadlock demonstration),
//!   [`treeroute`] (binary tree / star, plus generic up*/down*),
//!   [`fattree`] (static up-link partitioning policies, Fig 6),
//!   [`fractal`] (the paper's depth-first fractahedral routing, §2.3).
//! * [`repair`] — self-healing: fault-avoiding up*/down* regeneration
//!   over the surviving subgraph, with graceful-degradation coverage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod direct;
pub mod dor;
pub mod fattree;
pub mod fractal;
pub mod genfracta;
pub mod paths;
pub mod repair;
pub mod ringroute;
pub mod table;
pub mod treeroute;

pub use paths::Paths;
pub use repair::{
    repair_routes, repair_tables, DeadMask, IncrementalRepair, RepairError, RepairReport,
    TableRepair,
};
pub use table::{PathIter, RouteError, RouteSet, Routes};
