//! # fractanet-route
//!
//! Routing for the `fractanet` workspace, in the ServerNet style: every
//! router holds a **destination-indexed table** mapping a destination
//! node ID to one output port ("these matches are actually done by
//! looking up entries in the routing table inside each router", §2.3).
//! Table routing is deterministic, so every node pair has a **fixed
//! path** — the property the paper needs for in-order delivery ("To
//! maintain in-order delivery, there must be a fixed path between each
//! pair of nodes", §3.3).
//!
//! * [`table::Routes`] — the per-router table representation plus route
//!   tracing.
//! * [`table::RouteSet`] — all traced source→destination paths, the
//!   input to contention analysis, channel-dependency graphs and the
//!   simulator. Built from tables or (for inherently source-dependent
//!   schemes like up*/down*) from per-pair generators.
//! * Generators, one per topology family:
//!   [`direct`] (fully-connected clusters, Fig 3/4),
//!   [`dor`] (dimension-order mesh §3.1 and e-cube hypercube §3.2),
//!   [`ringroute`] (shortest / all-clockwise ring routing for the Fig 1
//!   deadlock demonstration),
//!   [`treeroute`] (binary tree / star, plus generic up*/down*),
//!   [`fattree`] (static up-link partitioning policies, Fig 6),
//!   [`fractal`] (the paper's depth-first fractahedral routing, §2.3).
//! * [`repair`] — self-healing: fault-avoiding up*/down* regeneration
//!   over the surviving subgraph, with graceful-degradation coverage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod direct;
pub mod dor;
pub mod fattree;
pub mod fractal;
pub mod genfracta;
pub mod repair;
pub mod ringroute;
pub mod table;
pub mod treeroute;

pub use repair::{repair_routes, DeadMask, RepairError, RepairReport};
pub use table::{RouteError, RouteSet, Routes};
