//! Dimension-order routing for meshes and hypercubes (§2, §3.1–3.2).
//!
//! "With dimension-order routing, packets are routed first in one
//! direction, say the X direction, then the Y direction." Routing all
//! X hops before any Y hop removes every turn that could close a
//! channel-dependency cycle, so mesh DOR is deadlock-free; the e-cube
//! analogue (correct the lowest differing address bit first) is the
//! hypercube equivalent.

use crate::table::Routes;
use fractanet_graph::PortId;
use fractanet_topo::mesh::{PORT_EAST, PORT_NODE0, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use fractanet_topo::{Hypercube, Mesh2D, Topology, Torus2D};

/// X-then-Y dimension-order tables for a mesh.
pub fn mesh_xy_routes(m: &Mesh2D) -> Routes {
    Routes::from_fn(m.net(), m.end_nodes().len(), |router, dst| {
        let (x, y) = m.coords_of(router)?;
        let (dx, dy, k) = m.end_coords(dst);
        Some(if x < dx {
            PORT_EAST
        } else if x > dx {
            PORT_WEST
        } else if y < dy {
            PORT_NORTH
        } else if y > dy {
            PORT_SOUTH
        } else {
            PortId(PORT_NODE0.0 + k as u8)
        })
    })
}

/// Y-then-X dimension-order tables — the paper's Figure 1 labelling
/// routes rows first; provided for the ablation comparing the two
/// hotspot corners.
pub fn mesh_yx_routes(m: &Mesh2D) -> Routes {
    Routes::from_fn(m.net(), m.end_nodes().len(), |router, dst| {
        let (x, y) = m.coords_of(router)?;
        let (dx, dy, k) = m.end_coords(dst);
        Some(if y < dy {
            PORT_NORTH
        } else if y > dy {
            PORT_SOUTH
        } else if x < dx {
            PORT_EAST
        } else if x > dx {
            PORT_WEST
        } else {
            PortId(PORT_NODE0.0 + k as u8)
        })
    })
}

/// Minimal X-then-Y dimension-order tables for a 2-D torus. Each
/// dimension takes the shorter way around (ties go east / north, the
/// same tie-breaks as `fractanet_sim::dateline_torus_routes`, so table
/// replay reproduces those paths hop for hop). The greedy choice is
/// monotone along a path — once the minimal direction is picked at the
/// source it stays minimal after every step — so destination-indexed
/// tables and source-traced paths agree.
///
/// Note the wrap channels make this routing deadlock-*prone* on its
/// own (the Fig 1 cycle in each dimension); pair it with a dateline
/// virtual-channel discipline to break the cycles.
pub fn torus_xy_routes(t: &Torus2D) -> Routes {
    let (cols, rows) = (t.cols(), t.rows());
    Routes::from_fn(t.net(), t.end_nodes().len(), |router, dst| {
        let (x, y) = t.coords_of(router)?;
        let (dx, dy, k) = t.end_coords(dst);
        Some(if x != dx {
            let east = (dx + cols - x) % cols;
            let west = (x + cols - dx) % cols;
            if east <= west {
                PORT_EAST
            } else {
                PORT_WEST
            }
        } else if y != dy {
            let north = (dy + rows - y) % rows;
            let south = (y + rows - dy) % rows;
            if north <= south {
                PORT_NORTH
            } else {
                PORT_SOUTH
            }
        } else {
            PortId(PORT_NODE0.0 + k as u8)
        })
    })
}

/// E-cube tables for a hypercube: correct the lowest differing
/// dimension first (port `i` is the dimension-`i` link).
pub fn ecube_routes(h: &Hypercube) -> Routes {
    let dim = h.dim();
    let npr = h.nodes_per_router();
    Routes::from_fn(h.net(), h.end_nodes().len(), |router, dst| {
        let v = h.label_of(router)?;
        let dv = h.corner_of_addr(dst);
        let diff = v ^ dv;
        Some(if diff == 0 {
            PortId(dim as u8 + (dst % npr) as u8)
        } else {
            PortId(diff.trailing_zeros() as u8)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteSet;
    use fractanet_graph::bfs;

    #[test]
    fn mesh_xy_is_minimal() {
        let m = Mesh2D::new(4, 4, 2, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        for (s, d, p) in rs.pairs() {
            let bfsh = bfs::router_hops(m.net(), m.end_nodes()[s], m.end_nodes()[d]).unwrap();
            assert_eq!(p.len() as u32 - 1, bfsh, "{s}->{d} not minimal");
        }
    }

    #[test]
    fn mesh_xy_goes_x_first() {
        let m = Mesh2D::new(4, 4, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        // Route (0,0) -> (3,3): the intermediate routers must be
        // (1,0), (2,0), (3,0), (3,1), (3,2).
        let p = rs.path(0, 15);
        let routers: Vec<_> = p
            .iter()
            .skip(1)
            .map(|&c| m.coords_of(m.net().channel_src(c)).unwrap())
            .collect();
        assert_eq!(
            routers,
            vec![(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2), (3, 3)]
        );
    }

    #[test]
    fn mesh_yx_goes_y_first() {
        let m = Mesh2D::new(4, 4, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_yx_routes(&m)).unwrap();
        let p = rs.path(0, 15);
        let routers: Vec<_> = p
            .iter()
            .skip(1)
            .map(|&c| m.coords_of(m.net().channel_src(c)).unwrap())
            .collect();
        assert_eq!(
            routers,
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 3), (2, 3), (3, 3)]
        );
    }

    #[test]
    fn paper_6x6_max_routed_hops_is_11() {
        let m = Mesh2D::new(6, 6, 2, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &mesh_xy_routes(&m)).unwrap();
        assert_eq!(rs.max_router_hops(), 11);
    }

    #[test]
    fn torus_xy_is_minimal_and_wraps() {
        let t = Torus2D::new(4, 3, 1, 6).unwrap();
        let rs = RouteSet::from_table(t.net(), t.end_nodes(), &torus_xy_routes(&t)).unwrap();
        for (s, d, p) in rs.pairs() {
            let bfsh = bfs::router_hops(t.net(), t.end_nodes()[s], t.end_nodes()[d]).unwrap();
            assert_eq!(p.len() as u32 - 1, bfsh, "{s}->{d} not minimal");
        }
        // (0,0) -> (3,0) wraps west in one link hop rather than
        // walking three hops east: same route length as the direct
        // neighbour (0,0) -> (1,0).
        assert_eq!(rs.router_hops(0, 3), rs.router_hops(0, 1));
    }

    #[test]
    fn ecube_corrects_lowest_bit_first() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
        // 000 -> 111 passes 001 then 011.
        let p = rs.path(0, 7);
        let labels: Vec<_> = p
            .iter()
            .skip(1)
            .map(|&c| h.label_of(h.net().channel_src(c)).unwrap())
            .collect();
        assert_eq!(labels, vec![0b000, 0b001, 0b011, 0b111]);
    }

    #[test]
    fn ecube_is_minimal() {
        let h = Hypercube::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
        for (s, d, p) in rs.pairs() {
            let hamming = (h.corner_of_addr(s) ^ h.corner_of_addr(d)).count_ones() as usize;
            assert_eq!(p.len() - 1, hamming + 1, "{s}->{d}");
        }
    }

    #[test]
    fn ecube_multiple_nodes_per_corner() {
        let h = Hypercube::new(3, 3, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &ecube_routes(&h)).unwrap();
        assert!(rs.check_simple().is_ok());
        // Same-corner neighbours are one hop apart.
        assert_eq!(rs.router_hops(0, 1), 1);
    }
}
