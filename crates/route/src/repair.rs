//! Self-healing route regeneration: fault-avoiding up*/down* routing
//! over the surviving subgraph, emitted as destination tables.
//!
//! When links or routers die permanently, the static tables traced at
//! boot keep steering packets into the hole. This module regenerates
//! destination-indexed [`Routes`] that avoid every dead component: the
//! surviving subgraph is decomposed into connected components, each
//! component gets a BFS level order from its lowest-index live node,
//! and every table column steers `up* down*` against that order (the
//! Autonet discipline `treeroute` uses for healthy networks) —
//! deadlock-free by construction, because up channels strictly
//! decrease the `(level, node index)` order so no dependency cycle can
//! close.
//!
//! Destination tables know only the destination, not how a packet
//! arrived, so a column's entries must be **suffix-closed**: a router
//! that descends must hand the packet to a router that also descends,
//! or `up* down*` legality breaks mid-path. Each column therefore
//! follows a descend-first discipline: a router with any all-down path
//! to the destination descends along the shortest one (adjacency order
//! breaks ties), and every other router climbs toward its cheapest
//! descent point (`cost(v) = 1 + min over live up channels v→u of
//! cost(u)`, grounded at `cost = dist_dn` on the descending set). The
//! down set is closed under its own successors, so traced paths are
//! `up*` then `down*` by construction and the deadlock-freedom
//! argument carries over unchanged. Because only the columns a fault
//! actually touches change, [`IncrementalRepair`] patches tables
//! column by column instead of regenerating the whole set.
//!
//! Pairs split across components are left with **missing entries**
//! (tracing them reports the hole); the [`RepairReport`] quotes the
//! surviving-pair coverage so callers can report graceful degradation
//! when full repair is impossible.

use crate::table::{RouteSet, Routes};
use fractanet_graph::{ChannelId, LinkId, Network, NodeId};
use std::collections::VecDeque;

/// Which components are dead, in plain index-mask form (so the sim and
/// ServerNet fault layers can both feed it without depending on each
/// other's fault types).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeadMask {
    link_dead: Vec<bool>,
    node_dead: Vec<bool>,
}

impl DeadMask {
    /// All-alive mask for `net`.
    pub fn new(net: &Network) -> Self {
        DeadMask {
            link_dead: vec![false; net.link_count()],
            node_dead: vec![false; net.node_count()],
        }
    }

    /// Mask with the given dead links and routers.
    pub fn from_dead(net: &Network, links: &[LinkId], routers: &[NodeId]) -> Self {
        let mut m = DeadMask::new(net);
        for &l in links {
            m.kill_link(l);
        }
        for &r in routers {
            m.kill_router(r);
        }
        m
    }

    /// Marks a link dead.
    pub fn kill_link(&mut self, link: LinkId) {
        self.link_dead[link.index()] = true;
    }

    /// Marks a router (or end node) dead.
    pub fn kill_router(&mut self, node: NodeId) {
        self.node_dead[node.index()] = true;
    }

    /// Whether the link survives.
    pub fn link_ok(&self, link: LinkId) -> bool {
        !self.link_dead[link.index()]
    }

    /// Whether the node survives.
    pub fn node_ok(&self, node: NodeId) -> bool {
        !self.node_dead[node.index()]
    }

    /// Whether a channel survives: its link and both endpoints do.
    pub fn channel_ok(&self, net: &Network, ch: ChannelId) -> bool {
        self.link_ok(ch.link())
            && self.node_ok(net.channel_src(ch))
            && self.node_ok(net.channel_dst(ch))
    }

    /// Count of dead links plus dead nodes.
    pub fn len(&self) -> usize {
        self.link_dead.iter().filter(|&&d| d).count()
            + self.node_dead.iter().filter(|&&d| d).count()
    }

    /// Whether nothing is dead.
    pub fn is_empty(&self) -> bool {
        self.link_dead.iter().all(|&d| !d) && self.node_dead.iter().all(|&d| !d)
    }
}

/// Internal-invariant failures during route regeneration.
///
/// Both variants mean an up*/down* meet-point reconstruction lost its
/// breadcrumb trail. The table builder cannot hit them (its columns
/// are built forward, not reconstructed), but the error type remains
/// part of the repair API so callers keep one failure channel for all
/// regeneration strategies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// Walking the up phase back from the meet router reached `at`
    /// without a recorded predecessor channel.
    MissingUpPredecessor {
        /// Router where the chain broke.
        at: NodeId,
        /// Source end node of the pair being routed.
        src: NodeId,
        /// Destination end node of the pair being routed.
        dst: NodeId,
    },
    /// Walking the down phase forward from the meet router reached
    /// `at` without a recorded successor channel.
    MissingDownSuccessor {
        /// Router where the chain broke.
        at: NodeId,
        /// Source end node of the pair being routed.
        src: NodeId,
        /// Destination end node of the pair being routed.
        dst: NodeId,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::MissingUpPredecessor { at, src, dst } => write!(
                f,
                "repair invariant broken: no up-phase predecessor at node {} \
                 while reconstructing {} -> {}",
                at.index(),
                src.index(),
                dst.index()
            ),
            RepairError::MissingDownSuccessor { at, src, dst } => write!(
                f,
                "repair invariant broken: no down-phase successor at node {} \
                 while reconstructing {} -> {}",
                at.index(),
                src.index(),
                dst.index()
            ),
        }
    }
}

impl std::error::Error for RepairError {}

/// Outcome of a table regeneration.
#[derive(Clone, Debug)]
pub struct TableRepair {
    /// The regenerated destination tables. Severed destinations have
    /// missing entries — tracing them reports the hole.
    pub tables: Routes,
    /// Ordered pairs (`src != dst`) that still have a path.
    pub connected_pairs: usize,
    /// All ordered pairs.
    pub total_pairs: usize,
}

impl TableRepair {
    /// Fraction of ordered pairs still connected (1.0 = full repair).
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.connected_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Whether every pair still has a route.
    pub fn is_full(&self) -> bool {
        self.connected_pairs == self.total_pairs
    }
}

/// Outcome of a route regeneration, with the dense traced view for
/// callers that still consume per-pair paths.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// The regenerated paths, traced from [`RepairReport::tables`].
    /// Pairs with no surviving route have empty paths — callers must
    /// treat those as unreachable.
    pub routes: RouteSet,
    /// The canonical regenerated destination tables.
    pub tables: Routes,
    /// Ordered pairs (`src != dst`) that still have a path.
    pub connected_pairs: usize,
    /// All ordered pairs.
    pub total_pairs: usize,
}

impl RepairReport {
    /// Fraction of ordered pairs still connected (1.0 = full repair).
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.connected_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Whether every pair still has a route.
    pub fn is_full(&self) -> bool {
        self.connected_pairs == self.total_pairs
    }
}

/// Per-node (component, level) order over the surviving subgraph.
struct SurvivorOrder {
    comp: Vec<u32>,
    level: Vec<u32>,
}

const UNSEEN: u32 = u32::MAX;

impl SurvivorOrder {
    fn new(net: &Network, mask: &DeadMask) -> Self {
        let n = net.node_count();
        let mut comp = vec![UNSEEN; n];
        let mut level = vec![UNSEEN; n];
        let mut next = 0u32;
        // Components are rooted at their lowest-index live node, which
        // makes the order (and hence the routes) deterministic.
        for root in net.nodes() {
            if comp[root.index()] != UNSEEN || !mask.node_ok(root) {
                continue;
            }
            comp[root.index()] = next;
            level[root.index()] = 0;
            let mut q = VecDeque::from([root]);
            while let Some(v) = q.pop_front() {
                for &(ch, w) in net.channels_from(v) {
                    if mask.channel_ok(net, ch) && comp[w.index()] == UNSEEN {
                        comp[w.index()] = next;
                        level[w.index()] = level[v.index()] + 1;
                        q.push_back(w);
                    }
                }
            }
            next += 1;
        }
        SurvivorOrder { comp, level }
    }

    /// Whether `ch` is an **up** channel: it strictly decreases the
    /// `(level, node index)` order. (Only the test oracle still walks
    /// channels through the order; the builder works off `is_up_by`.)
    #[cfg(test)]
    fn is_up(&self, net: &Network, ch: ChannelId) -> bool {
        is_up_by(&self.level, net, ch)
    }
}

/// Whether `ch` strictly decreases the `(level, node index)` order.
pub(crate) fn is_up_by(level: &[u32], net: &Network, ch: ChannelId) -> bool {
    let s = net.channel_src(ch);
    let d = net.channel_dst(ch);
    let (ls, ld) = (level[s.index()], level[d.index()]);
    ld < ls || (ld == ls && d.index() < s.index())
}

/// Routers of the (surviving) subgraph in ascending `(level, index)`
/// order — the processing order under which every up channel points at
/// an already-processed router.
fn ranked_routers(net: &Network, level: &[u32]) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = net
        .routers()
        .filter(|r| level[r.index()] != UNSEEN)
        .collect();
    v.sort_unstable_by_key(|r| (level[r.index()], r.index()));
    v
}

/// Reusable per-column working memory.
struct ColumnScratch {
    dist_dn: Vec<u32>,
    cost: Vec<u32>,
    q: VecDeque<NodeId>,
}

impl ColumnScratch {
    fn new(net: &Network) -> Self {
        ColumnScratch {
            dist_dn: vec![UNSEEN; net.node_count()],
            cost: vec![UNSEEN; net.node_count()],
            q: VecDeque::new(),
        }
    }
}

/// Rebuilds destination `d`'s table column over the surviving
/// subgraph; returns the number of sources that can reach it.
///
/// Every choice is order-independent (arg-mins over adjacency order,
/// never BFS discovery order), so a column's entries are a pure
/// function of the survivor order and the live channel set — the
/// property [`IncrementalRepair`] relies on to skip untouched columns.
#[allow(clippy::too_many_arguments)]
fn build_column(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
    comp: &[u32],
    level: &[u32],
    by_rank: &[NodeId],
    d: usize,
    routes: &mut Routes,
    scratch: &mut ColumnScratch,
) -> usize {
    routes.clear_column(d);
    let dst_end = ends[d];
    if !mask.node_ok(dst_end) {
        return 0;
    }
    let Some(&(eject_rev, dst_router)) = net.channels_from(dst_end).first() else {
        return 0;
    };
    let eject = eject_rev.reverse();
    if !mask.channel_ok(net, eject) || level[dst_router.index()] == UNSEEN {
        return 0;
    }

    // Down distances: reverse BFS from the attach router over
    // surviving down channels (routers only).
    let dist_dn = &mut scratch.dist_dn;
    for x in dist_dn.iter_mut() {
        *x = UNSEEN;
    }
    dist_dn[dst_router.index()] = 0;
    scratch.q.clear();
    scratch.q.push_back(dst_router);
    while let Some(v) = scratch.q.pop_front() {
        for &(out, w) in net.channels_from(v) {
            let incoming = out.reverse(); // w -> v
            if net.is_router(w)
                && mask.channel_ok(net, incoming)
                && !is_up_by(level, net, incoming)
                && dist_dn[w.index()] == UNSEEN
            {
                dist_dn[w.index()] = dist_dn[v.index()] + 1;
                scratch.q.push_back(w);
            }
        }
    }

    // Entry pass in ascending (level, index) order, so every up
    // neighbor is already costed. Routers on the descending set (any
    // all-down path to the destination) must descend — that keeps the
    // set suffix-closed and every traced path up* then down*.
    let cost = &mut scratch.cost;
    for x in cost.iter_mut() {
        *x = UNSEEN;
    }
    let dst_comp = comp[dst_router.index()];
    for &v in by_rank {
        if comp[v.index()] != dst_comp {
            continue;
        }
        let vi = v.index();
        if v == dst_router {
            cost[vi] = 0;
            routes.set(v, d, net.channel_src_port(eject));
            continue;
        }
        if dist_dn[vi] != UNSEEN {
            // Descend along the first surviving down channel on a
            // shortest all-down path (adjacency order is the
            // tie-break). The successor's down distance is one less,
            // so it descends too.
            cost[vi] = dist_dn[vi];
            for &(ch, w) in net.channels_from(v) {
                if net.is_router(w)
                    && mask.channel_ok(net, ch)
                    && !is_up_by(level, net, ch)
                    && dist_dn[w.index()] != UNSEEN
                    && dist_dn[w.index()] + 1 == dist_dn[vi]
                {
                    routes.set(v, d, net.channel_src_port(ch));
                    break;
                }
            }
        } else {
            // Climb toward the cheapest descent point; the earliest
            // up channel in adjacency order breaks ties.
            let mut best: Option<(u32, ChannelId)> = None;
            for &(ch, w) in net.channels_from(v) {
                if net.is_router(w)
                    && mask.channel_ok(net, ch)
                    && is_up_by(level, net, ch)
                    && cost[w.index()] != UNSEEN
                    && best.is_none_or(|(b, _)| cost[w.index()] + 1 < b)
                {
                    best = Some((cost[w.index()] + 1, ch));
                }
            }
            if let Some((c, ch)) = best {
                cost[vi] = c;
                routes.set(v, d, net.channel_src_port(ch));
            }
        }
    }

    // Sources that can reach this destination.
    let mut connected = 0;
    for (s, &src_end) in ends.iter().enumerate() {
        if s == d || !mask.node_ok(src_end) {
            continue;
        }
        let Some(&(inject, src_router)) = net.channels_from(src_end).first() else {
            continue;
        };
        if mask.channel_ok(net, inject) && cost[src_router.index()] != UNSEEN {
            connected += 1;
        }
    }
    connected
}

/// Builds a full destination-table set over the surviving subgraph
/// described by `(comp, level)`. Returns the tables and, per
/// destination, how many sources reach it.
pub(crate) fn updown_tables_for(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
    comp: &[u32],
    level: &[u32],
) -> (Routes, Vec<usize>) {
    let n = ends.len();
    let mut routes = Routes::new(net, n);
    let by_rank = ranked_routers(net, level);
    let mut scratch = ColumnScratch::new(net);
    let mut col_connected = vec![0usize; n];
    for (d, c) in col_connected.iter_mut().enumerate() {
        *c = build_column(
            net,
            ends,
            mask,
            comp,
            level,
            &by_rank,
            d,
            &mut routes,
            &mut scratch,
        );
    }
    (routes, col_connected)
}

/// Regenerates destination tables avoiding everything `mask` marks
/// dead. See the [module docs](self) for the discipline and its
/// deadlock-freedom argument.
pub fn repair_tables(net: &Network, ends: &[NodeId], mask: &DeadMask) -> TableRepair {
    let order = SurvivorOrder::new(net, mask);
    let (tables, col_connected) = updown_tables_for(net, ends, mask, &order.comp, &order.level);
    let n = ends.len();
    TableRepair {
        tables,
        connected_pairs: col_connected.iter().sum(),
        total_pairs: n * n.saturating_sub(1),
    }
}

/// Regenerates a complete route set avoiding everything `mask` marks
/// dead — the dense view of [`repair_tables`], traced from the
/// regenerated tables so the two representations agree path for path.
pub fn repair_routes(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
) -> Result<RepairReport, RepairError> {
    let rep = repair_tables(net, ends, mask);
    let routes = trace_surviving(net, ends, mask, &rep.tables);
    Ok(RepairReport {
        routes,
        tables: rep.tables,
        connected_pairs: rep.connected_pairs,
        total_pairs: rep.total_pairs,
    })
}

/// Traces repaired tables into a dense route set, leaving every pair
/// `mask` severs empty. Tables only know surviving routers' entries,
/// so a pair whose own attach channel died would otherwise trace
/// "successfully" across the dead channel — the mask check keeps the
/// dense view honest about unreachable pairs.
pub fn trace_surviving(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
    tables: &Routes,
) -> RouteSet {
    let mut scratch: Vec<ChannelId> = Vec::new();
    RouteSet::from_pairs(ends.len(), |s, d| {
        if s == d || !mask.node_ok(ends[s]) || !mask.node_ok(ends[d]) {
            return Vec::new();
        }
        let (Some(&(inject, _)), Some(&(eject_rev, _))) = (
            net.channels_from(ends[s]).first(),
            net.channels_from(ends[d]).first(),
        ) else {
            return Vec::new();
        };
        if !mask.channel_ok(net, inject) || !mask.channel_ok(net, eject_rev.reverse()) {
            return Vec::new();
        }
        match tables.trace_into(net, ends, s, d, &mut scratch) {
            Ok(()) => scratch.clone(),
            Err(_) => Vec::new(),
        }
    })
}

/// Incremental table repair: keeps the last regenerated tables and, on
/// each new fault set, rebuilds only the **dirty columns** — those
/// whose entries reference a channel the fault killed — as long as the
/// survivor order is unchanged. (A changed order re-orients up/down
/// globally, so everything is rebuilt in that case; node deaths and
/// disconnections always change it.)
///
/// Column entries are a pure function of `(survivor order, live
/// channel set)` with order-independent tie-breaks, and any cost a
/// fault can change is witnessed by a dead channel in some referenced
/// entry of the same column, so the patched tables are identical to a
/// from-scratch [`repair_tables`] run — `incremental_matches_full` in
/// the tests and the workspace proptests hold it to that.
///
/// The dirty-column witness only works for masks that **grow**: a
/// *revived* component (a brownout's up edge) can offer shorter paths
/// to columns whose entries are all still alive, so nothing marks them
/// dirty. Revival is therefore detected against the previous mask and
/// triggers a full rebuild — tables after the brownout clears are
/// bit-identical to a never-faulted run, not left on their detours.
pub struct IncrementalRepair<'a> {
    net: &'a Network,
    ends: &'a [NodeId],
    state: Option<IncState>,
    last_rebuilt: usize,
}

struct IncState {
    mask: DeadMask,
    comp: Vec<u32>,
    level: Vec<u32>,
    by_rank: Vec<NodeId>,
    tables: Routes,
    col_connected: Vec<usize>,
}

/// Whether anything dead in `prev` is alive again in `now`.
fn mask_revives(prev: &DeadMask, now: &DeadMask) -> bool {
    let link = prev
        .link_dead
        .iter()
        .zip(&now.link_dead)
        .any(|(&was, &is)| was && !is);
    let node = prev
        .node_dead
        .iter()
        .zip(&now.node_dead)
        .any(|(&was, &is)| was && !is);
    link || node
}

impl<'a> IncrementalRepair<'a> {
    /// Creates an incremental repairer with no tables yet (the first
    /// [`IncrementalRepair::repair`] call builds them in full).
    pub fn new(net: &'a Network, ends: &'a [NodeId]) -> Self {
        IncrementalRepair {
            net,
            ends,
            state: None,
            last_rebuilt: 0,
        }
    }

    /// How many table columns the last [`IncrementalRepair::repair`]
    /// call actually rebuilt.
    pub fn last_rebuilt_columns(&self) -> usize {
        self.last_rebuilt
    }

    /// Repairs against the cumulative fault mask, patching only dirty
    /// columns when possible.
    pub fn repair(&mut self, mask: &DeadMask) -> TableRepair {
        let net = self.net;
        let ends = self.ends;
        let n = ends.len();
        let order = SurvivorOrder::new(net, mask);
        let reusable = self.state.as_ref().is_some_and(|st| {
            st.comp == order.comp && st.level == order.level && !mask_revives(&st.mask, mask)
        });
        if reusable {
            let st = self.state.as_mut().expect("checked above");
            st.mask = mask.clone();
            let mut scratch = ColumnScratch::new(net);
            let mut rebuilt = 0;
            for d in 0..n {
                if column_dirty(net, mask, &st.tables, d) {
                    st.col_connected[d] = build_column(
                        net,
                        ends,
                        mask,
                        &st.comp,
                        &st.level,
                        &st.by_rank,
                        d,
                        &mut st.tables,
                        &mut scratch,
                    );
                    rebuilt += 1;
                }
            }
            self.last_rebuilt = rebuilt;
        } else {
            let (tables, col_connected) =
                updown_tables_for(net, ends, mask, &order.comp, &order.level);
            let by_rank = ranked_routers(net, &order.level);
            self.state = Some(IncState {
                mask: mask.clone(),
                comp: order.comp,
                level: order.level,
                by_rank,
                tables,
                col_connected,
            });
            self.last_rebuilt = n;
        }
        let st = self.state.as_ref().expect("state just ensured");
        TableRepair {
            tables: st.tables.clone(),
            connected_pairs: st.col_connected.iter().sum(),
            total_pairs: n * n.saturating_sub(1),
        }
    }
}

/// Whether destination `d`'s column references any channel that
/// `mask` now marks dead.
fn column_dirty(net: &Network, mask: &DeadMask, tables: &Routes, d: usize) -> bool {
    for r in net.routers() {
        if let Some(port) = tables.get(r, d) {
            match net.channel_out(r, port) {
                Some(ch) if mask.channel_ok(net, ch) => {}
                _ => return true,
            }
        }
    }
    false
}

/// Shortest `up* down*` path between two end nodes over surviving
/// channels only — the legacy per-pair meet construction, kept as the
/// connectivity oracle for the table builder. `Ok(None)` when the
/// pair is severed, `Err` when the reconstruction invariants are
/// violated.
#[cfg(test)]
fn survivor_updown_path(
    net: &Network,
    mask: &DeadMask,
    order: &SurvivorOrder,
    src: NodeId,
    dst: NodeId,
) -> Result<Option<Vec<ChannelId>>, RepairError> {
    if !mask.node_ok(src) || !mask.node_ok(dst) {
        return Ok(None);
    }
    let (Some(&(inject, src_router)), Some(&(eject_rev, dst_router))) = (
        net.channels_from(src).first(),
        net.channels_from(dst).first(),
    ) else {
        return Ok(None);
    };
    let eject = eject_rev.reverse();
    if !mask.channel_ok(net, inject) || !mask.channel_ok(net, eject) {
        return Ok(None);
    }
    if order.comp[src_router.index()] != order.comp[dst_router.index()] {
        return Ok(None);
    }
    if src_router == dst_router {
        return Ok(Some(vec![inject, eject]));
    }

    // Up-phase BFS from src_router over surviving up channels.
    let mut dist_up = vec![UNSEEN; net.node_count()];
    let mut prev_up: Vec<Option<ChannelId>> = vec![None; net.node_count()];
    dist_up[src_router.index()] = 0;
    let mut q = VecDeque::from([src_router]);
    while let Some(v) = q.pop_front() {
        for &(ch, w) in net.channels_from(v) {
            if net.is_router(w)
                && mask.channel_ok(net, ch)
                && order.is_up(net, ch)
                && dist_up[w.index()] == UNSEEN
            {
                dist_up[w.index()] = dist_up[v.index()] + 1;
                prev_up[w.index()] = Some(ch);
                q.push_back(w);
            }
        }
    }
    // Down-phase reverse BFS from dst_router over surviving down
    // channels.
    let mut dist_dn = vec![UNSEEN; net.node_count()];
    let mut next_dn: Vec<Option<ChannelId>> = vec![None; net.node_count()];
    dist_dn[dst_router.index()] = 0;
    let mut q = VecDeque::from([dst_router]);
    while let Some(v) = q.pop_front() {
        for &(out, w) in net.channels_from(v) {
            let incoming = out.reverse(); // w -> v
            if net.is_router(w)
                && mask.channel_ok(net, incoming)
                && !order.is_up(net, incoming)
                && dist_dn[w.index()] == UNSEEN
            {
                dist_dn[w.index()] = dist_dn[v.index()] + 1;
                next_dn[w.index()] = Some(incoming);
                q.push_back(w);
            }
        }
    }
    // Meet at the router minimizing total length; lowest index breaks
    // ties deterministically.
    let mut best: Option<(u32, usize)> = None;
    for v in net.nodes() {
        let (u, dn) = (dist_up[v.index()], dist_dn[v.index()]);
        if u != UNSEEN && dn != UNSEEN {
            let key = (u + dn, v.index());
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    let Some((_, meet)) = best else {
        return Ok(None);
    };
    // Reconstruct: up segment backwards from meet, then down segment
    // forwards.
    let mut path = vec![inject];
    let mut seg = Vec::new();
    let mut cur = NodeId(meet as u32);
    while cur != src_router {
        let ch =
            prev_up[cur.index()].ok_or(RepairError::MissingUpPredecessor { at: cur, src, dst })?;
        seg.push(ch);
        cur = net.channel_src(ch);
    }
    seg.reverse();
    path.extend(seg);
    let mut cur = NodeId(meet as u32);
    while cur != dst_router {
        let ch =
            next_dn[cur.index()].ok_or(RepairError::MissingDownSuccessor { at: cur, src, dst })?;
        path.push(ch);
        cur = net.channel_dst(ch);
    }
    path.push(eject);
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{Fractahedron, Hypercube, Ring, Topology, Variant};

    fn check_avoids(net: &Network, mask: &DeadMask, report: &RepairReport) {
        for (_, _, p) in report.routes.pairs() {
            for &ch in p {
                assert!(
                    mask.channel_ok(net, ch),
                    "route crosses dead channel {ch:?}"
                );
            }
        }
    }

    fn first_router_link(net: &Network) -> LinkId {
        net.links()
            .find(|&l| {
                let info = net.link(l);
                net.is_router(info.a.0) && net.is_router(info.b.0)
            })
            .unwrap()
    }

    #[test]
    fn no_faults_full_coverage() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rep = repair_routes(h.net(), h.end_nodes(), &DeadMask::new(h.net())).unwrap();
        assert!(rep.is_full());
        assert_eq!(rep.coverage(), 1.0);
        assert!(rep.routes.check_simple().is_ok());
    }

    #[test]
    fn ring_survives_one_link_cut() {
        // A ring is 2-edge-connected between routers: one dead cable
        // reroutes the long way around.
        let r = Ring::new(5, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        mask.kill_link(first_router_link(r.net()));
        let rep = repair_routes(r.net(), r.end_nodes(), &mask).unwrap();
        assert!(rep.is_full(), "coverage {}", rep.coverage());
        check_avoids(r.net(), &mask, &rep);
    }

    #[test]
    fn dead_router_degrades_gracefully() {
        let r = Ring::new(4, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        // Kill the router end 0 attaches to: 0 is severed, others
        // reroute around the hole.
        let router0 = r.net().channels_from(r.end_nodes()[0]).first().unwrap().1;
        mask.kill_router(router0);
        let rep = repair_routes(r.net(), r.end_nodes(), &mask).unwrap();
        assert!(!rep.is_full());
        // 3 surviving ends remain mutually connected: 3 * 2 = 6 of 12.
        assert_eq!(rep.connected_pairs, 6);
        check_avoids(r.net(), &mask, &rep);
        // Severed pairs really are empty.
        assert!(rep.routes.path(0, 1).is_empty());
        assert!(rep.routes.path(1, 0).is_empty());
        assert!(!rep.routes.path(1, 2).is_empty());
    }

    #[test]
    fn fractahedron_repair_is_deterministic() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let mut mask = DeadMask::new(f.net());
        mask.kill_link(first_router_link(f.net()));
        let a = repair_routes(f.net(), f.end_nodes(), &mask).unwrap();
        let b = repair_routes(f.net(), f.end_nodes(), &mask).unwrap();
        for (s, d, p) in a.routes.pairs() {
            assert_eq!(p, b.routes.path(s, d), "{s}->{d}");
        }
        assert_eq!(a.tables, b.tables);
        assert!(a.is_full());
        check_avoids(f.net(), &mask, &a);
    }

    #[test]
    fn repaired_paths_are_up_then_down() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let mut mask = DeadMask::new(h.net());
        mask.kill_link(first_router_link(h.net()));
        let order = SurvivorOrder::new(h.net(), &mask);
        let rep = repair_routes(h.net(), h.end_nodes(), &mask).unwrap();
        assert!(rep.is_full());
        for (s, d, p) in rep.routes.pairs() {
            let interior = &p[1..p.len() - 1];
            let mut descending = false;
            for &ch in interior {
                if order.is_up(h.net(), ch) {
                    assert!(!descending, "{s}->{d} turned back up");
                } else {
                    descending = true;
                }
            }
        }
    }

    #[test]
    fn table_connectivity_matches_legacy_oracle() {
        // The column builder must connect exactly the pairs the old
        // per-pair meet construction could connect.
        for kill_router in [false, true] {
            let h = Hypercube::new(3, 1, 6).unwrap();
            let mut mask = DeadMask::new(h.net());
            mask.kill_link(first_router_link(h.net()));
            if kill_router {
                let r = h.net().channels_from(h.end_nodes()[2]).first().unwrap().1;
                mask.kill_router(r);
            }
            let order = SurvivorOrder::new(h.net(), &mask);
            let rep = repair_routes(h.net(), h.end_nodes(), &mask).unwrap();
            let ends = h.end_nodes();
            let mut oracle_connected = 0;
            for s in 0..ends.len() {
                for d in 0..ends.len() {
                    if s == d {
                        continue;
                    }
                    let legacy =
                        survivor_updown_path(h.net(), &mask, &order, ends[s], ends[d]).unwrap();
                    assert_eq!(
                        legacy.is_some(),
                        !rep.routes.path(s, d).is_empty(),
                        "{s}->{d} (kill_router={kill_router})"
                    );
                    if legacy.is_some() {
                        oracle_connected += 1;
                    }
                }
            }
            assert_eq!(rep.connected_pairs, oracle_connected);
        }
    }

    #[test]
    fn incremental_matches_full() {
        // Killing router links one at a time, the dirty-column patcher
        // must land on byte-identical tables to a from-scratch rebuild.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let links: Vec<LinkId> = h
            .net()
            .links()
            .filter(|&l| {
                let info = h.net().link(l);
                h.net().is_router(info.a.0) && h.net().is_router(info.b.0)
            })
            .take(4)
            .collect();
        let mut inc = IncrementalRepair::new(h.net(), h.end_nodes());
        let mut mask = DeadMask::new(h.net());
        let first = inc.repair(&mask);
        assert_eq!(
            first.tables,
            repair_tables(h.net(), h.end_nodes(), &mask).tables
        );
        for &l in &links {
            mask.kill_link(l);
            let patched = inc.repair(&mask);
            let full = repair_tables(h.net(), h.end_nodes(), &mask);
            assert_eq!(patched.tables, full.tables, "after killing {l:?}");
            assert_eq!(patched.connected_pairs, full.connected_pairs);
        }
    }

    #[test]
    fn incremental_repair_skips_untouched_columns() {
        // Find a link kill that leaves the survivor order intact; the
        // patcher must then rebuild only the columns that referenced
        // the dead link instead of all of them.
        let h = Hypercube::new(4, 1, 8).unwrap();
        let healthy = SurvivorOrder::new(h.net(), &DeadMask::new(h.net()));
        let victim = h
            .net()
            .links()
            .filter(|&l| {
                let info = h.net().link(l);
                h.net().is_router(info.a.0) && h.net().is_router(info.b.0)
            })
            .find(|&l| {
                let mut m = DeadMask::new(h.net());
                m.kill_link(l);
                let o = SurvivorOrder::new(h.net(), &m);
                o.comp == healthy.comp && o.level == healthy.level
            })
            .expect("a hypercube has order-preserving link kills");
        let mut inc = IncrementalRepair::new(h.net(), h.end_nodes());
        let n = h.end_nodes().len();
        inc.repair(&DeadMask::new(h.net()));
        assert_eq!(inc.last_rebuilt_columns(), n);
        let mut mask = DeadMask::new(h.net());
        mask.kill_link(victim);
        inc.repair(&mask);
        assert!(
            inc.last_rebuilt_columns() < n,
            "rebuilt {} of {n} columns",
            inc.last_rebuilt_columns()
        );
    }

    #[test]
    fn incremental_repair_rebuilds_after_revival() {
        // A brownout shrinks the mask back: the detoured columns
        // reference only live channels, so the dirty witness alone
        // would leave them on the detour. Revival must force a full
        // rebuild that matches a from-scratch run on the shrunk mask.
        let h = Hypercube::new(3, 1, 6).unwrap();
        let victim = h
            .net()
            .links()
            .find(|&l| {
                let info = h.net().link(l);
                h.net().is_router(info.a.0) && h.net().is_router(info.b.0)
            })
            .unwrap();
        let empty = DeadMask::new(h.net());
        let pristine = repair_tables(h.net(), h.end_nodes(), &empty).tables;
        let mut inc = IncrementalRepair::new(h.net(), h.end_nodes());
        let mut down = DeadMask::new(h.net());
        down.kill_link(victim);
        let detour = inc.repair(&down);
        assert_ne!(detour.tables, pristine, "down phase must detour");
        let healed = inc.repair(&empty);
        assert_eq!(inc.last_rebuilt_columns(), h.end_nodes().len());
        assert_eq!(healed.tables, pristine, "revival must restore pristine");
    }
}
