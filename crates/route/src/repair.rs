//! Self-healing route regeneration: fault-avoiding up*/down* routing
//! over the surviving subgraph.
//!
//! When links or routers die permanently, the static tables traced at
//! boot keep steering packets into the hole. This module regenerates a
//! complete [`RouteSet`] that avoids every dead component: the
//! surviving subgraph is decomposed into connected components, each
//! component gets a BFS level order from its lowest-index live router,
//! and every pair routes `up* down*` against that order (the Autonet
//! discipline `treeroute` uses for healthy networks) — deadlock-free
//! by construction, because up channels strictly decrease the
//! `(level, node index)` order so no dependency cycle can close.
//!
//! Pairs split across components are left with **empty paths**; the
//! [`RepairReport`] quotes the surviving-pair coverage so callers can
//! report graceful degradation when full repair is impossible.

use crate::table::RouteSet;
use fractanet_graph::{ChannelId, LinkId, Network, NodeId};
use std::collections::VecDeque;

/// Which components are dead, in plain index-mask form (so the sim and
/// ServerNet fault layers can both feed it without depending on each
/// other's fault types).
#[derive(Clone, Debug, Default)]
pub struct DeadMask {
    link_dead: Vec<bool>,
    node_dead: Vec<bool>,
}

impl DeadMask {
    /// All-alive mask for `net`.
    pub fn new(net: &Network) -> Self {
        DeadMask {
            link_dead: vec![false; net.link_count()],
            node_dead: vec![false; net.node_count()],
        }
    }

    /// Mask with the given dead links and routers.
    pub fn from_dead(net: &Network, links: &[LinkId], routers: &[NodeId]) -> Self {
        let mut m = DeadMask::new(net);
        for &l in links {
            m.kill_link(l);
        }
        for &r in routers {
            m.kill_router(r);
        }
        m
    }

    /// Marks a link dead.
    pub fn kill_link(&mut self, link: LinkId) {
        self.link_dead[link.index()] = true;
    }

    /// Marks a router (or end node) dead.
    pub fn kill_router(&mut self, node: NodeId) {
        self.node_dead[node.index()] = true;
    }

    /// Whether the link survives.
    pub fn link_ok(&self, link: LinkId) -> bool {
        !self.link_dead[link.index()]
    }

    /// Whether the node survives.
    pub fn node_ok(&self, node: NodeId) -> bool {
        !self.node_dead[node.index()]
    }

    /// Whether a channel survives: its link and both endpoints do.
    pub fn channel_ok(&self, net: &Network, ch: ChannelId) -> bool {
        self.link_ok(ch.link())
            && self.node_ok(net.channel_src(ch))
            && self.node_ok(net.channel_dst(ch))
    }

    /// Count of dead links plus dead nodes.
    pub fn len(&self) -> usize {
        self.link_dead.iter().filter(|&&d| d).count()
            + self.node_dead.iter().filter(|&&d| d).count()
    }

    /// Whether nothing is dead.
    pub fn is_empty(&self) -> bool {
        self.link_dead.iter().all(|&d| !d) && self.node_dead.iter().all(|&d| !d)
    }
}

/// Internal-invariant failures during route regeneration.
///
/// Both variants mean the up*/down* meet-point reconstruction lost its
/// breadcrumb trail — previously a panic via `expect`, now surfaced so
/// callers (the certified heal layer, the sim repairer) can keep the
/// old tables instead of crashing the whole fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// Walking the up phase back from the meet router reached `at`
    /// without a recorded predecessor channel.
    MissingUpPredecessor {
        /// Router where the chain broke.
        at: NodeId,
        /// Source end node of the pair being routed.
        src: NodeId,
        /// Destination end node of the pair being routed.
        dst: NodeId,
    },
    /// Walking the down phase forward from the meet router reached
    /// `at` without a recorded successor channel.
    MissingDownSuccessor {
        /// Router where the chain broke.
        at: NodeId,
        /// Source end node of the pair being routed.
        src: NodeId,
        /// Destination end node of the pair being routed.
        dst: NodeId,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::MissingUpPredecessor { at, src, dst } => write!(
                f,
                "repair invariant broken: no up-phase predecessor at node {} \
                 while reconstructing {} -> {}",
                at.index(),
                src.index(),
                dst.index()
            ),
            RepairError::MissingDownSuccessor { at, src, dst } => write!(
                f,
                "repair invariant broken: no down-phase successor at node {} \
                 while reconstructing {} -> {}",
                at.index(),
                src.index(),
                dst.index()
            ),
        }
    }
}

impl std::error::Error for RepairError {}

/// Outcome of a route regeneration.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// The regenerated paths. Pairs with no surviving route have empty
    /// paths — callers must treat those as unreachable.
    pub routes: RouteSet,
    /// Ordered pairs (`src != dst`) that still have a path.
    pub connected_pairs: usize,
    /// All ordered pairs.
    pub total_pairs: usize,
}

impl RepairReport {
    /// Fraction of ordered pairs still connected (1.0 = full repair).
    pub fn coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.connected_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Whether every pair still has a route.
    pub fn is_full(&self) -> bool {
        self.connected_pairs == self.total_pairs
    }
}

/// Per-node (component, level) order over the surviving subgraph.
struct SurvivorOrder {
    comp: Vec<u32>,
    level: Vec<u32>,
}

const UNSEEN: u32 = u32::MAX;

impl SurvivorOrder {
    fn new(net: &Network, mask: &DeadMask) -> Self {
        let n = net.node_count();
        let mut comp = vec![UNSEEN; n];
        let mut level = vec![UNSEEN; n];
        let mut next = 0u32;
        // Components are rooted at their lowest-index live node, which
        // makes the order (and hence the routes) deterministic.
        for root in net.nodes() {
            if comp[root.index()] != UNSEEN || !mask.node_ok(root) {
                continue;
            }
            comp[root.index()] = next;
            level[root.index()] = 0;
            let mut q = VecDeque::from([root]);
            while let Some(v) = q.pop_front() {
                for &(ch, w) in net.channels_from(v) {
                    if mask.channel_ok(net, ch) && comp[w.index()] == UNSEEN {
                        comp[w.index()] = next;
                        level[w.index()] = level[v.index()] + 1;
                        q.push_back(w);
                    }
                }
            }
            next += 1;
        }
        SurvivorOrder { comp, level }
    }

    /// Whether `ch` is an **up** channel: it strictly decreases the
    /// `(level, node index)` order.
    fn is_up(&self, net: &Network, ch: ChannelId) -> bool {
        let s = net.channel_src(ch);
        let d = net.channel_dst(ch);
        let (ls, ld) = (self.level[s.index()], self.level[d.index()]);
        ld < ls || (ld == ls && d.index() < s.index())
    }
}

/// Regenerates a complete route set avoiding everything `mask` marks
/// dead. See the [module docs](self) for the discipline and its
/// deadlock-freedom argument.
pub fn repair_routes(
    net: &Network,
    ends: &[NodeId],
    mask: &DeadMask,
) -> Result<RepairReport, RepairError> {
    let order = SurvivorOrder::new(net, mask);
    let mut connected = 0usize;
    let n = ends.len();
    let mut paths: Vec<Vec<Vec<ChannelId>>> = vec![vec![Vec::new(); n]; n];
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            if let Some(p) = survivor_updown_path(net, mask, &order, ends[s], ends[d])? {
                connected += 1;
                paths[s][d] = p;
            }
        }
    }
    let routes = RouteSet::from_pairs(n, |s, d| std::mem::take(&mut paths[s][d]));
    Ok(RepairReport {
        routes,
        connected_pairs: connected,
        total_pairs: n * (n - 1),
    })
}

/// Shortest `up* down*` path between two end nodes over surviving
/// channels only; `Ok(None)` when the pair is severed, `Err` when the
/// reconstruction invariants are violated.
fn survivor_updown_path(
    net: &Network,
    mask: &DeadMask,
    order: &SurvivorOrder,
    src: NodeId,
    dst: NodeId,
) -> Result<Option<Vec<ChannelId>>, RepairError> {
    if !mask.node_ok(src) || !mask.node_ok(dst) {
        return Ok(None);
    }
    let (Some(&(inject, src_router)), Some(&(eject_rev, dst_router))) = (
        net.channels_from(src).first(),
        net.channels_from(dst).first(),
    ) else {
        return Ok(None);
    };
    let eject = eject_rev.reverse();
    if !mask.channel_ok(net, inject) || !mask.channel_ok(net, eject) {
        return Ok(None);
    }
    if order.comp[src_router.index()] != order.comp[dst_router.index()] {
        return Ok(None);
    }
    if src_router == dst_router {
        return Ok(Some(vec![inject, eject]));
    }

    // Up-phase BFS from src_router over surviving up channels.
    let mut dist_up = vec![UNSEEN; net.node_count()];
    let mut prev_up: Vec<Option<ChannelId>> = vec![None; net.node_count()];
    dist_up[src_router.index()] = 0;
    let mut q = VecDeque::from([src_router]);
    while let Some(v) = q.pop_front() {
        for &(ch, w) in net.channels_from(v) {
            if net.is_router(w)
                && mask.channel_ok(net, ch)
                && order.is_up(net, ch)
                && dist_up[w.index()] == UNSEEN
            {
                dist_up[w.index()] = dist_up[v.index()] + 1;
                prev_up[w.index()] = Some(ch);
                q.push_back(w);
            }
        }
    }
    // Down-phase reverse BFS from dst_router over surviving down
    // channels.
    let mut dist_dn = vec![UNSEEN; net.node_count()];
    let mut next_dn: Vec<Option<ChannelId>> = vec![None; net.node_count()];
    dist_dn[dst_router.index()] = 0;
    let mut q = VecDeque::from([dst_router]);
    while let Some(v) = q.pop_front() {
        for &(out, w) in net.channels_from(v) {
            let incoming = out.reverse(); // w -> v
            if net.is_router(w)
                && mask.channel_ok(net, incoming)
                && !order.is_up(net, incoming)
                && dist_dn[w.index()] == UNSEEN
            {
                dist_dn[w.index()] = dist_dn[v.index()] + 1;
                next_dn[w.index()] = Some(incoming);
                q.push_back(w);
            }
        }
    }
    // Meet at the router minimizing total length; lowest index breaks
    // ties deterministically.
    let mut best: Option<(u32, usize)> = None;
    for v in net.nodes() {
        let (u, dn) = (dist_up[v.index()], dist_dn[v.index()]);
        if u != UNSEEN && dn != UNSEEN {
            let key = (u + dn, v.index());
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    let Some((_, meet)) = best else {
        return Ok(None);
    };
    // Reconstruct: up segment backwards from meet, then down segment
    // forwards.
    let mut path = vec![inject];
    let mut seg = Vec::new();
    let mut cur = NodeId(meet as u32);
    while cur != src_router {
        let ch =
            prev_up[cur.index()].ok_or(RepairError::MissingUpPredecessor { at: cur, src, dst })?;
        seg.push(ch);
        cur = net.channel_src(ch);
    }
    seg.reverse();
    path.extend(seg);
    let mut cur = NodeId(meet as u32);
    while cur != dst_router {
        let ch =
            next_dn[cur.index()].ok_or(RepairError::MissingDownSuccessor { at: cur, src, dst })?;
        path.push(ch);
        cur = net.channel_dst(ch);
    }
    path.push(eject);
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{Fractahedron, Hypercube, Ring, Topology, Variant};

    fn check_avoids(net: &Network, mask: &DeadMask, report: &RepairReport) {
        for (_, _, p) in report.routes.pairs() {
            for &ch in p {
                assert!(
                    mask.channel_ok(net, ch),
                    "route crosses dead channel {ch:?}"
                );
            }
        }
    }

    #[test]
    fn no_faults_full_coverage() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rep = repair_routes(h.net(), h.end_nodes(), &DeadMask::new(h.net())).unwrap();
        assert!(rep.is_full());
        assert_eq!(rep.coverage(), 1.0);
        assert!(rep.routes.check_simple().is_ok());
    }

    #[test]
    fn ring_survives_one_link_cut() {
        // A ring is 2-edge-connected between routers: one dead cable
        // reroutes the long way around.
        let r = Ring::new(5, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        // Kill the first router-router link (attach links come first or
        // last depending on builder; find one whose endpoints are both
        // routers).
        let victim = r
            .net()
            .links()
            .find(|&l| {
                let info = r.net().link(l);
                r.net().is_router(info.a.0) && r.net().is_router(info.b.0)
            })
            .unwrap();
        mask.kill_link(victim);
        let rep = repair_routes(r.net(), r.end_nodes(), &mask).unwrap();
        assert!(rep.is_full(), "coverage {}", rep.coverage());
        check_avoids(r.net(), &mask, &rep);
    }

    #[test]
    fn dead_router_degrades_gracefully() {
        let r = Ring::new(4, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        // Kill the router end 0 attaches to: 0 is severed, others
        // reroute around the hole.
        let router0 = r.net().channels_from(r.end_nodes()[0]).first().unwrap().1;
        mask.kill_router(router0);
        let rep = repair_routes(r.net(), r.end_nodes(), &mask).unwrap();
        assert!(!rep.is_full());
        // 3 surviving ends remain mutually connected: 3 * 2 = 6 of 12.
        assert_eq!(rep.connected_pairs, 6);
        check_avoids(r.net(), &mask, &rep);
        // Severed pairs really are empty.
        assert!(rep.routes.path(0, 1).is_empty());
        assert!(rep.routes.path(1, 0).is_empty());
        assert!(!rep.routes.path(1, 2).is_empty());
    }

    #[test]
    fn fractahedron_repair_is_deterministic() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let mut mask = DeadMask::new(f.net());
        let victim = f
            .net()
            .links()
            .find(|&l| {
                let info = f.net().link(l);
                f.net().is_router(info.a.0) && f.net().is_router(info.b.0)
            })
            .unwrap();
        mask.kill_link(victim);
        let a = repair_routes(f.net(), f.end_nodes(), &mask).unwrap();
        let b = repair_routes(f.net(), f.end_nodes(), &mask).unwrap();
        for (s, d, p) in a.routes.pairs() {
            assert_eq!(p, b.routes.path(s, d), "{s}->{d}");
        }
        assert!(a.is_full());
        check_avoids(f.net(), &mask, &a);
    }

    #[test]
    fn repaired_paths_are_up_then_down() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let mut mask = DeadMask::new(h.net());
        let victim = h
            .net()
            .links()
            .find(|&l| {
                let info = h.net().link(l);
                h.net().is_router(info.a.0) && h.net().is_router(info.b.0)
            })
            .unwrap();
        mask.kill_link(victim);
        let order = SurvivorOrder::new(h.net(), &mask);
        let rep = repair_routes(h.net(), h.end_nodes(), &mask).unwrap();
        assert!(rep.is_full());
        for (s, d, p) in rep.routes.pairs() {
            let interior = &p[1..p.len() - 1];
            let mut descending = false;
            for &ch in interior {
                if order.is_up(h.net(), ch) {
                    assert!(!descending, "{s}->{d} turned back up");
                } else {
                    descending = true;
                }
            }
        }
    }
}
