//! Tree routing and generic up*/down* routing.
//!
//! "Trees are deadlock-free" (§3.3): routes climb toward the common
//! ancestor and descend, so channel dependencies follow the tree's
//! partial order and can never cycle.
//!
//! [`updown_routeset`] generalizes the idea to *arbitrary* networks
//! (the Autonet discipline): orient every channel up or down with
//! respect to a BFS spanning tree, and restrict legal paths to
//! `up* down*`. This is the cleanest model of the paper's Fig 2
//! "breaking deadlocks in a hypercube by disabling paths": the disabled
//! arrows are exactly the down→up turns, it is provably deadlock-free,
//! and — as the paper complains — it concentrates traffic near the
//! root, giving "uneven link utilization under uniform load".
//!
//! [`updown_tables`] emits the discipline as destination-indexed
//! tables (each router descends as soon as it has an all-down path to
//! the destination, else climbs toward its cheapest descent point);
//! [`updown_routeset`] is the dense view traced from those tables.

use crate::repair::{updown_tables_for, DeadMask};
use crate::table::{RouteSet, Routes};
use fractanet_graph::{bfs, ChannelId, Network, NodeId, PortId};
use fractanet_topo::{BinaryTree, Star, Topology};
use std::collections::VecDeque;

/// Destination tables for a [`Star`]: the hub delivers directly.
pub fn star_routes(s: &Star) -> Routes {
    Routes::from_fn(s.net(), s.end_nodes().len(), |_, dst| {
        Some(PortId(dst as u8))
    })
}

/// Destination tables for a [`BinaryTree`]: descend when the
/// destination leaf is in this router's subtree, else climb.
pub fn bintree_routes(t: &BinaryTree) -> Routes {
    let count = t.routers().len();
    let first_leaf = count / 2;
    let npl = t.nodes_per_leaf();
    let heap_of = |router: NodeId| t.routers().iter().position(|&r| r == router);
    let in_subtree = |i: usize, mut j: usize| {
        while j > i {
            j = (j - 1) / 2;
        }
        j == i
    };
    Routes::from_fn(t.net(), t.end_nodes().len(), |router, dst| {
        let i = heap_of(router)?;
        let leaf = first_leaf + dst / npl;
        if i == leaf {
            return Some(PortId(1 + (dst % npl) as u8));
        }
        if !in_subtree(i, leaf) {
            return Some(PortId(0)); // up
        }
        Some(if in_subtree(2 * i + 1, leaf) {
            PortId(1)
        } else {
            PortId(2)
        })
    })
}

/// Channel orientation for up*/down* routing.
#[derive(Clone, Debug)]
pub struct UpDownOrientation {
    up: Vec<bool>, // indexed by ChannelId
}

impl UpDownOrientation {
    /// Orients every channel with respect to BFS levels from `root`:
    /// a channel is **up** if it decreases the BFS level, with node id
    /// as the tie-break (so orientation is a total order and acyclic).
    pub fn new(net: &Network, root: NodeId) -> Self {
        let level = bfs::distances(net, root);
        let mut up = vec![false; net.channel_count()];
        for ch in net.channels() {
            let s = net.channel_src(ch);
            let d = net.channel_dst(ch);
            let (ls, ld) = (level[s.index()], level[d.index()]);
            up[ch.index()] = ld < ls || (ld == ls && d.index() < s.index());
        }
        UpDownOrientation { up }
    }

    /// Whether `ch` is an up channel.
    pub fn is_up(&self, ch: ChannelId) -> bool {
        self.up[ch.index()]
    }
}

/// Destination tables for up*/down* routing oriented by BFS levels
/// from `root`: a router with an all-down path to the destination
/// descends along the shortest one, every other router climbs toward
/// its cheapest descent point. Paths traced from the tables are
/// `up* down*` by construction (the descending set is closed under
/// its own successors), hence deadlock-free.
pub fn updown_tables(net: &Network, ends: &[NodeId], root: NodeId) -> Routes {
    let level = bfs::distances(net, root);
    let comp: Vec<u32> = level
        .iter()
        .map(|&l| if l == u32::MAX { u32::MAX } else { 0 })
        .collect();
    let (routes, _) = updown_tables_for(net, ends, &DeadMask::new(net), &comp, &level);
    routes
}

/// The dense per-pair view of [`updown_tables`], traced from the
/// tables so both representations agree path for path.
///
/// Panics if some pair has no legal path (cannot happen when the
/// network is connected: the spanning tree itself is always legal).
pub fn updown_routeset(net: &Network, ends: &[NodeId], root: NodeId) -> RouteSet {
    let tables = updown_tables(net, ends, root);
    RouteSet::from_table(net, ends, &tables).expect("connected network has up*/down* path")
}

/// Shortest `up* down*` path between two end nodes, attach channels
/// included — the per-pair meet construction, independent of the
/// table builder (the tests use it as a reference).
pub fn updown_path(
    net: &Network,
    orient: &UpDownOrientation,
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<ChannelId>> {
    let &(inject, src_router) = net.channels_from(src).first()?;
    let &(eject_rev, dst_router) = net.channels_from(dst).first()?;
    let eject = eject_rev.reverse();
    if src_router == dst_router {
        return Some(vec![inject, eject]);
    }

    const UNSEEN: u32 = u32::MAX;
    // Up-phase BFS from src_router over up channels (routers only).
    let mut dist_up = vec![UNSEEN; net.node_count()];
    let mut prev_up: Vec<Option<ChannelId>> = vec![None; net.node_count()];
    dist_up[src_router.index()] = 0;
    let mut q = VecDeque::from([src_router]);
    while let Some(v) = q.pop_front() {
        for &(ch, w) in net.channels_from(v) {
            if net.is_router(w) && orient.is_up(ch) && dist_up[w.index()] == UNSEEN {
                dist_up[w.index()] = dist_up[v.index()] + 1;
                prev_up[w.index()] = Some(ch);
                q.push_back(w);
            }
        }
    }
    // Down-phase reverse BFS from dst_router over down channels.
    let mut dist_dn = vec![UNSEEN; net.node_count()];
    let mut next_dn: Vec<Option<ChannelId>> = vec![None; net.node_count()];
    dist_dn[dst_router.index()] = 0;
    let mut q = VecDeque::from([dst_router]);
    while let Some(v) = q.pop_front() {
        for &(out, w) in net.channels_from(v) {
            let incoming = out.reverse(); // w -> v
            if net.is_router(w) && !orient.is_up(incoming) && dist_dn[w.index()] == UNSEEN {
                dist_dn[w.index()] = dist_dn[v.index()] + 1;
                next_dn[w.index()] = Some(incoming);
                q.push_back(w);
            }
        }
    }
    // Meet at the router minimizing total length; lowest index breaks
    // ties deterministically.
    let mut best: Option<(u32, usize)> = None;
    for v in net.nodes() {
        let (u, dn) = (dist_up[v.index()], dist_dn[v.index()]);
        if u != UNSEEN && dn != UNSEEN {
            let key = (u + dn, v.index());
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    let (_, meet) = best?;
    // Reconstruct: up segment backwards from meet, then down segment
    // forwards.
    let mut path = vec![inject];
    let mut seg = Vec::new();
    let mut cur = NodeId(meet as u32);
    while cur != src_router {
        let ch = prev_up[cur.index()].expect("up-phase predecessor");
        seg.push(ch);
        cur = net.channel_src(ch);
    }
    seg.reverse();
    path.extend(seg);
    let mut cur = NodeId(meet as u32);
    while cur != dst_router {
        let ch = next_dn[cur.index()].expect("down-phase successor");
        path.push(ch);
        cur = net.channel_dst(ch);
    }
    path.push(eject);
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_topo::{Hypercube, Ring};

    #[test]
    fn star_routes_one_hop() {
        let s = Star::new(5, 6).unwrap();
        let routes = star_routes(&s);
        let rs = RouteSet::from_table(s.net(), s.end_nodes(), &routes).unwrap();
        assert_eq!(rs.max_router_hops(), 1);
    }

    #[test]
    fn bintree_routes_minimal() {
        let t = BinaryTree::new(3, 2, 6).unwrap();
        let routes = bintree_routes(&t);
        let rs = RouteSet::from_table(t.net(), t.end_nodes(), &routes).unwrap();
        for (s, d, p) in rs.pairs() {
            let want =
                bfs::router_hops(t.net(), t.end_nodes()[s], t.end_nodes()[d]).unwrap() as usize;
            assert_eq!(p.len() - 1, want, "{s}->{d}");
        }
    }

    #[test]
    fn bintree_crossing_pairs_pass_root() {
        let t = BinaryTree::new(3, 1, 6).unwrap();
        let routes = bintree_routes(&t);
        let rs = RouteSet::from_table(t.net(), t.end_nodes(), &routes).unwrap();
        // Leftmost to rightmost leaf: 5 router hops in a 3-level tree.
        assert_eq!(rs.router_hops(0, 3), 5);
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let o = UpDownOrientation::new(h.net(), h.router(0));
        for ch in h.net().channels() {
            assert_ne!(o.is_up(ch), o.is_up(ch.reverse()), "{ch:?}");
        }
    }

    #[test]
    fn updown_paths_are_legal() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let o = UpDownOrientation::new(h.net(), h.router(0));
        let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
        for (s, d, p) in rs.pairs() {
            // Interior channels (between routers) must be up* then down*.
            let interior = &p[1..p.len() - 1];
            let mut descending = false;
            for &ch in interior {
                if o.is_up(ch) {
                    assert!(!descending, "{s}->{d} turned back up");
                } else {
                    descending = true;
                }
            }
        }
    }

    #[test]
    fn updown_delivers_everywhere_on_a_ring() {
        let r = Ring::new(5, 1, 6).unwrap();
        let rs = updown_routeset(r.net(), r.end_nodes(), r.router(0));
        for (s, d, p) in rs.pairs() {
            assert_eq!(
                r.net().channel_dst(*p.last().unwrap()),
                r.end_nodes()[d],
                "{s}->{d}"
            );
            assert_eq!(r.net().channel_src(p[0]), r.end_nodes()[s]);
        }
        assert!(rs.check_simple().is_ok());
    }

    #[test]
    fn updown_same_router_shortcut() {
        let h = Hypercube::new(2, 2, 6).unwrap();
        let rs = updown_routeset(h.net(), h.end_nodes(), h.router(0));
        assert_eq!(rs.router_hops(0, 1), 1);
    }
}
