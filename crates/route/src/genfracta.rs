//! Depth-first routing for generalized cluster fractahedrons — the
//! same §2.3 algorithm, parameterized over the cluster shape (§4:
//! "the concepts easily generalize to other fully connected groups of
//! N-port routers").
//!
//! With `u > 1` up ports per router, the fat ascent spreads packets
//! over the up ports by destination (`q = dst mod u`), preserving the
//! fixed-path / in-order property while using all replicated layers.

use crate::table::Routes;
use fractanet_graph::PortId;
use fractanet_topo::{GenFractahedron, Topology};

/// Builds destination tables for a generalized fractahedron.
pub fn genfracta_routes(g: &GenFractahedron) -> Routes {
    let shape = g.shape();
    Routes::from_fn(g.net(), g.end_nodes().len(), |router, dst| {
        let pos = g.pos_of(router)?;
        let (k, s, cr) = (pos.level, pos.stack, pos.corner);
        let t = g.cluster_of_addr(dst);
        if g.stack_of_cluster(t, k) != s {
            // Ascend.
            return Some(if g.is_fat() {
                shape.up_port(dst % shape.up)
            } else if cr == 0 {
                shape.up_port(0)
            } else {
                shape.intra_port(cr, 0)
            });
        }
        if k == 1 {
            let c_d = g.corner_of_addr(dst);
            return Some(if cr == c_d {
                PortId(g.port_of_addr(dst) as u8)
            } else {
                shape.intra_port(cr, c_d)
            });
        }
        let c = g.child_digit(t, k);
        let jc = c / shape.down;
        Some(if cr == jc {
            PortId((c % shape.down) as u8)
        } else {
            shape.intra_port(cr, jc)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteSet;
    use fractanet_graph::bfs;
    use fractanet_topo::ClusterShape;

    fn routed(g: &GenFractahedron) -> RouteSet {
        RouteSet::from_table(g.net(), g.end_nodes(), &genfracta_routes(g)).unwrap()
    }

    #[test]
    fn paper_shape_routes_match_bfs() {
        let g = GenFractahedron::new(ClusterShape::PAPER, 2, true).unwrap();
        let rs = routed(&g);
        for (s, d, p) in rs.pairs() {
            let want =
                bfs::router_hops(g.net(), g.end_nodes()[s], g.end_nodes()[d]).unwrap() as usize;
            assert_eq!(p.len() - 1, want, "{s}->{d}");
        }
        assert!(
            (rs.avg_router_hops() - 271.0 / 63.0).abs() < 1e-9,
            "Table 2's 4.3 reproduced"
        );
    }

    #[test]
    fn triangle_shape_routes_minimal() {
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        for fat in [true, false] {
            let g = GenFractahedron::new(shape, 2, fat).unwrap();
            let rs = routed(&g);
            for (s, d, p) in rs.pairs() {
                let want =
                    bfs::router_hops(g.net(), g.end_nodes()[s], g.end_nodes()[d]).unwrap() as usize;
                assert_eq!(p.len() - 1, want, "fat={fat} {s}->{d}");
            }
            assert!(rs.check_simple().is_ok());
        }
    }

    #[test]
    fn eight_port_shape_routes_and_delivers() {
        let shape = ClusterShape {
            cluster: 4,
            ports: 8,
            down: 3,
            up: 2,
        };
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        let rs = routed(&g);
        assert_eq!(rs.len(), 144);
        assert_eq!(rs.max_router_hops(), 5, "3N-1 generalizes");
        for (s, d, p) in rs.pairs().take(500) {
            assert_eq!(
                g.net().channel_dst(*p.last().unwrap()),
                g.end_nodes()[d],
                "{s}->{d}"
            );
        }
    }

    #[test]
    fn fat_ascent_spreads_over_up_ports() {
        // With u = 2, destinations of different parity take different
        // up ports from the same router.
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        let routes = genfracta_routes(&g);
        let r = g.router(1, 0, 0, 0);
        // Destinations outside cluster 0: e.g. 12 (even) and 13 (odd).
        let even = routes.get(r, 12).unwrap();
        let odd = routes.get(r, 13).unwrap();
        assert_ne!(even, odd);
        assert_eq!(even, shape.up_port(0));
        assert_eq!(odd, shape.up_port(1));
    }

    #[test]
    fn generalized_routing_is_deadlock_free() {
        use fractanet_deadlock_check::acyclic;
        for (shape, fat) in [
            (
                ClusterShape {
                    cluster: 3,
                    ports: 6,
                    down: 2,
                    up: 2,
                },
                true,
            ),
            (
                ClusterShape {
                    cluster: 3,
                    ports: 6,
                    down: 2,
                    up: 2,
                },
                false,
            ),
            (
                ClusterShape {
                    cluster: 4,
                    ports: 8,
                    down: 3,
                    up: 2,
                },
                true,
            ),
        ] {
            let g = GenFractahedron::new(shape, 2, fat).unwrap();
            let rs = routed(&g);
            assert!(acyclic(g.net(), &rs), "{shape:?} fat={fat}");
        }
    }

    /// Minimal local CDG check to avoid a dependency cycle with
    /// `fractanet-deadlock` (which depends on this crate).
    mod fractanet_deadlock_check {
        use fractanet_graph::{AdjList, Network};

        pub fn acyclic(net: &Network, rs: &crate::table::RouteSet) -> bool {
            let mut g = AdjList::new(net.channel_count());
            for (_, _, p) in rs.pairs() {
                for w in p.windows(2) {
                    g.add_edge(w[0].0, w[1].0);
                }
            }
            g.is_acyclic()
        }
    }
}
