//! Fat-tree routing with static up-link partitioning (Fig 6, §3.3).
//!
//! "To maintain in-order delivery, there must be a fixed path between
//! each pair of nodes. Figure 6 shows one arbitrary partitioning of the
//! outbound traffic … This partitioning gives even link utilization in
//! the case of uniform traffic, but can have very bad contention in
//! some situations."
//!
//! Ascent works one base-`up` digit per level: the policy maps each
//! destination address to a *target top replica* `T(dst)`; the level-k
//! up-port choice is digit `k` of `T(dst)` (most significant first),
//! which by the fat-tree wiring rule lands the packet on top replica
//! `T(dst)` exactly. Descent is forced (one down port per child).
//! Because the choice depends only on the destination, the tables are
//! ServerNet-expressible and every pair has a fixed path.

use crate::table::Routes;
use fractanet_graph::PortId;
use fractanet_topo::{FatTree, Topology};

/// How destinations are spread over the replicated up links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpPolicy {
    /// `T(dst) = (dst / down) mod up^(L-1)` — partition by destination
    /// leaf router, the Fig 6 labelling (link "EIM" serves the same
    /// router position across groups).
    ByLeafRouter,
    /// `T(dst) = dst mod up^(L-1)` — partition by low address bits.
    ByNodeModulo,
    /// `T(dst) = (dst / down^(L-1)) mod up^(L-1)` — partition by
    /// top-level group; §3.3's observation that *any* static partition
    /// still concentrates 12 transfers on one link applies here too.
    ByGroup,
}

impl UpPolicy {
    /// Target top replica for a destination.
    pub fn top_replica(self, ft: &FatTree, dst: usize) -> usize {
        let levels = ft.levels();
        let replicas = ft.up().pow(levels as u32 - 1);
        match self {
            UpPolicy::ByLeafRouter => (dst / ft.down()) % replicas,
            UpPolicy::ByNodeModulo => dst % replicas,
            UpPolicy::ByGroup => (dst / ft.down().pow(levels as u32 - 1)) % replicas,
        }
    }
}

/// Builds destination tables for a fat tree under `policy`.
pub fn fattree_routes(ft: &FatTree, policy: UpPolicy) -> Routes {
    let down = ft.down();
    let up = ft.up();
    let levels = ft.levels();
    Routes::from_fn(ft.net(), ft.end_nodes().len(), |router, dst| {
        let (k, v, _r) = ft.locate(router)?;
        if ft.in_subtree(k, v, dst) {
            // Descend: pick the child sub-span containing dst.
            let child = (dst / down.pow(k as u32 - 1)) % down;
            Some(PortId(child as u8))
        } else {
            // Ascend by the policy digit for this level.
            let target = policy.top_replica(ft, dst);
            let digit = (target / up.pow((levels - 1 - k) as u32)) % up;
            Some(PortId((down + digit) as u8))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteSet;
    use fractanet_graph::bfs;

    fn routed(ft: &FatTree, policy: UpPolicy) -> RouteSet {
        RouteSet::from_table(ft.net(), ft.end_nodes(), &fattree_routes(ft, policy)).unwrap()
    }

    #[test]
    fn paper_4_2_routes_minimal_all_policies() {
        let ft = FatTree::paper_4_2_64();
        for policy in [
            UpPolicy::ByLeafRouter,
            UpPolicy::ByNodeModulo,
            UpPolicy::ByGroup,
        ] {
            let rs = routed(&ft, policy);
            for (s, d, p) in rs.pairs() {
                let want = bfs::router_hops(ft.net(), ft.end_nodes()[s], ft.end_nodes()[d]).unwrap()
                    as usize;
                assert_eq!(p.len() - 1, want, "{policy:?} {s}->{d}");
            }
        }
    }

    #[test]
    fn paper_4_2_average_hops_is_4_4() {
        let rs = routed(&FatTree::paper_4_2_64(), UpPolicy::ByLeafRouter);
        assert!((rs.avg_router_hops() - 279.0 / 63.0).abs() < 1e-9);
    }

    #[test]
    fn paper_3_3_average_hops_is_5_9() {
        let rs = routed(&FatTree::paper_3_3_64(), UpPolicy::ByLeafRouter);
        assert!(
            (rs.avg_router_hops() - 5.9).abs() < 0.1,
            "avg = {}",
            rs.avg_router_hops()
        );
    }

    #[test]
    fn ascent_reaches_policy_top_replica() {
        let ft = FatTree::paper_4_2_64();
        let policy = UpPolicy::ByLeafRouter;
        let rs = routed(&ft, policy);
        // Source 0, destination 63: route crosses the top level; the
        // top router on the path must be the policy's replica.
        let p = rs.path(0, 63);
        let top = ft.router(3, 0, policy.top_replica(&ft, 63));
        assert!(
            p.iter().any(|&c| ft.net().channel_dst(c) == top),
            "path does not pass the policy top replica"
        );
    }

    #[test]
    fn policies_differ_in_replica_choice() {
        let ft = FatTree::paper_4_2_64();
        assert_eq!(UpPolicy::ByLeafRouter.top_replica(&ft, 63), (63 / 4) % 4);
        assert_eq!(UpPolicy::ByNodeModulo.top_replica(&ft, 63), 63 % 4);
        assert_eq!(UpPolicy::ByGroup.top_replica(&ft, 63), 3);
    }

    #[test]
    fn three_three_tables_complete() {
        let ft = FatTree::paper_3_3_64();
        let rs = routed(&ft, UpPolicy::ByGroup);
        assert!(rs.check_simple().is_ok());
        assert_eq!(rs.len(), 64);
    }
}
