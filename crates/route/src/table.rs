//! Destination-indexed routing tables and traced route sets.

use fractanet_graph::{ChannelId, Network, NodeId, PortId};
use std::fmt;

/// Errors raised while tracing routes through tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// A router had no table entry for the destination.
    MissingEntry {
        /// Router whose table lacks the entry.
        router: NodeId,
        /// Destination address.
        dst: usize,
    },
    /// A table entry pointed at a port with no cable attached.
    DeadPort {
        /// Router with the dangling entry.
        router: NodeId,
        /// The vacant port.
        port: PortId,
        /// Destination address.
        dst: usize,
    },
    /// The route revisited a router (tables contain a forwarding loop).
    ForwardingLoop {
        /// Source address of the looping route.
        src: usize,
        /// Destination address.
        dst: usize,
    },
    /// A route was delivered to the wrong end node.
    Misdelivered {
        /// Source address.
        src: usize,
        /// Destination address.
        dst: usize,
        /// Where the packet actually arrived.
        arrived: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MissingEntry { router, dst } => {
                write!(
                    f,
                    "router {router} has no table entry for destination {dst}"
                )
            }
            RouteError::DeadPort { router, port, dst } => {
                write!(
                    f,
                    "router {router} routes destination {dst} to vacant port {port:?}"
                )
            }
            RouteError::ForwardingLoop { src, dst } => {
                write!(f, "forwarding loop on route {src} -> {dst}")
            }
            RouteError::Misdelivered { src, dst, arrived } => {
                write!(f, "route {src} -> {dst} delivered to {arrived}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Per-router destination-indexed routing tables — the ServerNet
/// model. `table[router][dst]` is the output port for packets addressed
/// to end node `dst`; on the destination's own attach router the entry
/// is the attach port itself.
#[derive(Clone, Debug)]
pub struct Routes {
    /// Indexed by `NodeId::index()`; end-node rows stay empty.
    table: Vec<Vec<Option<PortId>>>,
    n_addr: usize,
}

impl Routes {
    /// Creates empty tables for a network routing `n_addr`
    /// destinations.
    pub fn new(net: &Network, n_addr: usize) -> Self {
        let table = net
            .nodes()
            .map(|n| {
                if net.is_router(n) {
                    vec![None; n_addr]
                } else {
                    Vec::new()
                }
            })
            .collect();
        Routes { table, n_addr }
    }

    /// Fills every router's table from a port-choice function.
    /// `f(router, dst)` returns `None` to leave the entry empty
    /// (destinations the router should never see).
    pub fn from_fn(
        net: &Network,
        n_addr: usize,
        mut f: impl FnMut(NodeId, usize) -> Option<PortId>,
    ) -> Self {
        let mut routes = Self::new(net, n_addr);
        for r in net.routers() {
            for dst in 0..n_addr {
                routes.table[r.index()][dst] = f(r, dst);
            }
        }
        routes
    }

    /// Number of destination addresses.
    pub fn n_addr(&self) -> usize {
        self.n_addr
    }

    /// Sets one table entry.
    pub fn set(&mut self, router: NodeId, dst: usize, port: PortId) {
        self.table[router.index()][dst] = Some(port);
    }

    /// Clears one table entry (used by fault-injection experiments).
    pub fn clear(&mut self, router: NodeId, dst: usize) {
        self.table[router.index()][dst] = None;
    }

    /// Reads one table entry.
    pub fn get(&self, router: NodeId, dst: usize) -> Option<PortId> {
        self.table[router.index()].get(dst).copied().flatten()
    }

    /// Traces the route from end node `ends[src]` to `ends[dst]`.
    /// Returns the traversed channels, attach hops included. The empty
    /// path is returned for `src == dst`.
    pub fn trace(
        &self,
        net: &Network,
        ends: &[NodeId],
        src: usize,
        dst: usize,
    ) -> Result<Vec<ChannelId>, RouteError> {
        if src == dst {
            return Ok(Vec::new());
        }
        let target = ends[dst];
        let mut path = Vec::new();
        // Injection: the end node's first (for dual-ported nodes: only
        // the primary) attachment.
        let &(inject, mut cur) = net
            .channels_from(ends[src])
            .first()
            .expect("end node must be attached");
        path.push(inject);
        let mut visited = vec![false; net.node_count()];
        loop {
            if cur == target {
                return Ok(path);
            }
            if visited[cur.index()] {
                return Err(RouteError::ForwardingLoop { src, dst });
            }
            visited[cur.index()] = true;
            let port = self
                .get(cur, dst)
                .ok_or(RouteError::MissingEntry { router: cur, dst })?;
            let ch = net.channel_out(cur, port).ok_or(RouteError::DeadPort {
                router: cur,
                port,
                dst,
            })?;
            path.push(ch);
            let next = net.channel_dst(ch);
            if !net.is_router(next) && next != target {
                return Err(RouteError::Misdelivered {
                    src,
                    dst,
                    arrived: next,
                });
            }
            cur = next;
        }
    }
}

/// Every source→destination path of a network, traced and frozen.
///
/// This is the object the analyses consume: worst-case link contention
/// scans it per channel, the channel-dependency graph is built from its
/// consecutive channel pairs, and the simulator replays it.
#[derive(Clone, Debug)]
pub struct RouteSet {
    /// `paths[src][dst]`; empty vector on the diagonal.
    paths: Vec<Vec<Vec<ChannelId>>>,
}

impl RouteSet {
    /// Traces all pairs through routing tables.
    pub fn from_table(net: &Network, ends: &[NodeId], routes: &Routes) -> Result<Self, RouteError> {
        let n = ends.len();
        let mut paths = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(routes.trace(net, ends, s, d)?);
            }
            paths.push(row);
        }
        Ok(RouteSet { paths })
    }

    /// Builds a route set from a per-pair path generator (for schemes
    /// that are not destination-table-expressible, e.g. up*/down*).
    /// `f(src, dst)` must return the channel sequence from `ends[src]`
    /// to `ends[dst]`.
    pub fn from_pairs(n: usize, mut f: impl FnMut(usize, usize) -> Vec<ChannelId>) -> Self {
        let mut paths = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(if s == d { Vec::new() } else { f(s, d) });
            }
            paths.push(row);
        }
        RouteSet { paths }
    }

    /// Number of end nodes.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether there are no end nodes.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The channel sequence for `src → dst` (empty on the diagonal).
    pub fn path(&self, src: usize, dst: usize) -> &[ChannelId] {
        &self.paths[src][dst]
    }

    /// Iterates over all ordered pairs with their paths
    /// (diagonal excluded).
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, &[ChannelId])> + '_ {
        let n = self.len();
        (0..n).flat_map(move |s| {
            (0..n)
                .filter(move |&d| d != s)
                .map(move |d| (s, d, self.paths[s][d].as_slice()))
        })
    }

    /// Router hops of a route (channels minus the injection channel).
    pub fn router_hops(&self, src: usize, dst: usize) -> usize {
        self.paths[src][dst].len().saturating_sub(1)
    }

    /// Mean router hops over all ordered pairs — the routed counterpart
    /// of the topological average; equal for minimal routings.
    pub fn avg_router_hops(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let total: usize = self.pairs().map(|(_, _, p)| p.len() - 1).sum();
        total as f64 / (n * (n - 1)) as f64
    }

    /// Maximum router hops over all ordered pairs.
    pub fn max_router_hops(&self) -> usize {
        self.pairs()
            .map(|(_, _, p)| p.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Checks the fixed-path in-order-delivery property at the route
    /// level: tracing is deterministic by construction, so this
    /// verifies the paths are *simple* (no repeated channel), which the
    /// tracer guarantees for table routes but per-pair generators might
    /// violate.
    pub fn check_simple(&self) -> Result<(), (usize, usize)> {
        for (s, d, p) in self.pairs() {
            let mut seen: Vec<ChannelId> = p.to_vec();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            if seen.len() != before {
                return Err((s, d));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::{LinkClass, Network};

    /// Two routers, one end node each: n0 - r0 - r1 - n1.
    fn dumbbell() -> (Network, Vec<NodeId>, NodeId, NodeId) {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let r1 = net.add_router("r1", 6);
        net.connect(r0, PortId(0), r1, PortId(0), LinkClass::Local)
            .unwrap();
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        net.connect(r0, PortId(1), n0, PortId(0), LinkClass::Attach)
            .unwrap();
        net.connect(r1, PortId(1), n1, PortId(0), LinkClass::Attach)
            .unwrap();
        (net, vec![n0, n1], r0, r1)
    }

    #[test]
    fn trace_follows_tables() {
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(1));
        routes.set(r1, 0, PortId(0));
        routes.set(r0, 0, PortId(1));
        let p = routes.trace(&net, &ends, 0, 1).unwrap();
        assert_eq!(p.len(), 3); // attach, inter-router, attach
        assert_eq!(net.channel_src(p[0]), ends[0]);
        assert_eq!(net.channel_dst(p[2]), ends[1]);
    }

    #[test]
    fn missing_entry_reported() {
        let (net, ends, r0, _) = dumbbell();
        let routes = Routes::new(&net, 2);
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(err, RouteError::MissingEntry { router: r0, dst: 1 });
    }

    #[test]
    fn dead_port_reported() {
        let (net, ends, r0, _) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(5));
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(
            err,
            RouteError::DeadPort {
                router: r0,
                port: PortId(5),
                dst: 1
            }
        );
    }

    #[test]
    fn forwarding_loop_detected() {
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        // r0 and r1 bounce destination 1 between each other.
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(0));
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(err, RouteError::ForwardingLoop { src: 0, dst: 1 });
    }

    #[test]
    fn misdelivery_detected() {
        let (net, ends, r0, _) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        // r0 sends destination-1 packets into its own end node n0.
        routes.set(r0, 1, PortId(1));
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(
            err,
            RouteError::Misdelivered {
                src: 0,
                dst: 1,
                arrived: ends[0]
            }
        );
    }

    #[test]
    fn self_route_is_empty() {
        let (net, ends, _, _) = dumbbell();
        let routes = Routes::new(&net, 2);
        assert!(routes.trace(&net, &ends, 0, 0).unwrap().is_empty());
    }

    #[test]
    fn route_set_statistics() {
        let (net, ends, r0, r1) = dumbbell();
        let routes = Routes::from_fn(&net, 2, |r, dst| {
            Some(match (r, dst) {
                (x, 0) if x == r0 => PortId(1),
                (x, 1) if x == r0 => PortId(0),
                (x, 0) if x == r1 => PortId(0),
                _ => PortId(1),
            })
        });
        let rs = RouteSet::from_table(&net, &ends, &routes).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.router_hops(0, 1), 2);
        assert_eq!(rs.avg_router_hops(), 2.0);
        assert_eq!(rs.max_router_hops(), 2);
        assert!(rs.check_simple().is_ok());
        assert_eq!(rs.pairs().count(), 2);
    }
}
