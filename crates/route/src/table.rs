//! Destination-indexed routing tables — the canonical routing object —
//! and traced route sets as a derived view.
//!
//! [`Routes`] is the ServerNet model: one flat byte row per router,
//! indexed by destination address, each entry naming an output port.
//! Everything else is derived from it on demand: [`PathIter`] walks one
//! route hop by hop without allocating, [`Routes::trace_into`] fills a
//! caller-owned scratch buffer, and [`RouteSet`] freezes every pair
//! into a dense matrix for callers that genuinely need one (or for
//! schemes built per pair, which tables cannot express). Memory-wise
//! the table is O(routers · N) single bytes while the dense matrix is
//! O(N² · path length) channel words — see `Routes::resident_bytes`
//! and `RouteSet::resident_bytes` for the measured comparison.

use fractanet_graph::{ChannelId, Network, NodeId, PortId};
use std::fmt;

/// Errors raised while tracing routes through tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// A router had no table entry for the destination.
    MissingEntry {
        /// Router whose table lacks the entry.
        router: NodeId,
        /// Destination address.
        dst: usize,
    },
    /// A table entry pointed at a port with no cable attached.
    DeadPort {
        /// Router with the dangling entry.
        router: NodeId,
        /// The vacant port.
        port: PortId,
        /// Destination address.
        dst: usize,
    },
    /// The route revisited a router (tables contain a forwarding loop).
    ForwardingLoop {
        /// Source address of the looping route.
        src: usize,
        /// Destination address.
        dst: usize,
        /// The routers traversed, in order, ending with the first
        /// repeated router (which therefore appears twice).
        visited: Vec<NodeId>,
    },
    /// A route was delivered to the wrong end node.
    Misdelivered {
        /// Source address.
        src: usize,
        /// Destination address.
        dst: usize,
        /// Where the packet actually arrived.
        arrived: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MissingEntry { router, dst } => {
                write!(
                    f,
                    "router {router} has no table entry for destination {dst}"
                )
            }
            RouteError::DeadPort { router, port, dst } => {
                write!(
                    f,
                    "router {router} routes destination {dst} to vacant port {port:?}"
                )
            }
            RouteError::ForwardingLoop { src, dst, visited } => {
                write!(f, "forwarding loop on route {src} -> {dst}")?;
                if !visited.is_empty() {
                    write!(f, " via")?;
                    for (i, r) in visited.iter().enumerate() {
                        write!(f, "{} {r}", if i == 0 { "" } else { " ->" })?;
                    }
                }
                Ok(())
            }
            RouteError::Misdelivered { src, dst, arrived } => {
                write!(f, "route {src} -> {dst} delivered to {arrived}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The sentinel byte marking an empty table entry. Port numbers in
/// this workspace are tiny (routers have ≤ 8 ports), so `u8::MAX` can
/// never collide with a real port.
const NO_ENTRY: u8 = u8::MAX;

/// Per-router destination-indexed routing tables — the ServerNet
/// model and the workspace's single source of truth for routing.
/// `get(router, dst)` is the output port for packets addressed to end
/// node `dst`; on the destination's own attach router the entry is the
/// attach port itself.
///
/// Storage is one flat `Box<[u8]>` row per router (end-node rows stay
/// empty), so the whole object is O(routers · N) bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Routes {
    /// Indexed by `NodeId::index()`; end-node rows stay empty.
    rows: Vec<Box<[u8]>>,
    n_addr: usize,
}

impl Routes {
    /// Creates empty tables for a network routing `n_addr`
    /// destinations.
    pub fn new(net: &Network, n_addr: usize) -> Self {
        let rows = net
            .nodes()
            .map(|n| {
                if net.is_router(n) {
                    vec![NO_ENTRY; n_addr].into_boxed_slice()
                } else {
                    Box::default()
                }
            })
            .collect();
        Routes { rows, n_addr }
    }

    /// Fills every router's table from a port-choice function.
    /// `f(router, dst)` returns `None` to leave the entry empty
    /// (destinations the router should never see).
    pub fn from_fn(
        net: &Network,
        n_addr: usize,
        mut f: impl FnMut(NodeId, usize) -> Option<PortId>,
    ) -> Self {
        let mut routes = Self::new(net, n_addr);
        for r in net.routers() {
            for dst in 0..n_addr {
                if let Some(port) = f(r, dst) {
                    routes.set(r, dst, port);
                }
            }
        }
        routes
    }

    /// Projects a per-pair route set onto destination-indexed tables.
    ///
    /// Tables are incoming-channel-agnostic: every route toward `dst`
    /// crossing router `r` must leave by the same port. Arbitrary
    /// per-pair paths (e.g. from turn-disable synthesis) need not be
    /// coherent in that sense, so this returns `None` on the first
    /// conflicting entry — the caller keeps the route set as a dense
    /// scheme instead. Empty paths (severed pairs) contribute no
    /// entries.
    pub fn from_pair_paths(net: &Network, ends: &[NodeId], routes: &RouteSet) -> Option<Self> {
        let mut tables = Self::new(net, ends.len());
        for (_, d, path) in routes.pairs() {
            for w in path.windows(2) {
                let router = net.channel_dst(w[0]);
                let port = net.channel_src_port(w[1]);
                match tables.get(router, d) {
                    Some(existing) if existing != port => return None,
                    Some(_) => {}
                    None => tables.set(router, d, port),
                }
            }
        }
        Some(tables)
    }

    /// Number of destination addresses.
    pub fn n_addr(&self) -> usize {
        self.n_addr
    }

    /// Sets one table entry.
    pub fn set(&mut self, router: NodeId, dst: usize, port: PortId) {
        debug_assert_ne!(port.0, NO_ENTRY, "port collides with the empty sentinel");
        self.rows[router.index()][dst] = port.0;
    }

    /// Clears one table entry (used by fault-injection experiments).
    pub fn clear(&mut self, router: NodeId, dst: usize) {
        self.rows[router.index()][dst] = NO_ENTRY;
    }

    /// Clears one destination's entry in every router row — the first
    /// half of a per-column table patch during a heal.
    pub fn clear_column(&mut self, dst: usize) {
        for row in &mut self.rows {
            if let Some(e) = row.get_mut(dst) {
                *e = NO_ENTRY;
            }
        }
    }

    /// Reads one table entry.
    pub fn get(&self, router: NodeId, dst: usize) -> Option<PortId> {
        self.rows[router.index()]
            .get(dst)
            .copied()
            .filter(|&p| p != NO_ENTRY)
            .map(PortId)
    }

    /// Bytes resident in this table, counting per-row headers — the
    /// O(routers · N) side of the memory-model comparison.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.capacity() * std::mem::size_of::<Box<[u8]>>()
            + self.rows.iter().map(|r| r.len()).sum::<usize>()
    }

    /// Walks the route from `ends[src]` to `ends[dst]` hop by hop
    /// without allocating. See [`PathIter`].
    pub fn path_iter<'a>(
        &'a self,
        net: &'a Network,
        ends: &'a [NodeId],
        src: usize,
        dst: usize,
    ) -> PathIter<'a> {
        PathIter {
            routes: self,
            net,
            ends,
            src,
            dst,
            cur: None,
            started: false,
            hops: 0,
            error: None,
        }
    }

    /// Traces the route from end node `ends[src]` to `ends[dst]` into
    /// a caller-owned buffer (cleared first), so analysis layers can
    /// walk all pairs with a single scratch allocation. The traversed
    /// channels include the attach hops; `src == dst` leaves the
    /// buffer empty.
    pub fn trace_into(
        &self,
        net: &Network,
        ends: &[NodeId],
        src: usize,
        dst: usize,
        out: &mut Vec<ChannelId>,
    ) -> Result<(), RouteError> {
        out.clear();
        if src == dst {
            return Ok(());
        }
        let target = ends[dst];
        // Injection: the end node's first (for dual-ported nodes: only
        // the primary) attachment.
        let &(inject, mut cur) = net
            .channels_from(ends[src])
            .first()
            .expect("end node must be attached");
        out.push(inject);
        // A simple route visits each router at most once, so a walk
        // longer than the node count proves a revisit; the exact loop
        // sequence is reconstructed on that (cold) error path only.
        let cap = net.node_count();
        let mut hops = 0usize;
        loop {
            if cur == target {
                return Ok(());
            }
            hops += 1;
            if hops > cap {
                return Err(self.loop_error(net, ends, src, dst));
            }
            let port = self
                .get(cur, dst)
                .ok_or(RouteError::MissingEntry { router: cur, dst })?;
            let ch = net.channel_out(cur, port).ok_or(RouteError::DeadPort {
                router: cur,
                port,
                dst,
            })?;
            out.push(ch);
            let next = net.channel_dst(ch);
            if !net.is_router(next) && next != target {
                return Err(RouteError::Misdelivered {
                    src,
                    dst,
                    arrived: next,
                });
            }
            cur = next;
        }
    }

    /// Traces the route from end node `ends[src]` to `ends[dst]`.
    /// Returns the traversed channels, attach hops included. The empty
    /// path is returned for `src == dst`.
    pub fn trace(
        &self,
        net: &Network,
        ends: &[NodeId],
        src: usize,
        dst: usize,
    ) -> Result<Vec<ChannelId>, RouteError> {
        let mut path = Vec::new();
        self.trace_into(net, ends, src, dst, &mut path)?;
        Ok(path)
    }

    /// Re-walks a looping route with bookkeeping to reconstruct the
    /// visited-router sequence for the diagnostic.
    fn loop_error(&self, net: &Network, ends: &[NodeId], src: usize, dst: usize) -> RouteError {
        let mut visited: Vec<NodeId> = Vec::new();
        let mut seen = vec![false; net.node_count()];
        let target = ends[dst];
        let Some(&(_, mut cur)) = net.channels_from(ends[src]).first() else {
            return RouteError::ForwardingLoop { src, dst, visited };
        };
        loop {
            visited.push(cur);
            if seen[cur.index()] {
                return RouteError::ForwardingLoop { src, dst, visited };
            }
            seen[cur.index()] = true;
            let Some(port) = self.get(cur, dst) else {
                break;
            };
            let Some(ch) = net.channel_out(cur, port) else {
                break;
            };
            let next = net.channel_dst(ch);
            if next == target || !net.is_router(next) {
                break;
            }
            cur = next;
        }
        RouteError::ForwardingLoop { src, dst, visited }
    }
}

/// A non-allocating walk of one table route: yields the channel
/// sequence from `ends[src]` to `ends[dst]`, attach hops included,
/// looking each hop up in the table as it goes.
///
/// Tracing failures cannot be expressed mid-iteration, so the iterator
/// simply stops and records the failure; callers that care check
/// [`PathIter::error`] after exhaustion. (Certified tables never
/// fail, which is why the analyses can use this directly.)
pub struct PathIter<'a> {
    routes: &'a Routes,
    net: &'a Network,
    ends: &'a [NodeId],
    src: usize,
    dst: usize,
    cur: Option<NodeId>,
    started: bool,
    hops: usize,
    error: Option<RouteError>,
}

impl PathIter<'_> {
    /// The tracing failure that stopped the walk, if any.
    pub fn error(&self) -> Option<&RouteError> {
        self.error.as_ref()
    }

    /// Consumes the iterator, returning the tracing failure, if any.
    pub fn into_error(self) -> Option<RouteError> {
        self.error
    }
}

impl Iterator for PathIter<'_> {
    type Item = ChannelId;

    fn next(&mut self) -> Option<ChannelId> {
        if self.error.is_some() {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.src == self.dst {
                return None;
            }
            let &(inject, r) = self
                .net
                .channels_from(self.ends[self.src])
                .first()
                .expect("end node must be attached");
            self.cur = Some(r);
            return Some(inject);
        }
        let cur = self.cur?;
        let target = self.ends[self.dst];
        if cur == target {
            self.cur = None;
            return None;
        }
        self.hops += 1;
        if self.hops > self.net.node_count() {
            self.error = Some(
                self.routes
                    .loop_error(self.net, self.ends, self.src, self.dst),
            );
            return None;
        }
        let Some(port) = self.routes.get(cur, self.dst) else {
            self.error = Some(RouteError::MissingEntry {
                router: cur,
                dst: self.dst,
            });
            return None;
        };
        let Some(ch) = self.net.channel_out(cur, port) else {
            self.error = Some(RouteError::DeadPort {
                router: cur,
                port,
                dst: self.dst,
            });
            return None;
        };
        let next = self.net.channel_dst(ch);
        if !self.net.is_router(next) && next != target {
            self.error = Some(RouteError::Misdelivered {
                src: self.src,
                dst: self.dst,
                arrived: next,
            });
            return None;
        }
        self.cur = Some(next);
        Some(ch)
    }
}

/// Every source→destination path of a network, traced and frozen — a
/// **derived view** of [`Routes`].
///
/// Most consumers walk tables directly now; this dense matrix remains
/// for per-pair route generators that tables cannot express (corrupted
/// or hand-built fixtures, the frozen legacy sim mode) and for tests
/// comparing the two representations.
#[derive(Clone, Debug)]
pub struct RouteSet {
    /// `paths[src][dst]`; empty vector on the diagonal.
    paths: Vec<Vec<Vec<ChannelId>>>,
}

impl RouteSet {
    /// Traces all pairs through routing tables.
    pub fn from_table(net: &Network, ends: &[NodeId], routes: &Routes) -> Result<Self, RouteError> {
        let n = ends.len();
        let mut paths = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(routes.trace(net, ends, s, d)?);
            }
            paths.push(row);
        }
        Ok(RouteSet { paths })
    }

    /// Traces all pairs through routing tables, leaving pairs that fail
    /// to trace (severed destinations after a partial repair) with
    /// empty paths instead of aborting.
    pub fn from_table_lossy(net: &Network, ends: &[NodeId], routes: &Routes) -> Self {
        RouteSet::from_pairs(ends.len(), |s, d| {
            routes.trace(net, ends, s, d).unwrap_or_default()
        })
    }

    /// Builds a route set from a per-pair path generator (for path
    /// collections no destination table expresses, e.g. deliberately
    /// corrupted fixtures). `f(src, dst)` must return the channel
    /// sequence from `ends[src]` to `ends[dst]`.
    pub fn from_pairs(n: usize, mut f: impl FnMut(usize, usize) -> Vec<ChannelId>) -> Self {
        let mut paths = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                row.push(if s == d { Vec::new() } else { f(s, d) });
            }
            paths.push(row);
        }
        RouteSet { paths }
    }

    /// Number of end nodes.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether there are no end nodes.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The channel sequence for `src → dst` (empty on the diagonal).
    pub fn path(&self, src: usize, dst: usize) -> &[ChannelId] {
        &self.paths[src][dst]
    }

    /// Iterates over all ordered pairs with their paths
    /// (diagonal excluded).
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, &[ChannelId])> + '_ {
        let n = self.len();
        (0..n).flat_map(move |s| {
            (0..n)
                .filter(move |&d| d != s)
                .map(move |d| (s, d, self.paths[s][d].as_slice()))
        })
    }

    /// Bytes resident in the dense matrix, counting the nested vector
    /// headers — the O(N² · path length) side of the memory-model
    /// comparison with [`Routes::resident_bytes`].
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.paths.capacity() * size_of::<Vec<Vec<ChannelId>>>()
            + self
                .paths
                .iter()
                .map(|row| {
                    row.capacity() * size_of::<Vec<ChannelId>>()
                        + row
                            .iter()
                            .map(|p| p.capacity() * size_of::<ChannelId>())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Router hops of a route (channels minus the injection channel).
    pub fn router_hops(&self, src: usize, dst: usize) -> usize {
        self.paths[src][dst].len().saturating_sub(1)
    }

    /// Mean router hops over all ordered pairs — the routed counterpart
    /// of the topological average; equal for minimal routings.
    pub fn avg_router_hops(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let total: usize = self.pairs().map(|(_, _, p)| p.len() - 1).sum();
        total as f64 / (n * (n - 1)) as f64
    }

    /// Maximum router hops over all ordered pairs.
    pub fn max_router_hops(&self) -> usize {
        self.pairs()
            .map(|(_, _, p)| p.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Checks the fixed-path in-order-delivery property at the route
    /// level: tracing is deterministic by construction, so this
    /// verifies the paths are *simple* (no repeated channel), which the
    /// tracer guarantees for table routes but per-pair generators might
    /// violate.
    pub fn check_simple(&self) -> Result<(), (usize, usize)> {
        for (s, d, p) in self.pairs() {
            let mut seen: Vec<ChannelId> = p.to_vec();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            if seen.len() != before {
                return Err((s, d));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::{LinkClass, Network};

    /// Two routers, one end node each: n0 - r0 - r1 - n1.
    fn dumbbell() -> (Network, Vec<NodeId>, NodeId, NodeId) {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let r1 = net.add_router("r1", 6);
        net.connect(r0, PortId(0), r1, PortId(0), LinkClass::Local)
            .unwrap();
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        net.connect(r0, PortId(1), n0, PortId(0), LinkClass::Attach)
            .unwrap();
        net.connect(r1, PortId(1), n1, PortId(0), LinkClass::Attach)
            .unwrap();
        (net, vec![n0, n1], r0, r1)
    }

    #[test]
    fn trace_follows_tables() {
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(1));
        routes.set(r1, 0, PortId(0));
        routes.set(r0, 0, PortId(1));
        let p = routes.trace(&net, &ends, 0, 1).unwrap();
        assert_eq!(p.len(), 3); // attach, inter-router, attach
        assert_eq!(net.channel_src(p[0]), ends[0]);
        assert_eq!(net.channel_dst(p[2]), ends[1]);
    }

    #[test]
    fn from_pair_paths_roundtrips_table_derived_routes() {
        // Route sets traced from tables are coherent by construction,
        // so projecting them back must reproduce every entry a route
        // actually exercises.
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(1));
        routes.set(r1, 0, PortId(0));
        routes.set(r0, 0, PortId(1));
        let rs = RouteSet::from_table(&net, &ends, &routes).unwrap();
        let back = Routes::from_pair_paths(&net, &ends, &rs).expect("coherent projection");
        for s in 0..2 {
            for d in 0..2 {
                if s == d {
                    continue;
                }
                assert_eq!(
                    back.trace(&net, &ends, s, d),
                    routes.trace(&net, &ends, s, d)
                );
            }
        }
    }

    #[test]
    fn from_pair_paths_rejects_incoherent_routes() {
        // n0 - r0 - r1 - n1 with a second r0-r1 cable: send pair 0->1
        // over one cable and... a conflicting delivery is impossible on
        // this tiny net from 2 ends, so use a 3-end star instead: two
        // sources reach the same destination through the same router by
        // different ports.
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let r1 = net.add_router("r1", 6);
        let r2 = net.add_router("r2", 6);
        net.connect(r0, PortId(0), r2, PortId(0), LinkClass::Local)
            .unwrap();
        net.connect(r1, PortId(0), r2, PortId(1), LinkClass::Local)
            .unwrap();
        net.connect(r0, PortId(2), r1, PortId(2), LinkClass::Local)
            .unwrap();
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        let n2 = net.add_end_node("n2");
        net.connect(r0, PortId(1), n0, PortId(0), LinkClass::Attach)
            .unwrap();
        net.connect(r1, PortId(1), n1, PortId(0), LinkClass::Attach)
            .unwrap();
        net.connect(r2, PortId(2), n2, PortId(0), LinkClass::Attach)
            .unwrap();
        let ends = vec![n0, n1, n2];
        // Pair 0->2 goes n0,r0,r2,n2; pair 1->2 goes n1,r1,r0,r2? No —
        // make 1->2 route n1,r1,r0,r1,... keep it simple: route 1->2 as
        // n1 -> r1 -> r0 -> r2 -> n2, so r0 forwards dst 2 via its r2
        // port, consistent; then make 0->2 instead detour n0 -> r0 ->
        // r1 -> r2 -> n2: now r0 forwards dst 2 via its r1 port for
        // pair 0 but via its r2 port for pair 1 — incoherent.
        let path_0_2 = |net: &Network| -> Vec<ChannelId> { pick_path(net, &[n0, r0, r1, r2, n2]) };
        let path_1_2 = |net: &Network| -> Vec<ChannelId> { pick_path(net, &[n1, r1, r0, r2, n2]) };
        let p02 = path_0_2(&net);
        let p12 = path_1_2(&net);
        let rs = RouteSet::from_pairs(3, |s, d| match (s, d) {
            (0, 2) => p02.clone(),
            (1, 2) => p12.clone(),
            _ => Vec::new(),
        });
        assert!(Routes::from_pair_paths(&net, &ends, &rs).is_none());
    }

    /// Builds the channel sequence visiting the given nodes in order.
    fn pick_path(net: &Network, nodes: &[NodeId]) -> Vec<ChannelId> {
        nodes
            .windows(2)
            .map(|w| {
                net.channels_from(w[0])
                    .iter()
                    .find(|&&(_, dst)| dst == w[1])
                    .expect("adjacent nodes")
                    .0
            })
            .collect()
    }

    #[test]
    fn path_iter_matches_trace_without_allocating() {
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(1));
        routes.set(r1, 0, PortId(0));
        routes.set(r0, 0, PortId(1));
        for s in 0..2 {
            for d in 0..2 {
                let traced = routes.trace(&net, &ends, s, d).unwrap();
                let mut it = routes.path_iter(&net, &ends, s, d);
                let walked: Vec<ChannelId> = it.by_ref().collect();
                assert_eq!(walked, traced, "{s}->{d}");
                assert!(it.error().is_none());
            }
        }
    }

    #[test]
    fn path_iter_reports_missing_entry() {
        let (net, ends, _, _) = dumbbell();
        let routes = Routes::new(&net, 2);
        let mut it = routes.path_iter(&net, &ends, 0, 1);
        assert_eq!(it.by_ref().count(), 1); // injection channel only
        assert!(matches!(
            it.error(),
            Some(RouteError::MissingEntry { dst: 1, .. })
        ));
    }

    #[test]
    fn missing_entry_reported() {
        let (net, ends, r0, _) = dumbbell();
        let routes = Routes::new(&net, 2);
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(err, RouteError::MissingEntry { router: r0, dst: 1 });
    }

    #[test]
    fn dead_port_reported() {
        let (net, ends, r0, _) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(5));
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(
            err,
            RouteError::DeadPort {
                router: r0,
                port: PortId(5),
                dst: 1
            }
        );
    }

    #[test]
    fn forwarding_loop_reports_visited_routers() {
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        // r0 and r1 bounce destination 1 between each other.
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(0));
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        let RouteError::ForwardingLoop { src, dst, visited } = err else {
            panic!("expected a forwarding loop, got {err:?}");
        };
        assert_eq!((src, dst), (0, 1));
        // The walk is r0 -> r1 -> r0: the repeated router bookends it.
        assert_eq!(visited, vec![r0, r1, r0]);
        // And the rendering names the loop.
        let msg = RouteError::ForwardingLoop { src, dst, visited }.to_string();
        assert!(msg.contains("via"), "{msg}");
    }

    #[test]
    fn misdelivery_detected() {
        let (net, ends, r0, _) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        // r0 sends destination-1 packets into its own end node n0.
        routes.set(r0, 1, PortId(1));
        let err = routes.trace(&net, &ends, 0, 1).unwrap_err();
        assert_eq!(
            err,
            RouteError::Misdelivered {
                src: 0,
                dst: 1,
                arrived: ends[0]
            }
        );
    }

    #[test]
    fn self_route_is_empty() {
        let (net, ends, _, _) = dumbbell();
        let routes = Routes::new(&net, 2);
        assert!(routes.trace(&net, &ends, 0, 0).unwrap().is_empty());
        assert_eq!(routes.path_iter(&net, &ends, 0, 0).count(), 0);
    }

    #[test]
    fn table_is_an_order_of_magnitude_smaller_than_dense_paths() {
        let (net, ends, r0, r1) = dumbbell();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(1));
        routes.set(r1, 0, PortId(0));
        routes.set(r0, 0, PortId(1));
        let rs = RouteSet::from_table(&net, &ends, &routes).unwrap();
        // Even at N=2 the byte rows undercut the nested vectors.
        assert!(routes.resident_bytes() < rs.resident_bytes());
    }

    #[test]
    fn route_set_statistics() {
        let (net, ends, r0, r1) = dumbbell();
        let routes = Routes::from_fn(&net, 2, |r, dst| {
            Some(match (r, dst) {
                (x, 0) if x == r0 => PortId(1),
                (x, 1) if x == r0 => PortId(0),
                (x, 0) if x == r1 => PortId(0),
                _ => PortId(1),
            })
        });
        let rs = RouteSet::from_table(&net, &ends, &routes).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.router_hops(0, 1), 2);
        assert_eq!(rs.avg_router_hops(), 2.0);
        assert_eq!(rs.max_router_hops(), 2);
        assert!(rs.check_simple().is_ok());
        assert_eq!(rs.pairs().count(), 2);
    }
}
