//! Routing for fully-connected router clusters (Fig 3/4).
//!
//! Every router pair is directly cabled, so the route is: cross at most
//! one inter-router link, then deliver. "Routing within this assembly
//! routes packets based on exactly two bits of the destination node
//! identifier" — here the two bits are the destination's router index
//! within the cluster.

use crate::table::Routes;
use fractanet_graph::PortId;
use fractanet_topo::{FullyConnectedCluster, Topology};

/// Builds destination tables for a cluster.
pub fn cluster_routes(c: &FullyConnectedCluster) -> Routes {
    let m = c.router_count();
    let npr = c.nodes_per_router();
    Routes::from_fn(c.net(), c.end_nodes().len(), |router, dst| {
        let i = (0..m).find(|&i| c.router(i) == router)?;
        let j = c.router_of_addr(dst);
        if i == j {
            // Attach port: node ports start after the m-1 cluster ports.
            Some(PortId((m - 1 + dst % npr) as u8))
        } else {
            // Clique port convention: peer j sits on port j-1 when
            // j > i, else port j.
            Some(PortId(if j > i { j - 1 } else { j } as u8))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteSet;
    use fractanet_topo::{FullyConnectedCluster, Topology};

    #[test]
    fn tetrahedron_routes_are_minimal() {
        let t = FullyConnectedCluster::tetrahedron();
        let routes = cluster_routes(&t);
        let rs = RouteSet::from_table(t.net(), t.end_nodes(), &routes).unwrap();
        // Same-router pairs: 1 hop; cross-router: 2 hops. Never more.
        for (s, d, p) in rs.pairs() {
            let same = t.router_of_addr(s) == t.router_of_addr(d);
            assert_eq!(p.len() - 1, if same { 1 } else { 2 }, "{s}->{d}");
        }
        assert_eq!(rs.max_router_hops(), 2);
    }

    #[test]
    fn all_cluster_sizes_route() {
        for m in 1..=6usize {
            let c = FullyConnectedCluster::new(m, 6).unwrap();
            let routes = cluster_routes(&c);
            let rs = RouteSet::from_table(c.net(), c.end_nodes(), &routes).unwrap();
            assert!(rs.max_router_hops() <= 2, "m = {m}");
            assert!(rs.check_simple().is_ok());
        }
    }

    #[test]
    fn two_router_cluster_crosses_single_link() {
        let c = FullyConnectedCluster::new(2, 6).unwrap();
        let routes = cluster_routes(&c);
        let rs = RouteSet::from_table(c.net(), c.end_nodes(), &routes).unwrap();
        // Addresses 0..5 on router 0, 5..10 on router 1.
        let p = rs.path(0, 9);
        assert_eq!(p.len(), 3);
    }
}
