//! A unified per-pair path view over either routing representation.
//!
//! The analyses (lint L1–L5, the channel-dependency graph, hop /
//! contention / utilization metrics) all want the same thing: every
//! ordered source→destination path, once. [`Paths`] hands them that
//! without dictating a representation — a dense [`RouteSet`] is walked
//! in place, while canonical [`Routes`] tables are traced pair by pair
//! into one reused scratch buffer, so no O(N² · path length) matrix is
//! ever materialized for analysis.

use crate::table::{RouteError, RouteSet, Routes};
use fractanet_graph::{ChannelId, Network, NodeId};

/// A read-only view of every ordered pair's path.
#[derive(Clone, Copy)]
pub enum Paths<'a> {
    /// A frozen dense matrix (per-pair generators, corrupted fixtures).
    Dense(&'a RouteSet),
    /// Canonical destination tables, traced lazily per pair.
    Tables {
        /// The network the tables route.
        net: &'a Network,
        /// Addressable end nodes, in address order.
        ends: &'a [NodeId],
        /// The destination-indexed tables.
        routes: &'a Routes,
    },
}

impl<'a> Paths<'a> {
    /// View over a frozen dense route set.
    pub fn dense(routes: &'a RouteSet) -> Self {
        Paths::Dense(routes)
    }

    /// View over canonical destination tables.
    pub fn tables(net: &'a Network, ends: &'a [NodeId], routes: &'a Routes) -> Self {
        Paths::Tables { net, ends, routes }
    }

    /// Number of end nodes.
    pub fn len(&self) -> usize {
        match self {
            Paths::Dense(rs) => rs.len(),
            Paths::Tables { ends, .. } => ends.len(),
        }
    }

    /// Whether there are no end nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f` once per ordered pair (diagonal excluded) with the
    /// pair's path, or the tracing failure for table views whose route
    /// cannot be walked (dense views never fail). The path slice is
    /// only valid for the duration of the call — table views reuse one
    /// scratch buffer across pairs.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize, Result<&[ChannelId], RouteError>)) {
        match self {
            Paths::Dense(rs) => {
                for (s, d, p) in rs.pairs() {
                    f(s, d, Ok(p));
                }
            }
            Paths::Tables { net, ends, routes } => {
                let n = ends.len();
                let mut scratch: Vec<ChannelId> = Vec::new();
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        match routes.trace_into(net, ends, s, d, &mut scratch) {
                            Ok(()) => f(s, d, Ok(&scratch)),
                            Err(e) => f(s, d, Err(e)),
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::{LinkClass, Network, PortId};

    fn dumbbell() -> (Network, Vec<NodeId>, Routes) {
        let mut net = Network::new();
        let r0 = net.add_router("r0", 6);
        let r1 = net.add_router("r1", 6);
        net.connect(r0, PortId(0), r1, PortId(0), LinkClass::Local)
            .unwrap();
        let n0 = net.add_end_node("n0");
        let n1 = net.add_end_node("n1");
        net.connect(r0, PortId(1), n0, PortId(0), LinkClass::Attach)
            .unwrap();
        net.connect(r1, PortId(1), n1, PortId(0), LinkClass::Attach)
            .unwrap();
        let mut routes = Routes::new(&net, 2);
        routes.set(r0, 1, PortId(0));
        routes.set(r1, 1, PortId(1));
        routes.set(r1, 0, PortId(0));
        routes.set(r0, 0, PortId(1));
        (net, vec![n0, n1], routes)
    }

    #[test]
    fn table_view_agrees_with_dense_view() {
        let (net, ends, routes) = dumbbell();
        let rs = RouteSet::from_table(&net, &ends, &routes).unwrap();
        let mut dense: Vec<(usize, usize, Vec<ChannelId>)> = Vec::new();
        Paths::dense(&rs).for_each_pair(|s, d, p| dense.push((s, d, p.unwrap().to_vec())));
        let mut tabled: Vec<(usize, usize, Vec<ChannelId>)> = Vec::new();
        Paths::tables(&net, &ends, &routes)
            .for_each_pair(|s, d, p| tabled.push((s, d, p.unwrap().to_vec())));
        assert_eq!(dense, tabled);
        assert_eq!(Paths::dense(&rs).len(), 2);
        assert_eq!(Paths::tables(&net, &ends, &routes).len(), 2);
    }

    #[test]
    fn table_view_surfaces_trace_errors() {
        let (net, ends, _) = dumbbell();
        let empty = Routes::new(&net, 2);
        let mut errors = 0;
        Paths::tables(&net, &ends, &empty).for_each_pair(|_, _, p| {
            if p.is_err() {
                errors += 1;
            }
        });
        assert_eq!(errors, 2);
    }
}
