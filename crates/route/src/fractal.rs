//! Depth-first fractahedral routing — the paper's §2.3–2.4 algorithm
//! and its deadlock-avoidance core.
//!
//! "Routing in multilayer networks is done depth-first by examining
//! address bits from high-order to low order. At any level, if there is
//! no match in the address bits above those controlling that level's
//! tetrahedron, then the packet is sent to the next higher level. …
//! packets always go straight up the tree without taking any
//! inter-tetrahedral links. Those links are used only on the way down."
//!
//! Concretely, at a router of level `k` (stack `s`, corner `cr`), for a
//! destination whose level-1 tetrahedron is `t`:
//!
//! * if `t` is **outside** this stack's subtree → ascend. Fat: the
//!   router's own up port, always ("the routing algorithm always takes
//!   a local inter-level link rather than going through a neighboring
//!   inter-level link" — §2.4's loop-elimination rule). Thin: move to
//!   corner 0 (the tetrahedron's single up connection) first if needed.
//! * if inside and `k = 1` → deliver: move to the destination corner if
//!   needed, then out the attach port.
//! * if inside and `k > 1` → descend: the child digit `c` of the
//!   destination address selects stack corner `⌊c/2⌋`, down port
//!   `c mod 2`; move within the (current layer's) tetrahedron to that
//!   corner if needed.
//!
//! Intra-tetrahedron hops happen at most once per tetrahedron and never
//! chain (the clique is fully connected), which is why the
//! channel-dependency graph stays acyclic even though the fat
//! fractahedron is full of physical loops — verified in
//! `fractanet-deadlock`.

use crate::table::Routes;
use fractanet_graph::PortId;
use fractanet_topo::fractahedron::PORT_UP;
use fractanet_topo::{Fractahedron, Topology, Variant};

/// Builds destination tables for a fractahedron (tetrahedron routers
/// and, when present, fan-out routers).
pub fn fractal_routes(f: &Fractahedron) -> Routes {
    let n_addr = f.end_nodes().len();
    // Fan-out router -> attach index, precomputed (dense by NodeId).
    let mut fanout_attach: Vec<Option<usize>> = vec![None; f.net().node_count()];
    for a in 0.. {
        match f.fanout_router(a) {
            Some(r) => fanout_attach[r.index()] = Some(a),
            None => break,
        }
    }
    Routes::from_fn(f.net(), n_addr, |router, dst| {
        let t = f.tetra_of_addr(dst);
        if let Some(pos) = f.pos_of(router) {
            let (k, s, cr) = (pos.level, pos.stack, pos.corner);
            if f.stack_of_tetra(t, k) != s {
                // Ascend.
                return Some(match f.variant() {
                    Variant::Fat => PORT_UP,
                    Variant::Thin => {
                        if cr == 0 {
                            PORT_UP
                        } else {
                            Fractahedron::intra_port(cr, 0)
                        }
                    }
                });
            }
            if k == 1 {
                // Deliver within this tetrahedron.
                let c_d = f.corner_of_addr(dst);
                return Some(if cr == c_d {
                    PortId(f.port_of_addr(dst) as u8)
                } else {
                    Fractahedron::intra_port(cr, c_d)
                });
            }
            // Descend one level.
            let c = f.child_digit(t, k);
            let corner = c / 2;
            Some(if cr == corner {
                PortId((c % 2) as u8)
            } else {
                Fractahedron::intra_port(cr, corner)
            })
        } else {
            // Fan-out router: deliver locally or climb to the
            // tetrahedron level.
            let attach = fanout_attach[router.index()]?;
            Some(if f.attach_of_addr(dst) == attach {
                PortId((dst % 2) as u8)
            } else {
                PORT_UP
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteSet;
    use fractanet_graph::bfs;

    fn routed(f: &Fractahedron) -> RouteSet {
        RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(f)).unwrap()
    }

    #[test]
    fn single_tetrahedron_two_bit_routing() {
        // "routes packets based on exactly two bits of the destination
        // node identifier": corner bits.
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = routed(&f);
        assert_eq!(rs.max_router_hops(), 2);
        assert_eq!(rs.router_hops(0, 1), 1); // same router
        assert_eq!(rs.router_hops(0, 7), 2); // corner 0 -> corner 3
    }

    #[test]
    fn fat_64_routes_are_minimal() {
        let f = Fractahedron::paper_fat_64();
        let rs = routed(&f);
        for (s, d, p) in rs.pairs() {
            let want =
                bfs::router_hops(f.net(), f.end_nodes()[s], f.end_nodes()[d]).unwrap() as usize;
            assert_eq!(p.len() - 1, want, "{s}->{d}");
        }
        assert!(
            (rs.avg_router_hops() - 271.0 / 63.0).abs() < 1e-9,
            "Table 2: 4.3 average"
        );
        assert_eq!(rs.max_router_hops(), 5, "Table 1: 3N-1");
    }

    #[test]
    fn thin_64_routes_match_delay_formula() {
        let f = Fractahedron::new(2, Variant::Thin, false).unwrap();
        let rs = routed(&f);
        assert_eq!(rs.max_router_hops(), 6, "Table 1: 4N-2");
        for (s, d, p) in rs.pairs() {
            let want =
                bfs::router_hops(f.net(), f.end_nodes()[s], f.end_nodes()[d]).unwrap() as usize;
            assert_eq!(p.len() - 1, want, "{s}->{d}");
        }
    }

    #[test]
    fn fat_ascends_by_local_up_links_only() {
        // §2.4: on the way up a packet must never take an
        // intra-tetrahedron link.
        let f = Fractahedron::paper_fat_64();
        let rs = routed(&f);
        for (s, d, p) in rs.pairs() {
            // The hop sequence must be up* (lateral|down)*: in the fat
            // variant the ascent is pure up links; the first lateral or
            // down hop ends it for good.
            let mut ascent_over = false;
            for &ch in &p[1..p.len() - 1] {
                let src_level = f.pos_of(f.net().channel_src(ch)).unwrap().level;
                let dst_level = f.pos_of(f.net().channel_dst(ch)).unwrap().level;
                if dst_level > src_level {
                    assert!(!ascent_over, "{s}->{d}: ascended after turning down");
                } else {
                    ascent_over = true;
                }
            }
        }
    }

    #[test]
    fn thin_three_levels_route_everywhere() {
        let f = Fractahedron::new(3, Variant::Thin, false).unwrap();
        let rs = routed(&f);
        assert_eq!(rs.len(), 512);
        assert_eq!(rs.max_router_hops(), 10, "4N-2 for N=3");
        assert!(rs.check_simple().is_ok());
    }

    #[test]
    fn fanout_routing_delivers() {
        let f = Fractahedron::new(1, Variant::Fat, true).unwrap();
        let rs = routed(&f);
        assert_eq!(rs.len(), 16);
        // Same fan-out router: CPU -> fanout -> CPU = 1 router hop.
        assert_eq!(rs.router_hops(0, 1), 1);
        // §2.2: 16-CPU system, max four router hops.
        assert_eq!(rs.max_router_hops(), 4);
    }

    #[test]
    fn fanout_1024_spot_routes() {
        let f = Fractahedron::paper_thin_1024();
        let routes = fractal_routes(&f);
        // Spot-check a handful of pairs rather than tracing all 1024².
        for (s, d) in [
            (0usize, 1023usize),
            (124, 1023),
            (5, 4),
            (512, 17),
            (1000, 3),
        ] {
            let p = routes.trace(f.net(), f.end_nodes(), s, d).unwrap();
            assert_eq!(f.net().channel_dst(*p.last().unwrap()), f.end_nodes()[d]);
            let want =
                bfs::router_hops(f.net(), f.end_nodes()[s], f.end_nodes()[d]).unwrap() as usize;
            assert_eq!(p.len() - 1, want, "{s}->{d} not minimal");
        }
    }

    #[test]
    fn fat_three_levels_max_delay() {
        let f = Fractahedron::new(3, Variant::Fat, false).unwrap();
        let routes = fractal_routes(&f);
        // Worst-case-ish pair: different top-level children, far
        // corners.
        let p = routes.trace(f.net(), f.end_nodes(), 511, 0).unwrap();
        assert!(p.len() - 1 <= 8, "3N-1 = 8 for N=3, got {}", p.len() - 1);
        // Sampled pairs all deliver.
        for (s, d) in [(0usize, 511usize), (8, 250), (100, 400), (77, 78)] {
            let p = routes.trace(f.net(), f.end_nodes(), s, d).unwrap();
            assert_eq!(f.net().channel_dst(*p.last().unwrap()), f.end_nodes()[d]);
        }
    }
}
