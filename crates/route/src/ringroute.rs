//! Ring routing — the Fig 1 deadlock demonstration.
//!
//! Two table variants:
//!
//! * [`ring_clockwise_routes`] — every packet travels clockwise. On a
//!   4-ring this is exactly Figure 1: four simultaneous two-hop
//!   transfers close a channel-dependency cycle and wormhole routing
//!   deadlocks.
//! * [`ring_shortest_routes`] — minimal routing, clockwise on ties.
//!   Still cyclic for rings of ≥ 4 routers (the paper's point that
//!   "this deadlock situation can occur in any network with loops in
//!   the connection graph"), but cheaper on average.
//!
//! The deadlock-free alternative for the Fig 1 shape is to treat the
//! 4-ring as a 2×2 mesh and use dimension-order routing
//! ([`crate::dor::mesh_xy_routes`]): "With this rule applied in Figure
//! 1, routes A and C would be allowed, but routes B and D would be
//! disallowed, thus preventing the deadlock situation."

use crate::table::Routes;
use fractanet_graph::PortId;
use fractanet_topo::ring::{PORT_CCW, PORT_CW, PORT_NODE0};
use fractanet_topo::{Ring, Topology};

fn router_index(r: &Ring, router: fractanet_graph::NodeId) -> Option<usize> {
    (0..r.len()).find(|&i| r.router(i) == router)
}

/// All-clockwise tables.
pub fn ring_clockwise_routes(r: &Ring) -> Routes {
    let npr = r.nodes_per_router();
    Routes::from_fn(r.net(), r.end_nodes().len(), |router, dst| {
        let i = router_index(r, router)?;
        let j = r.router_of_addr(dst);
        Some(if i == j {
            PortId(PORT_NODE0.0 + (dst % npr) as u8)
        } else {
            PORT_CW
        })
    })
}

/// Minimal tables, clockwise on ties.
pub fn ring_shortest_routes(r: &Ring) -> Routes {
    let n = r.len();
    let npr = r.nodes_per_router();
    Routes::from_fn(r.net(), r.end_nodes().len(), |router, dst| {
        let i = router_index(r, router)?;
        let j = r.router_of_addr(dst);
        if i == j {
            return Some(PortId(PORT_NODE0.0 + (dst % npr) as u8));
        }
        let cw = (j + n - i) % n;
        Some(if cw <= n - cw { PORT_CW } else { PORT_CCW })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteSet;

    #[test]
    fn clockwise_goes_the_long_way() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        // 1 -> 0 takes 3 inter-router hops clockwise.
        assert_eq!(rs.router_hops(1, 0), 4);
        assert_eq!(rs.router_hops(0, 1), 2);
    }

    #[test]
    fn shortest_picks_the_near_side() {
        let r = Ring::new(6, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_shortest_routes(&r)).unwrap();
        assert_eq!(rs.router_hops(0, 1), 2);
        assert_eq!(rs.router_hops(0, 5), 2);
        assert_eq!(rs.router_hops(0, 3), 4); // tie: clockwise
        assert!(rs.check_simple().is_ok());
    }

    #[test]
    fn multiple_nodes_per_router() {
        let r = Ring::new(4, 2, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_shortest_routes(&r)).unwrap();
        assert_eq!(rs.router_hops(0, 1), 1); // same router
        assert_eq!(rs.router_hops(0, 3), 2);
    }
}
