//! Fully-connected router clusters — the paper's §2.1 building block
//! ("The basic building blocks for the new topologies are
//! fully-connected assemblies of routers", Fig 3) including the
//! tetrahedron of Fig 4.
//!
//! With `m` routers of `p` ports, each router spends `m − 1` ports on
//! inter-router links, leaving `p − m + 1` ports per router for end
//! nodes. For 6-port routers this yields the Fig 3 series:
//!
//! | routers | node ports | max link contention |
//! |---------|------------|---------------------|
//! | 1       | 6          | — (no inter-router links) |
//! | 2       | 10         | 5:1 |
//! | 3       | 12         | 4:1 |
//! | 4       | 12         | 3:1 |  ← the tetrahedron
//! | 5       | 10         | 2:1 |
//! | 6       | 6          | 1:1 |
//!
//! Port convention: on router `r`, port `q` (for `q < m − 1`) carries
//! the link to router `q` if `q < r`, else to router `q + 1`; ports
//! `m − 1 ..` attach end nodes.

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// A fully-connected assembly of `m` routers with all remaining ports
/// populated by end nodes.
#[derive(Clone, Debug)]
pub struct FullyConnectedCluster {
    net: Network,
    m: usize,
    router_ports: u8,
    nodes_per_router: usize,
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl FullyConnectedCluster {
    /// Builds the cluster with every spare port populated
    /// (`nodes_per_router = ports − m + 1`).
    pub fn new(m: usize, router_ports: u8) -> Result<Self, GraphError> {
        let spare = router_ports as usize + 1 - m;
        Self::with_nodes(m, router_ports, spare)
    }

    /// Builds the cluster with a chosen number of end nodes per router
    /// (`≤ ports − m + 1`).
    pub fn with_nodes(
        m: usize,
        router_ports: u8,
        nodes_per_router: usize,
    ) -> Result<Self, GraphError> {
        assert!(m >= 1, "cluster needs at least one router");
        assert!(
            m - 1 + nodes_per_router <= router_ports as usize,
            "{m}-router cluster leaves only {} node ports per router",
            router_ports as usize + 1 - m
        );
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..m)
            .map(|i| net.add_router(format!("R{i}"), router_ports))
            .collect();
        for i in 0..m {
            for j in (i + 1)..m {
                // Port on i for peer j is j-1 (peers i+1.. shift down by
                // one); port on j for peer i is i.
                net.connect(
                    routers[i],
                    PortId((j - 1) as u8),
                    routers[j],
                    PortId(i as u8),
                    LinkClass::Local,
                )?;
            }
        }
        let mut ends = Vec::new();
        for (i, &r) in routers.iter().enumerate() {
            for k in 0..nodes_per_router {
                let e = net.add_end_node(format!("N{i}.{k}"));
                net.connect(
                    r,
                    PortId((m - 1 + k) as u8),
                    e,
                    PortId(0),
                    LinkClass::Attach,
                )?;
                ends.push(e);
            }
        }
        Ok(FullyConnectedCluster {
            net,
            m,
            router_ports,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// The Fig 4 tetrahedron: 4 fully-connected 6-port routers with 12
    /// end-node ports.
    pub fn tetrahedron() -> Self {
        Self::new(4, 6).expect("tetrahedron always fits 6-port routers")
    }

    /// Number of routers in the assembly.
    pub fn router_count(&self) -> usize {
        self.m
    }

    /// Router ports.
    pub fn router_ports(&self) -> u8 {
        self.router_ports
    }

    /// End nodes per router.
    pub fn nodes_per_router(&self) -> usize {
        self.nodes_per_router
    }

    /// Total end-node ports (the paper's Fig 3 "ports" column) —
    /// available even if fewer nodes were populated.
    pub fn total_node_ports(&self) -> usize {
        self.m * (self.router_ports as usize + 1 - self.m)
    }

    /// The predicted maximum link contention for a fully-populated
    /// cluster: all nodes on one router sending to the nodes of one
    /// other router share a single inter-router link (Fig 3's
    /// right-hand column). `None` for the single-router cluster, which
    /// has no inter-router links.
    pub fn predicted_contention(&self) -> Option<usize> {
        (self.m >= 2).then_some(self.router_ports as usize + 1 - self.m)
    }

    /// Router `i`.
    pub fn router(&self, i: usize) -> NodeId {
        self.routers[i]
    }

    /// Router index of an end-node address.
    pub fn router_of_addr(&self, addr: usize) -> usize {
        addr / self.nodes_per_router
    }
}

impl Topology for FullyConnectedCluster {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("clique {}x{}p", self.m, self.router_ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn fig3_port_series() {
        // The Fig 3 table: node ports for m = 1..6 six-port routers.
        let expect = [6, 10, 12, 12, 10, 6];
        for (m, &ports) in (1..=6).zip(expect.iter()) {
            let c = FullyConnectedCluster::new(m, 6).unwrap();
            assert_eq!(c.total_node_ports(), ports, "m = {m}");
            assert_eq!(c.end_nodes().len(), ports);
            c.net().validate().unwrap();
        }
    }

    #[test]
    fn fig3_contention_series() {
        let expect = [None, Some(5), Some(4), Some(3), Some(2), Some(1)];
        for (m, &pred) in (1..=6).zip(expect.iter()) {
            let c = FullyConnectedCluster::new(m, 6).unwrap();
            assert_eq!(c.predicted_contention(), pred, "m = {m}");
        }
    }

    #[test]
    fn tetrahedron_shape() {
        let t = FullyConnectedCluster::tetrahedron();
        assert_eq!(t.router_count(), 4);
        assert_eq!(t.end_nodes().len(), 12);
        assert_eq!(t.nodes_per_router(), 3);
        // 6 inter-router links (tetrahedron edges).
        let inter = t
            .net()
            .links()
            .filter(|&l| t.net().link(l).class == LinkClass::Local)
            .count();
        assert_eq!(inter, 6);
        // Every router pair is directly cabled.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(t.net().channel_between(t.router(i), t.router(j)).is_some());
                }
            }
        }
    }

    #[test]
    fn all_end_pairs_within_two_router_hops() {
        let t = FullyConnectedCluster::tetrahedron();
        assert_eq!(bfs::max_router_hops(t.net()), Some(2));
    }

    #[test]
    fn port_convention_is_consistent() {
        let c = FullyConnectedCluster::new(4, 6).unwrap();
        // Router 0 port 2 should reach router 3; router 3 port 0
        // should reach router 0.
        let ch = c.net().channel_out(c.router(0), PortId(2)).unwrap();
        assert_eq!(c.net().channel_dst(ch), c.router(3));
        let ch = c.net().channel_out(c.router(3), PortId(0)).unwrap();
        assert_eq!(c.net().channel_dst(ch), c.router(0));
    }

    #[test]
    fn partial_population() {
        let c = FullyConnectedCluster::with_nodes(4, 6, 2).unwrap();
        assert_eq!(c.end_nodes().len(), 8);
        assert_eq!(c.total_node_ports(), 12);
    }

    #[test]
    #[should_panic(expected = "node ports per router")]
    fn overcommit_rejected() {
        let _ = FullyConnectedCluster::with_nodes(4, 6, 4);
    }

    #[test]
    fn single_router_cluster() {
        let c = FullyConnectedCluster::new(1, 6).unwrap();
        assert_eq!(c.end_nodes().len(), 6);
        assert_eq!(c.predicted_contention(), None);
    }
}
