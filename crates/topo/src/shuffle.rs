//! Shuffle-exchange network (§2 background list).
//!
//! Routers are labelled by `k`-bit strings. Each router has an
//! **exchange** cable to the label differing in the low bit, a
//! **shuffle-out** cable to `rol(v)` (left rotate) and a
//! **shuffle-in** cable from `ror(v)`; the all-zeros and all-ones
//! labels shuffle to themselves and omit those cables.
//!
//! Port convention: port 0 = exchange, port 1 = shuffle-out,
//! port 2 = shuffle-in, ports 3.. = end nodes.

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// Exchange port.
pub const PORT_EXCHANGE: PortId = PortId(0);
/// Shuffle-out port (toward `rol(v)`).
pub const PORT_SHUFFLE_OUT: PortId = PortId(1);
/// Shuffle-in port (from `ror(v)`).
pub const PORT_SHUFFLE_IN: PortId = PortId(2);
/// First attach port.
pub const PORT_NODE0: PortId = PortId(3);

/// A `2^k`-router shuffle-exchange network.
#[derive(Clone, Debug)]
pub struct ShuffleExchange {
    net: Network,
    k: u32,
    nodes_per_router: usize,
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl ShuffleExchange {
    /// Builds the network over `2^k` routers.
    pub fn new(k: u32, nodes_per_router: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!((2..=16).contains(&k), "need 2 <= k <= 16");
        assert!(3 + nodes_per_router <= router_ports as usize);
        let n = 1usize << k;
        let rol = |v: usize| ((v << 1) | (v >> (k - 1))) & (n - 1);
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..n)
            .map(|v| net.add_router(format!("R{v:0w$b}", w = k as usize), router_ports))
            .collect();
        // Exchange cables.
        for v in 0..n {
            let w = v ^ 1;
            if v < w {
                net.connect(
                    routers[v],
                    PORT_EXCHANGE,
                    routers[w],
                    PORT_EXCHANGE,
                    LinkClass::Local,
                )?;
            }
        }
        // Shuffle cables: v.out -> rol(v).in, skipping fixed points.
        for v in 0..n {
            let w = rol(v);
            if w != v {
                net.connect(
                    routers[v],
                    PORT_SHUFFLE_OUT,
                    routers[w],
                    PORT_SHUFFLE_IN,
                    LinkClass::Local,
                )?;
            }
        }
        let mut ends = Vec::new();
        for (v, &r) in routers.iter().enumerate() {
            for p in 0..nodes_per_router {
                let e = net.add_end_node(format!("N{v}.{p}"));
                net.connect(
                    r,
                    PortId(PORT_NODE0.0 + p as u8),
                    e,
                    PortId(0),
                    LinkClass::Attach,
                )?;
                ends.push(e);
            }
        }
        Ok(ShuffleExchange {
            net,
            k,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// Label width `k` (network has `2^k` routers).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Router with label `v`.
    pub fn router(&self, v: usize) -> NodeId {
        self.routers[v]
    }

    /// Router label of an address.
    pub fn label_of_addr(&self, addr: usize) -> usize {
        addr / self.nodes_per_router
    }
}

impl Topology for ShuffleExchange {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!(
            "shuffle-exchange 2^{} ({}/router)",
            self.k, self.nodes_per_router
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn structure_counts() {
        let s = ShuffleExchange::new(3, 1, 6).unwrap();
        assert_eq!(s.net().router_count(), 8);
        // Exchange: 4 cables; shuffle: 8 - 2 fixed points = 6.
        let inter = s
            .net()
            .links()
            .filter(|&l| s.net().link(l).class == LinkClass::Local)
            .count();
        assert_eq!(inter, 4 + 6);
        s.net().validate().unwrap();
        assert!(bfs::is_connected(s.net()));
    }

    #[test]
    fn constant_degree_regardless_of_size() {
        // The selling point of shuffle-exchange: O(1) ports per router.
        for k in [3u32, 5, 7] {
            let s = ShuffleExchange::new(k, 1, 6).unwrap();
            for r in s.net().routers() {
                let inter = s
                    .net()
                    .channels_from(r)
                    .iter()
                    .filter(|&&(ch, _)| s.net().link(ch.link()).class == LinkClass::Local)
                    .count();
                assert!(inter <= 3, "k={k}: degree {inter}");
            }
        }
    }

    #[test]
    fn diameter_is_logarithmic() {
        // Shuffle-exchange routes any pair in O(k) steps (shuffle k
        // times, exchanging as needed): diameter <= 2k.
        let s = ShuffleExchange::new(4, 1, 6).unwrap();
        let max = bfs::max_router_hops(s.net()).unwrap();
        assert!(max <= 2 * 4 + 1, "diameter {max}");
        assert!(max >= 4, "too small to be plausible: {max}");
    }

    #[test]
    fn shuffle_ports_follow_rotation() {
        let s = ShuffleExchange::new(3, 1, 6).unwrap();
        // 011 shuffles to 110.
        let ch = s
            .net()
            .channel_out(s.router(0b011), PORT_SHUFFLE_OUT)
            .unwrap();
        assert_eq!(s.net().channel_dst(ch), s.router(0b110));
        // Fixed points have no shuffle cables.
        assert!(s
            .net()
            .channel_out(s.router(0b000), PORT_SHUFFLE_OUT)
            .is_none());
        assert!(s
            .net()
            .channel_out(s.router(0b111), PORT_SHUFFLE_OUT)
            .is_none());
    }

    #[test]
    fn updown_routes_work_on_shuffle_exchange() {
        // Generic up*/down* makes it routable and deadlock-free.
        use fractanet_route::treeroute::updown_routeset;
        let s = ShuffleExchange::new(3, 1, 6).unwrap();
        let rs = updown_routeset(s.net(), s.end_nodes(), s.router(0));
        for (sa, d, p) in rs.pairs() {
            assert_eq!(
                s.net().channel_dst(*p.last().unwrap()),
                s.end_nodes()[d],
                "{sa}->{d}"
            );
        }
    }
}
