//! # fractanet-topo
//!
//! Topology builders for the `fractanet` workspace. Every network the
//! paper mentions can be constructed here, with the 6-port ServerNet
//! router budget enforced at build time:
//!
//! * the paper's **primary contribution** — fully-connected router
//!   clusters ([`cluster`], Fig 3), the tetrahedron (Fig 4) and thin /
//!   fat **fractahedrons** ([`fractahedron`], Figs 5 & 7, Tables 1–2);
//! * the **baselines** of §3 — 2-D meshes with per-router end nodes
//!   ([`mesh`], §3.1), hypercubes ([`hypercube`], Fig 2 / §3.2), and
//!   k-ary fat trees with a configurable down/up port split
//!   ([`fattree`], Fig 6 / §3.3–3.4);
//! * the **background menagerie** of §2 — ring, torus, star, binary
//!   tree, cube-connected cycles ([`ring`], [`mesh`], [`tree`],
//!   [`hypercube`]).
//!
//! Each builder returns a typed struct owning the [`Network`] plus the
//! coordinate/addressing metadata that its routing algorithm (in
//! `fractanet-route`) needs. All builders expose their end nodes in a
//! canonical *address order* via the [`Topology`] trait; routing tables
//! and metrics use that order as the destination address space, exactly
//! like ServerNet's destination-ID-indexed routing tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod fattree;
pub mod fractahedron;
pub mod genfracta;
pub mod hypercube;
pub mod mesh;
pub mod ring;
pub mod shuffle;
pub mod tree;

pub use cluster::FullyConnectedCluster;
pub use fattree::FatTree;
pub use fractahedron::{Fractahedron, Variant};
pub use genfracta::{ClusterShape, GenFractahedron, GenPos};
pub use hypercube::{CubeConnectedCycles, Hypercube};
pub use mesh::{Mesh2D, Torus2D};
pub use ring::Ring;
pub use shuffle::ShuffleExchange;
pub use tree::{BinaryTree, Star};

use fractanet_graph::{Network, NodeId};

/// Common surface of every built topology.
///
/// `end_nodes()` is the canonical address order: end node *i* is
/// "destination ID *i*" for routing tables, contention analysis and the
/// simulator.
pub trait Topology {
    /// The underlying port-aware network.
    fn net(&self) -> &Network;
    /// End nodes in address order.
    fn end_nodes(&self) -> &[NodeId];
    /// Short human-readable description, e.g. `"mesh 6x6 (2/router)"`.
    fn name(&self) -> String;

    /// Address (index into [`Self::end_nodes`]) of a given end node.
    fn address_of(&self, node: NodeId) -> Option<usize> {
        self.end_nodes().iter().position(|&n| n == node)
    }
}
