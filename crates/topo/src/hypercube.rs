//! Hypercube and cube-connected-cycles builders (Fig 2 / §3.2).
//!
//! "A 64-node (6-D) hypercube requires a 7-port router; six for the
//! hypercube and one for the node connection. With 6-port routers, it
//! would be necessary to use a lower dimension hypercube …"
//!
//! Port convention on a `d`-cube router: port `i` (0 ≤ i < d) is the
//! dimension-`i` link (to the router whose label differs in bit `i`);
//! ports `d..` attach end nodes.

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// A binary `dim`-cube of routers with `nodes_per_router` end nodes on
/// each corner.
#[derive(Clone, Debug)]
pub struct Hypercube {
    net: Network,
    dim: u32,
    nodes_per_router: usize,
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl Hypercube {
    /// Builds the cube. Needs `dim + nodes_per_router` ports per
    /// router — the §3.2 observation that a 6-cube with its node port
    /// exceeds the 6-port ServerNet ASIC falls straight out of this
    /// check.
    pub fn new(dim: u32, nodes_per_router: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!((1..=20).contains(&dim), "dimension out of range");
        assert!(
            dim as usize + nodes_per_router <= router_ports as usize,
            "a {dim}-cube router needs {dim} cube ports + {nodes_per_router} attach ports"
        );
        let n = 1usize << dim;
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..n)
            .map(|i| net.add_router(format!("R{i:0w$b}", w = dim as usize), router_ports))
            .collect();
        for v in 0..n {
            for bit in 0..dim {
                let w = v ^ (1 << bit);
                if w > v {
                    net.connect(
                        routers[v],
                        PortId(bit as u8),
                        routers[w],
                        PortId(bit as u8),
                        LinkClass::Local,
                    )?;
                }
            }
        }
        let mut ends = Vec::new();
        for (v, &r) in routers.iter().enumerate() {
            for k in 0..nodes_per_router {
                let e = net.add_end_node(format!("N{v}.{k}"));
                net.connect(
                    r,
                    PortId(dim as u8 + k as u8),
                    e,
                    PortId(0),
                    LinkClass::Attach,
                )?;
                ends.push(e);
            }
        }
        Ok(Hypercube {
            net,
            dim,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// Cube dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// End nodes per corner.
    pub fn nodes_per_router(&self) -> usize {
        self.nodes_per_router
    }

    /// Router with binary label `v`.
    pub fn router(&self, v: usize) -> NodeId {
        self.routers[v]
    }

    /// All corner routers in label order.
    pub fn routers(&self) -> &[NodeId] {
        &self.routers
    }

    /// Binary label of a router id.
    pub fn label_of(&self, r: NodeId) -> Option<usize> {
        self.routers.iter().position(|&x| x == r)
    }

    /// Corner label of an end-node address.
    pub fn corner_of_addr(&self, addr: usize) -> usize {
        addr / self.nodes_per_router
    }
}

impl Topology for Hypercube {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("{}-cube ({}/router)", self.dim, self.nodes_per_router)
    }
}

/// Cube-connected cycles: each corner of a `dim`-cube is replaced by a
/// ring of `dim` routers, one per dimension (§2 background list).
///
/// Router `(v, i)` (corner `v`, cycle position `i`) uses port 0 / 1 for
/// the cycle (next / previous) and port 2 for its dimension-`i` cube
/// link; port 3.. attach end nodes. Every router therefore needs only
/// 3 + nodes ports regardless of dimension — the property CCCs exist
/// to provide.
#[derive(Clone, Debug)]
pub struct CubeConnectedCycles {
    net: Network,
    dim: u32,
    nodes_per_router: usize,
    routers: Vec<NodeId>, // [corner * dim + pos]
    ends: Vec<NodeId>,
}

impl CubeConnectedCycles {
    /// Builds the CCC. Needs `dim ≥ 3` so cycle ports are distinct.
    pub fn new(dim: u32, nodes_per_router: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!((3..=20).contains(&dim), "CCC needs 3 <= dim <= 20");
        assert!(3 + nodes_per_router <= router_ports as usize);
        let corners = 1usize << dim;
        let d = dim as usize;
        let mut net = Network::new();
        let mut routers = Vec::with_capacity(corners * d);
        for v in 0..corners {
            for i in 0..d {
                routers.push(net.add_router(format!("R{v:0w$b}.{i}", w = d), router_ports));
            }
        }
        let at = |v: usize, i: usize| routers[v * d + i];
        // Cycles.
        for v in 0..corners {
            for i in 0..d {
                net.connect(
                    at(v, i),
                    PortId(0),
                    at(v, (i + 1) % d),
                    PortId(1),
                    LinkClass::Local,
                )?;
            }
        }
        // Cube links on matching cycle positions.
        for v in 0..corners {
            for i in 0..d {
                let w = v ^ (1 << i);
                if w > v {
                    net.connect(at(v, i), PortId(2), at(w, i), PortId(2), LinkClass::Local)?;
                }
            }
        }
        let mut ends = Vec::new();
        for v in 0..corners {
            for i in 0..d {
                for k in 0..nodes_per_router {
                    let e = net.add_end_node(format!("N{v}.{i}.{k}"));
                    net.connect(
                        at(v, i),
                        PortId(3 + k as u8),
                        e,
                        PortId(0),
                        LinkClass::Attach,
                    )?;
                    ends.push(e);
                }
            }
        }
        Ok(CubeConnectedCycles {
            net,
            dim,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// Cube dimension (= cycle length).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Router at `(corner, cycle position)`.
    pub fn router_at(&self, corner: usize, pos: usize) -> NodeId {
        self.routers[corner * self.dim as usize + pos]
    }
}

impl Topology for CubeConnectedCycles {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("ccc-{} ({}/router)", self.dim, self.nodes_per_router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn three_cube_structure() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        assert_eq!(h.net().router_count(), 8);
        // A d-cube has d * 2^(d-1) links.
        let inter = h
            .net()
            .links()
            .filter(|&l| h.net().link(l).class == LinkClass::Local)
            .count();
        assert_eq!(inter, 12);
        h.net().validate().unwrap();
    }

    #[test]
    fn six_cube_needs_seven_ports() {
        // §3.2's port-budget observation, verified by the builder.
        assert!(std::panic::catch_unwind(|| Hypercube::new(6, 1, 6)).is_err());
        let h = Hypercube::new(6, 1, 7).unwrap();
        assert_eq!(h.net().router_count(), 64);
        assert_eq!(h.end_nodes().len(), 64);
    }

    #[test]
    fn cube_distance_is_hamming() {
        let h = Hypercube::new(4, 1, 6).unwrap();
        let d = bfs::distances(h.net(), h.router(0b0000));
        for v in 0..16usize {
            assert_eq!(d[h.router(v).index()], v.count_ones());
        }
    }

    #[test]
    fn cube_router_labels_roundtrip() {
        let h = Hypercube::new(3, 2, 6).unwrap();
        for v in 0..8 {
            assert_eq!(h.label_of(h.router(v)), Some(v));
        }
        assert_eq!(h.corner_of_addr(5), 2);
    }

    #[test]
    fn ccc_structure() {
        let c = CubeConnectedCycles::new(3, 1, 6).unwrap();
        // 8 corners x 3 routers.
        assert_eq!(c.net().router_count(), 24);
        // Links: cycles 8*3 + cube 12.
        let inter = c
            .net()
            .links()
            .filter(|&l| c.net().link(l).class == LinkClass::Local)
            .count();
        assert_eq!(inter, 24 + 12);
        assert!(bfs::is_connected(c.net()));
        c.net().validate().unwrap();
    }

    #[test]
    fn ccc_degree_is_constant() {
        // Every CCC router has exactly 3 inter-router cables no matter
        // the dimension — the point of the construction.
        let c = CubeConnectedCycles::new(4, 1, 6).unwrap();
        for r in c.net().routers() {
            let inter = c
                .net()
                .channels_from(r)
                .iter()
                .filter(|&&(ch, _)| c.net().link(ch.link()).class == LinkClass::Local)
                .count();
            assert_eq!(inter, 3);
        }
    }
}
