//! Ring of routers — the shape of the paper's Figure 1 deadlock
//! example: "Deadlock in a wormhole-routed network. The head of each
//! packet is blocked by the tail of another packet. Circles are routers
//! (packet switches)."
//!
//! Port convention: port 0 = clockwise (to router `i+1 mod n`),
//! port 1 = counter-clockwise, ports 2.. = end nodes.

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// Clockwise port.
pub const PORT_CW: PortId = PortId(0);
/// Counter-clockwise port.
pub const PORT_CCW: PortId = PortId(1);
/// First attach port.
pub const PORT_NODE0: PortId = PortId(2);

/// A ring of `n` routers with `nodes_per_router` end nodes each.
#[derive(Clone, Debug)]
pub struct Ring {
    net: Network,
    n: usize,
    nodes_per_router: usize,
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl Ring {
    /// Builds the ring. Needs `n ≥ 3` (a 2-ring would be parallel
    /// cables) and 2 + `nodes_per_router` ports per router.
    pub fn new(n: usize, nodes_per_router: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!(n >= 3, "ring needs at least 3 routers");
        assert!(2 + nodes_per_router <= router_ports as usize);
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..n)
            .map(|i| net.add_router(format!("R{i}"), router_ports))
            .collect();
        for i in 0..n {
            net.connect(
                routers[i],
                PORT_CW,
                routers[(i + 1) % n],
                PORT_CCW,
                LinkClass::Local,
            )?;
        }
        let mut ends = Vec::new();
        for (i, &r) in routers.iter().enumerate() {
            for k in 0..nodes_per_router {
                let e = net.add_end_node(format!("N{i}.{k}"));
                net.connect(
                    r,
                    PortId(PORT_NODE0.0 + k as u8),
                    e,
                    PortId(0),
                    LinkClass::Attach,
                )?;
                ends.push(e);
            }
        }
        Ok(Ring {
            net,
            n,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the ring is empty (never true; rings have ≥ 3 routers).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// End nodes per router.
    pub fn nodes_per_router(&self) -> usize {
        self.nodes_per_router
    }

    /// Router `i`.
    pub fn router(&self, i: usize) -> NodeId {
        self.routers[i]
    }

    /// Router index of an end-node address.
    pub fn router_of_addr(&self, addr: usize) -> usize {
        addr / self.nodes_per_router
    }
}

impl Topology for Ring {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("ring {} ({}/router)", self.n, self.nodes_per_router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn fig1_four_router_loop() {
        let r = Ring::new(4, 1, 6).unwrap();
        assert_eq!(r.net().router_count(), 4);
        assert_eq!(r.net().link_count(), 4 + 4);
        assert!(bfs::is_connected(r.net()));
        r.net().validate().unwrap();
    }

    #[test]
    fn ring_distance_wraps() {
        let r = Ring::new(6, 1, 6).unwrap();
        let d = bfs::distances(r.net(), r.router(0));
        assert_eq!(d[r.router(3).index()], 3);
        assert_eq!(d[r.router(5).index()], 1);
    }

    #[test]
    fn addresses_map_to_routers() {
        let r = Ring::new(4, 2, 6).unwrap();
        assert_eq!(r.end_nodes().len(), 8);
        assert_eq!(r.router_of_addr(0), 0);
        assert_eq!(r.router_of_addr(5), 2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        let _ = Ring::new(2, 1, 6);
    }
}
