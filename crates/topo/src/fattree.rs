//! Fat trees with a configurable down/up port split (Fig 6, §3.3).
//!
//! "With a 6-port router, the six ports can be partitioned into groups
//! of 3-3 or 4-2. The 3-3 partitioning has no bandwidth reduction
//! toward the root, but is more expensive than the 4-2 partitioning."
//!
//! The construction is the standard replicated-router fat tree: the
//! logical tree has arity `down`; the *virtual* router at level `k` is
//! realized by `up^(k-1)` physical routers ("replicas" — the paper's
//! "to other layers" stacks in Fig 6). Virtual router `v` at level `k`
//! serves leaf addresses `[v·down^k, (v+1)·down^k)`; only virtual
//! routers whose range intersects the populated leaves are built, which
//! reproduces the paper's router counts exactly:
//!
//! * 4-2 split, 64 nodes → levels 1..3 with 16 + 8 + 4 = **28 routers**
//!   (Table 2);
//! * 3-3 split, 64 nodes → levels 1..4 with 22 + 24 + 27 + 27 =
//!   **100 routers** (§3.4: "a 3-3 fat tree would require 100
//!   routers").
//!
//! Port convention on every router: ports `0..down` descend (to child
//! replicas or end nodes at level 1), ports `down..down+up` ascend.
//! Top-level up ports stay vacant — the paper reserves them "for future
//! expansion".
//!
//! Wiring rule (the one that makes destination-indexed routing tables
//! work): physical replica `r` of child virtual `c` connects its up
//! port `q` to the parent's physical replica `r·up + q`, arriving at
//! the parent's down port `c mod down`. Ascending with up-port choices
//! `q₁ … q_{L-1}` therefore lands on top replica `q₁q₂…` read as a
//! base-`up` numeral — so a destination-based routing policy can pick
//! any top replica it likes, one digit per level.

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// A pruned `(down, up)` fat tree over `nodes` end nodes.
#[derive(Clone, Debug)]
pub struct FatTree {
    net: Network,
    down: usize,
    up: usize,
    levels: usize,
    nodes: usize,
    /// `routers[k - 1][virt][replica]`, level `k` in `1..=levels`.
    routers: Vec<Vec<Vec<NodeId>>>,
    ends: Vec<NodeId>,
}

impl FatTree {
    /// Builds the fat tree. `router_ports ≥ down + up`; `levels` is
    /// chosen as the smallest L with `down^L ≥ nodes`.
    pub fn new(nodes: usize, down: usize, up: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!(nodes >= 2, "need at least two end nodes");
        assert!(down >= 2 && up >= 1, "need down >= 2, up >= 1");
        assert!(
            down + up <= router_ports as usize,
            "router needs {down} down + {up} up ports"
        );
        let mut levels = 1usize;
        let mut capacity = down;
        while capacity < nodes {
            levels += 1;
            capacity = capacity.saturating_mul(down);
        }

        let mut net = Network::new();
        let mut routers: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(levels);
        let mut replicas = 1usize;
        let mut span = down; // leaves served by a level-k virtual router
        for k in 1..=levels {
            let virt_count = nodes.div_ceil(span);
            let mut level = Vec::with_capacity(virt_count);
            for v in 0..virt_count {
                let mut phys = Vec::with_capacity(replicas);
                for r in 0..replicas {
                    phys.push(net.add_router(format!("L{k}V{v}R{r}"), router_ports));
                }
                level.push(phys);
            }
            routers.push(level);
            replicas *= up;
            span = span.saturating_mul(down);
        }

        // Up links: child virtual c at level k → parent virtual c/down
        // at level k+1.
        for k in 1..levels {
            let child_level = &routers[k - 1];
            for (c, child_phys) in child_level.iter().enumerate() {
                let parent = c / down;
                let parent_down_port = PortId((c % down) as u8);
                for (r, &child_router) in child_phys.iter().enumerate() {
                    for q in 0..up {
                        let parent_replica = r * up + q;
                        let parent_router = routers[k][parent][parent_replica];
                        net.connect(
                            child_router,
                            PortId((down + q) as u8),
                            parent_router,
                            parent_down_port,
                            LinkClass::Level(k as u8),
                        )?;
                    }
                }
            }
        }

        // End nodes on level-1 down ports.
        let mut ends = Vec::with_capacity(nodes);
        for a in 0..nodes {
            let v = a / down;
            let port = PortId((a % down) as u8);
            let e = net.add_end_node(format!("N{a}"));
            net.connect(routers[0][v][0], port, e, PortId(0), LinkClass::Attach)?;
            ends.push(e);
        }

        Ok(FatTree {
            net,
            down,
            up,
            levels,
            nodes,
            routers,
            ends,
        })
    }

    /// The paper's 64-node 4-2 fat tree of Fig 6.
    pub fn paper_4_2_64() -> Self {
        Self::new(64, 4, 2, 6).expect("4-2/64 always fits 6-port routers")
    }

    /// The paper's §3.4 3-3 fat tree for 64 nodes.
    pub fn paper_3_3_64() -> Self {
        Self::new(64, 3, 3, 6).expect("3-3/64 always fits 6-port routers")
    }

    /// Down (descending) ports per router.
    pub fn down(&self) -> usize {
        self.down
    }

    /// Up (ascending) ports per router.
    pub fn up(&self) -> usize {
        self.up
    }

    /// Number of router levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Populated end nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Physical router for `(level, virtual index, replica)`;
    /// `level ∈ 1..=levels`, `replica ∈ 0..up^(level-1)`.
    pub fn router(&self, level: usize, virt: usize, replica: usize) -> NodeId {
        self.routers[level - 1][virt][replica]
    }

    /// Number of virtual routers at `level`.
    pub fn virtual_count(&self, level: usize) -> usize {
        self.routers[level - 1].len()
    }

    /// Number of physical replicas per virtual router at `level`
    /// (`up^(level-1)`).
    pub fn replica_count(&self, level: usize) -> usize {
        self.up.pow(level as u32 - 1)
    }

    /// Locates a physical router id: `(level, virtual, replica)`.
    pub fn locate(&self, router: NodeId) -> Option<(usize, usize, usize)> {
        for (k, level) in self.routers.iter().enumerate() {
            for (v, phys) in level.iter().enumerate() {
                if let Some(r) = phys.iter().position(|&x| x == router) {
                    return Some((k + 1, v, r));
                }
            }
        }
        None
    }

    /// Leaf-address span of a level-`k` virtual router (`down^k`).
    pub fn span(&self, level: usize) -> usize {
        self.down.pow(level as u32)
    }

    /// Whether destination `addr` lies in the subtree of virtual router
    /// `virt` at `level`.
    pub fn in_subtree(&self, level: usize, virt: usize, addr: usize) -> bool {
        addr / self.span(level) == virt
    }
}

impl Topology for FatTree {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("fattree {}-{} n{}", self.down, self.up, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn paper_4_2_router_count_is_28() {
        let ft = FatTree::paper_4_2_64();
        assert_eq!(ft.levels(), 3);
        assert_eq!(
            ft.net().router_count(),
            28,
            "Table 2: 4-2 fat tree uses 28 routers"
        );
        assert_eq!(ft.end_nodes().len(), 64);
        ft.net().validate().unwrap();
    }

    #[test]
    fn paper_3_3_router_count_is_100() {
        let ft = FatTree::paper_3_3_64();
        assert_eq!(ft.levels(), 4);
        assert_eq!(
            ft.net().router_count(),
            100,
            "§3.4: 3-3 fat tree requires 100 routers"
        );
        ft.net().validate().unwrap();
    }

    #[test]
    fn paper_4_2_average_hops() {
        // Table 2: 4.4 average hops (exact value 279/63 ≈ 4.43).
        let ft = FatTree::paper_4_2_64();
        let avg = bfs::avg_router_hops(ft.net()).unwrap();
        assert!((avg - 279.0 / 63.0).abs() < 1e-9, "avg = {avg}");
        assert_eq!(bfs::max_router_hops(ft.net()), Some(5));
    }

    #[test]
    fn paper_3_3_average_hops() {
        // §3.4: "transfers would take an average of 5.9 router hops".
        let ft = FatTree::paper_3_3_64();
        let avg = bfs::avg_router_hops(ft.net()).unwrap();
        assert!((avg - 5.9).abs() < 0.1, "avg = {avg}");
    }

    #[test]
    fn replica_counts_grow_by_up() {
        let ft = FatTree::paper_4_2_64();
        assert_eq!(ft.replica_count(1), 1);
        assert_eq!(ft.replica_count(2), 2);
        assert_eq!(ft.replica_count(3), 4);
        assert_eq!(ft.virtual_count(1), 16);
        assert_eq!(ft.virtual_count(2), 4);
        assert_eq!(ft.virtual_count(3), 1);
    }

    #[test]
    fn wiring_rule_lands_on_predicted_replica() {
        // Ascending with digits (q1, q2) reaches top replica q1*up+q2.
        let ft = FatTree::paper_4_2_64();
        for q1 in 0..2usize {
            for q2 in 0..2usize {
                let l1 = ft.router(1, 0, 0);
                let ch1 = ft.net().channel_out(l1, PortId((4 + q1) as u8)).unwrap();
                let l2 = ft.net().channel_dst(ch1);
                assert_eq!(l2, ft.router(2, 0, q1));
                let ch2 = ft.net().channel_out(l2, PortId((4 + q2) as u8)).unwrap();
                let top = ft.net().channel_dst(ch2);
                assert_eq!(top, ft.router(3, 0, q1 * 2 + q2));
            }
        }
    }

    #[test]
    fn locate_roundtrip() {
        let ft = FatTree::new(16, 4, 2, 6).unwrap();
        for k in 1..=ft.levels() {
            for v in 0..ft.virtual_count(k) {
                for r in 0..ft.replica_count(k) {
                    assert_eq!(ft.locate(ft.router(k, v, r)), Some((k, v, r)));
                }
            }
        }
    }

    #[test]
    fn subtree_membership() {
        let ft = FatTree::paper_4_2_64();
        assert!(ft.in_subtree(1, 0, 3));
        assert!(!ft.in_subtree(1, 0, 4));
        assert!(ft.in_subtree(2, 3, 63));
        assert!(ft.in_subtree(3, 0, 17));
    }

    #[test]
    fn non_power_population_prunes() {
        // 10 nodes on a 4-2 tree: L1 = ceil(10/4) = 3 virtuals,
        // L2 = 1 virtual x 2 replicas.
        let ft = FatTree::new(10, 4, 2, 6).unwrap();
        assert_eq!(ft.levels(), 2);
        assert_eq!(ft.net().router_count(), 3 + 2);
        assert!(bfs::is_connected(ft.net()));
    }

    #[test]
    fn two_level_tree_hops() {
        let ft = FatTree::new(16, 4, 2, 6).unwrap();
        // Same L1 router: 1 hop; cross: 3 hops.
        let a = ft.end_nodes()[0];
        let b = ft.end_nodes()[1];
        let c = ft.end_nodes()[15];
        assert_eq!(bfs::router_hops(ft.net(), a, b), Some(1));
        assert_eq!(bfs::router_hops(ft.net(), a, c), Some(3));
    }

    #[test]
    #[should_panic(expected = "up ports")]
    fn port_overflow_rejected() {
        let _ = FatTree::new(64, 4, 3, 6);
    }
}
