//! Fractahedral topologies — the paper's primary contribution
//! (§2.2–2.4, Figs 4/5/7, Tables 1–2).
//!
//! A fractahedron is a self-similar recursion of **tetrahedra** (four
//! fully-connected 6-port routers). Every router's six ports follow the
//! paper's 2-3-1 partition:
//!
//! | ports | role |
//! |-------|------|
//! | 0, 1  | down — two end nodes / fan-out routers (level 1) or two lower-level tetrahedra (level ≥ 2) |
//! | 2–4   | intra-tetrahedron links to the other three corners |
//! | 5     | up — toward the next level |
//!
//! **Thin** fractahedron: each tetrahedron keeps a *single* connection
//! to the next level (we use corner 0's up port; "there are unused
//! ports at three of the four corners of each tetrahedron"). Every
//! level is then a single tetrahedron per stack and the bisection
//! bandwidth is fixed at 4 links.
//!
//! **Fat** fractahedron: all four up ports connect to *replicated
//! layers* of the next level. Level `k` is a stack of `4^(k-1)`
//! independent tetrahedron layers ("level 2 is conceptually four
//! tetrahedral layers nested inside each other, but not connected to
//! each other"). The cable discipline follows the paper's §2.3: child
//! `c`'s up links all arrive at stack corner `⌊c/2⌋`, down port
//! `c mod 2`, with child up endpoint (layer `j`, corner `l`) landing on
//! parent layer `l · (child layers) + j`.
//!
//! With `N` levels the structure hosts `8^N` directly-attached end
//! nodes, or `2·8^N` CPUs when the optional **fan-out** router level is
//! added ("one additional router level connecting each pair of CPUs to
//! the level 1 tetrahedron" — Table 1's "Maximum Nodes 2·8^N").

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// Down port 0.
pub const PORT_DOWN0: PortId = PortId(0);
/// Down port 1.
pub const PORT_DOWN1: PortId = PortId(1);
/// First intra-tetrahedron port.
pub const PORT_INTRA0: PortId = PortId(2);
/// The up port.
pub const PORT_UP: PortId = PortId(5);

/// Thin or fat recursion (§2.2 vs §2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// One up-link per tetrahedron; bisection fixed at 4 links.
    Thin,
    /// All four up ports used; level `k` replicated into `4^(k-1)`
    /// layers.
    Fat,
}

/// Position of a tetrahedron router inside a fractahedron.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterPos {
    /// Level, `1..=levels`.
    pub level: usize,
    /// Stack index within the level (`0..8^(levels-level)`).
    pub stack: usize,
    /// Layer within the stack (`0` for thin and for level 1).
    pub layer: usize,
    /// Tetrahedron corner, `0..4`.
    pub corner: usize,
}

/// An `N`-level thin or fat fractahedron of 6-port routers.
///
/// ```
/// use fractanet_topo::{Fractahedron, Topology, Variant};
///
/// // The paper's Fig 7 network: 64 nodes on 48 routers.
/// let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
/// assert_eq!(f.end_nodes().len(), 64);
/// assert_eq!(f.net().router_count(), 48);
/// assert_eq!(f.layer_count(2), 4); // four independent level-2 layers
/// ```
#[derive(Clone, Debug)]
pub struct Fractahedron {
    net: Network,
    levels: usize,
    variant: Variant,
    fanout: bool,
    /// `routers[k - 1][stack][layer][corner]`.
    routers: Vec<Vec<Vec<[NodeId; 4]>>>,
    /// Fan-out routers by attach-point index (empty when `!fanout`).
    fanouts: Vec<NodeId>,
    ends: Vec<NodeId>,
    /// Reverse map: `pos[node.index()]` for tetrahedron routers.
    pos: Vec<Option<RouterPos>>,
}

impl Fractahedron {
    /// Builds an `N`-level fractahedron. With `fanout`, every level-1
    /// down port carries a fan-out router serving a pair of CPUs
    /// (2·8^N end nodes); without, end nodes attach directly (8^N).
    pub fn new(levels: usize, variant: Variant, fanout: bool) -> Result<Self, GraphError> {
        assert!(
            (1..=5).contains(&levels),
            "1 <= levels <= 5 (level 5 is already 32768 nodes)"
        );
        let mut net = Network::new();
        let mut routers: Vec<Vec<Vec<[NodeId; 4]>>> = Vec::with_capacity(levels);

        for k in 1..=levels {
            let stacks = 8usize.pow((levels - k) as u32);
            let layers = match (variant, k) {
                (Variant::Thin, _) | (_, 1) => 1,
                (Variant::Fat, _) => 4usize.pow(k as u32 - 1),
            };
            let mut level = Vec::with_capacity(stacks);
            for s in 0..stacks {
                let mut stack = Vec::with_capacity(layers);
                for m in 0..layers {
                    let mk_label = |c: usize| format!("L{k}S{s}Y{m}C{c}");
                    let corners = [
                        net.add_router(mk_label(0), 6),
                        net.add_router(mk_label(1), 6),
                        net.add_router(mk_label(2), 6),
                        net.add_router(mk_label(3), 6),
                    ];
                    // Intra-tetrahedron clique: corner cr's port for
                    // peer pc is 2 + (pc shifted past cr).
                    for cr in 0..4usize {
                        for pc in (cr + 1)..4 {
                            net.connect(
                                corners[cr],
                                PortId((2 + pc - 1) as u8),
                                corners[pc],
                                PortId((2 + cr) as u8),
                                LinkClass::Local,
                            )?;
                        }
                    }
                    stack.push(corners);
                }
                level.push(stack);
            }
            routers.push(level);
        }

        // Inter-level cables.
        for k in 2..=levels {
            let child_layers = match (variant, k - 1) {
                (Variant::Thin, _) | (_, 1) => 1,
                (Variant::Fat, _) => 4usize.pow((k - 2) as u32),
            };
            for s in 0..routers[k - 1].len() {
                for c in 0..8usize {
                    let child_stack = s * 8 + c;
                    let parent_corner = c / 2;
                    let parent_port = PortId((c % 2) as u8);
                    match variant {
                        Variant::Thin => {
                            // Single cable: child corner 0 up → parent
                            // layer 0.
                            let child_r = routers[k - 2][child_stack][0][0];
                            let parent_r = routers[k - 1][s][0][parent_corner];
                            net.connect(
                                child_r,
                                PORT_UP,
                                parent_r,
                                parent_port,
                                LinkClass::Level((k - 1) as u8),
                            )?;
                        }
                        Variant::Fat => {
                            for l in 0..4usize {
                                for j in 0..child_layers {
                                    let child_r = routers[k - 2][child_stack][j][l];
                                    let parent_layer = l * child_layers + j;
                                    let parent_r = routers[k - 1][s][parent_layer][parent_corner];
                                    net.connect(
                                        child_r,
                                        PORT_UP,
                                        parent_r,
                                        parent_port,
                                        LinkClass::Level((k - 1) as u8),
                                    )?;
                                }
                            }
                        }
                    }
                }
            }
        }

        // End nodes (and optional fan-out routers) on level-1 down
        // ports, in address order.
        let tetra_count = 8usize.pow((levels - 1) as u32);
        let mut ends = Vec::new();
        let mut fanouts = Vec::new();
        #[allow(clippy::needless_range_loop)] // t, corner, p are address digits
        for t in 0..tetra_count {
            for corner in 0..4usize {
                let attach_router = routers[0][t][0][corner];
                for p in 0..2usize {
                    let port = PortId(p as u8);
                    if fanout {
                        let f = net.add_router(format!("F{t}.{corner}.{p}"), 6);
                        net.connect(attach_router, port, f, PORT_UP, LinkClass::Level(0))?;
                        fanouts.push(f);
                        for cpu in 0..2usize {
                            let e = net.add_end_node(format!("CPU{}", ends.len()));
                            net.connect(f, PortId(cpu as u8), e, PortId(0), LinkClass::Attach)?;
                            ends.push(e);
                        }
                    } else {
                        let e = net.add_end_node(format!("N{}", ends.len()));
                        net.connect(attach_router, port, e, PortId(0), LinkClass::Attach)?;
                        ends.push(e);
                    }
                }
            }
        }

        // Reverse position map.
        let mut pos = vec![None; net.node_count()];
        for (k0, level) in routers.iter().enumerate() {
            for (s, stack) in level.iter().enumerate() {
                for (m, layer) in stack.iter().enumerate() {
                    for (cr, &r) in layer.iter().enumerate() {
                        pos[r.index()] = Some(RouterPos {
                            level: k0 + 1,
                            stack: s,
                            layer: m,
                            corner: cr,
                        });
                    }
                }
            }
        }

        Ok(Fractahedron {
            net,
            levels,
            variant,
            fanout,
            routers,
            fanouts,
            ends,
            pos,
        })
    }

    /// The paper's 64-node fat fractahedron of Fig 7 / Table 2
    /// (2 levels, direct attach, 48 routers).
    pub fn paper_fat_64() -> Self {
        Self::new(2, Variant::Fat, false).expect("paper configuration is valid")
    }

    /// The paper's 1024-CPU thin fractahedron (§2.2: 3 levels with the
    /// fan-out level, maximum delay 12 router hops).
    pub fn paper_thin_1024() -> Self {
        Self::new(3, Variant::Thin, true).expect("paper configuration is valid")
    }

    /// Number of levels `N`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Thin or fat.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Whether the fan-out CPU level is present.
    pub fn has_fanout(&self) -> bool {
        self.fanout
    }

    /// Number of stacks at `level` (`8^(levels-level)`).
    pub fn stack_count(&self, level: usize) -> usize {
        self.routers[level - 1].len()
    }

    /// Number of layers per stack at `level`.
    pub fn layer_count(&self, level: usize) -> usize {
        self.routers[level - 1][0].len()
    }

    /// Router at `(level, stack, layer, corner)`.
    pub fn router(&self, level: usize, stack: usize, layer: usize, corner: usize) -> NodeId {
        self.routers[level - 1][stack][layer][corner]
    }

    /// Position of a tetrahedron router (fan-out routers and end nodes
    /// return `None`).
    pub fn pos_of(&self, node: NodeId) -> Option<RouterPos> {
        self.pos.get(node.index()).copied().flatten()
    }

    /// Fan-out router serving attach point `a` (only with fan-out).
    pub fn fanout_router(&self, attach: usize) -> Option<NodeId> {
        self.fanouts.get(attach).copied()
    }

    /// Number of end nodes per attach point (2 with fan-out, 1
    /// without).
    pub fn nodes_per_attach(&self) -> usize {
        if self.fanout {
            2
        } else {
            1
        }
    }

    /// Attach-point index (`tetra·8 + corner·2 + port`) of an address.
    pub fn attach_of_addr(&self, addr: usize) -> usize {
        addr / self.nodes_per_attach()
    }

    /// Level-1 tetrahedron index of an address.
    pub fn tetra_of_addr(&self, addr: usize) -> usize {
        self.attach_of_addr(addr) / 8
    }

    /// Level-1 corner (0..4) of an address.
    pub fn corner_of_addr(&self, addr: usize) -> usize {
        (self.attach_of_addr(addr) / 2) % 4
    }

    /// Level-1 down port (0..2) of an address.
    pub fn port_of_addr(&self, addr: usize) -> usize {
        self.attach_of_addr(addr) % 2
    }

    /// Stack index containing level-1 tetrahedron `t` at `level`.
    pub fn stack_of_tetra(&self, t: usize, level: usize) -> usize {
        t / 8usize.pow((level - 1) as u32)
    }

    /// Child index (0..8) of the level-`level` stack on the path from
    /// the root down to tetrahedron `t`; `level ≥ 2`.
    pub fn child_digit(&self, t: usize, level: usize) -> usize {
        (t / 8usize.pow((level - 2) as u32)) % 8
    }

    /// The intra-tetrahedron port on corner `from` that reaches corner
    /// `to` (`from ≠ to`).
    pub fn intra_port(from: usize, to: usize) -> PortId {
        debug_assert!(from != to && from < 4 && to < 4);
        let shifted = if to < from { to } else { to - 1 };
        PortId((2 + shifted) as u8)
    }

    /// Total tetrahedron-router count (excludes fan-out routers).
    pub fn tetra_router_count(&self) -> usize {
        self.routers
            .iter()
            .map(|level| level.iter().map(|stack| stack.len() * 4).sum::<usize>())
            .sum()
    }
}

impl Topology for Fractahedron {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!(
            "{:?}-fractahedron N{}{}",
            self.variant,
            self.levels,
            if self.fanout { " +fanout" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn one_level_is_a_tetrahedron() {
        for v in [Variant::Thin, Variant::Fat] {
            let f = Fractahedron::new(1, v, false).unwrap();
            assert_eq!(f.net().router_count(), 4);
            assert_eq!(f.end_nodes().len(), 8);
            assert_eq!(bfs::max_router_hops(f.net()), Some(2));
            f.net().validate().unwrap();
        }
    }

    #[test]
    fn paper_fat_64_router_count_is_48() {
        let f = Fractahedron::paper_fat_64();
        assert_eq!(f.end_nodes().len(), 64);
        assert_eq!(
            f.net().router_count(),
            48,
            "Table 2: fat fractahedron uses 48 routers"
        );
        assert_eq!(f.stack_count(1), 8);
        assert_eq!(f.stack_count(2), 1);
        assert_eq!(f.layer_count(2), 4);
        f.net().validate().unwrap();
    }

    #[test]
    fn fat_max_delay_is_3n_minus_1() {
        for n in 1..=3usize {
            let f = Fractahedron::new(n, Variant::Fat, false).unwrap();
            assert_eq!(
                bfs::max_router_hops(f.net()),
                Some((3 * n - 1) as u32),
                "Table 1: fat max delay 3N-1, N = {n}"
            );
        }
    }

    #[test]
    fn thin_max_delay_is_4n_minus_2() {
        for n in 1..=3usize {
            let f = Fractahedron::new(n, Variant::Thin, false).unwrap();
            assert_eq!(
                bfs::max_router_hops(f.net()),
                Some((4 * n - 2) as u32),
                "Table 1: thin max delay 4N-2, N = {n}"
            );
        }
    }

    #[test]
    fn fanout_16_cpu_system_has_max_delay_4() {
        // §2.2: "a 16-CPU system may be constructed with a maximum
        // delay between CPUs of four router hops".
        let f = Fractahedron::new(1, Variant::Thin, true).unwrap();
        assert_eq!(f.end_nodes().len(), 16);
        assert_eq!(bfs::max_router_hops(f.net()), Some(4));
    }

    #[test]
    fn thin_1024_cpu_max_delay_is_12() {
        // §2.2: "When extended to 1024 CPUs through a thin
        // fractahedron, the maximum delay is twelve."
        let f = Fractahedron::paper_thin_1024();
        assert_eq!(f.end_nodes().len(), 1024);
        // A worst-case pair: the source needs an intra-tetrahedron hop
        // toward the up corner at both level 1 and level 2, and the
        // destination needs the far corner at every level on the way
        // down. addr 124 = tetra 7 corner 3; addr 1023 = tetra 63
        // corner 3.
        let a = f.end_nodes()[124];
        let b = f.end_nodes()[1023];
        assert_eq!(bfs::router_hops(f.net(), a, b), Some(12));
        // And no pair is worse (full sweep).
        assert_eq!(bfs::max_router_hops(f.net()), Some(12));
    }

    #[test]
    fn fat_64_average_hops_matches_table_2() {
        // Table 2: 4.3 average (exact value 271/63 ≈ 4.302).
        let f = Fractahedron::paper_fat_64();
        let avg = bfs::avg_router_hops(f.net()).unwrap();
        assert!((avg - 271.0 / 63.0).abs() < 1e-9, "avg = {avg}");
    }

    #[test]
    fn node_counts_match_table_1() {
        for n in 1..=3usize {
            let thin = Fractahedron::new(n, Variant::Thin, true).unwrap();
            assert_eq!(
                thin.end_nodes().len(),
                2 * 8usize.pow(n as u32),
                "2*8^N CPUs"
            );
        }
    }

    #[test]
    fn thin_router_count_formula() {
        // 4 * (8^N - 1) / 7 tetrahedron routers.
        for n in 1..=3usize {
            let f = Fractahedron::new(n, Variant::Thin, false).unwrap();
            let expect = 4 * (8usize.pow(n as u32) - 1) / 7;
            assert_eq!(f.tetra_router_count(), expect);
            assert_eq!(f.net().router_count(), expect);
        }
    }

    #[test]
    fn fat_router_count_formula() {
        // Level k contributes 8^(N-k) * 4^k routers.
        for n in 1..=3usize {
            let f = Fractahedron::new(n, Variant::Fat, false).unwrap();
            let expect: usize = (1..=n)
                .map(|k| 8usize.pow((n - k) as u32) * 4usize.pow(k as u32))
                .sum();
            assert_eq!(f.net().router_count(), expect);
        }
    }

    #[test]
    fn intra_port_mapping() {
        assert_eq!(Fractahedron::intra_port(0, 1), PortId(2));
        assert_eq!(Fractahedron::intra_port(0, 3), PortId(4));
        assert_eq!(Fractahedron::intra_port(3, 0), PortId(2));
        assert_eq!(Fractahedron::intra_port(2, 1), PortId(3));
        // Symmetric consistency with the builder: the port pair really
        // connects the two corners.
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        for a in 0..4usize {
            for b in 0..4usize {
                if a == b {
                    continue;
                }
                let ra = f.router(1, 0, 0, a);
                let rb = f.router(1, 0, 0, b);
                let ch = f
                    .net()
                    .channel_out(ra, Fractahedron::intra_port(a, b))
                    .unwrap();
                assert_eq!(f.net().channel_dst(ch), rb, "corner {a} -> {b}");
            }
        }
    }

    #[test]
    fn fat_up_links_follow_cable_discipline() {
        // Level-1 tetra t corner l's up port reaches level-2 layer l,
        // stack corner t/2, down port t%2.
        let f = Fractahedron::paper_fat_64();
        for t in 0..8usize {
            for l in 0..4usize {
                let child = f.router(1, t, 0, l);
                let ch = f.net().channel_out(child, PORT_UP).unwrap();
                let parent = f.net().channel_dst(ch);
                assert_eq!(parent, f.router(2, 0, l, t / 2));
                assert_eq!(f.net().channel_dst_port(ch), PortId((t % 2) as u8));
            }
        }
    }

    #[test]
    fn thin_only_corner0_ascends() {
        let f = Fractahedron::new(2, Variant::Thin, false).unwrap();
        for t in 0..8usize {
            assert!(f.net().channel_out(f.router(1, t, 0, 0), PORT_UP).is_some());
            for c in 1..4usize {
                assert!(f.net().channel_out(f.router(1, t, 0, c), PORT_UP).is_none());
            }
        }
    }

    #[test]
    fn address_decomposition() {
        let f = Fractahedron::paper_fat_64();
        // addr = t*8 + corner*2 + port (direct attach).
        assert_eq!(f.tetra_of_addr(0), 0);
        assert_eq!(f.corner_of_addr(0), 0);
        assert_eq!(f.port_of_addr(0), 0);
        assert_eq!(f.tetra_of_addr(63), 7);
        assert_eq!(f.corner_of_addr(63), 3);
        assert_eq!(f.port_of_addr(63), 1);
        assert_eq!(f.corner_of_addr(14), 3);
        // Addresses attach where they claim to.
        for (addr, &e) in f.end_nodes().iter().enumerate() {
            let r = f.net().neighbors(e).next().unwrap();
            let pos = f.pos_of(r).unwrap();
            assert_eq!(pos.level, 1);
            assert_eq!(pos.stack, f.tetra_of_addr(addr));
            assert_eq!(pos.corner, f.corner_of_addr(addr));
        }
    }

    #[test]
    fn fanout_addressing() {
        let f = Fractahedron::new(1, Variant::Fat, true).unwrap();
        assert_eq!(f.nodes_per_attach(), 2);
        assert_eq!(f.attach_of_addr(5), 2);
        assert_eq!(f.corner_of_addr(5), 1);
        // CPU 5 hangs off fan-out router 2.
        let e = f.end_nodes()[5];
        let fr = f.net().neighbors(e).next().unwrap();
        assert_eq!(Some(fr), f.fanout_router(2));
    }

    #[test]
    fn pos_of_covers_all_tetra_routers() {
        let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
        let covered = f.net().routers().filter(|&r| f.pos_of(r).is_some()).count();
        assert_eq!(covered, 48);
        let p = f.pos_of(f.router(2, 0, 3, 2)).unwrap();
        assert_eq!(
            p,
            RouterPos {
                level: 2,
                stack: 0,
                layer: 3,
                corner: 2
            }
        );
    }

    #[test]
    fn connected_at_all_sizes() {
        for n in 1..=3usize {
            for v in [Variant::Thin, Variant::Fat] {
                let f = Fractahedron::new(n, v, false).unwrap();
                assert!(bfs::is_connected(f.net()), "{v:?} N{n}");
            }
        }
    }

    #[test]
    fn child_digit_and_stack() {
        let f = Fractahedron::new(3, Variant::Thin, false).unwrap();
        // Tetra 0o53 = 43: digit at level 2 is 3, at level 3 is 5.
        assert_eq!(f.child_digit(43, 2), 3);
        assert_eq!(f.child_digit(43, 3), 5);
        assert_eq!(f.stack_of_tetra(43, 2), 5);
        assert_eq!(f.stack_of_tetra(43, 3), 0);
    }
}
