//! Star and binary-tree builders (§2 background).
//!
//! "Tree networks are free of routing loops, but their bisection
//! bandwidth is determined by the bandwidth through the router at the
//! root node."

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// A single router with every end node attached: the degenerate star.
#[derive(Clone, Debug)]
pub struct Star {
    net: Network,
    hub: NodeId,
    ends: Vec<NodeId>,
}

impl Star {
    /// Builds a star with `nodes` end nodes on a `router_ports`-port
    /// hub.
    pub fn new(nodes: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!(
            nodes <= router_ports as usize,
            "star hub has only {router_ports} ports"
        );
        let mut net = Network::new();
        let hub = net.add_router("hub", router_ports);
        let mut ends = Vec::new();
        for k in 0..nodes {
            let e = net.add_end_node(format!("N{k}"));
            net.connect(hub, PortId(k as u8), e, PortId(0), LinkClass::Attach)?;
            ends.push(e);
        }
        Ok(Star { net, hub, ends })
    }

    /// The hub router.
    pub fn hub(&self) -> NodeId {
        self.hub
    }
}

impl Topology for Star {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("star {}", self.ends.len())
    }
}

/// A complete binary tree of routers with end nodes on the leaves.
///
/// Port convention: port 0 = up (to parent), ports 1 and 2 = children,
/// leaf routers use ports 1.. for end nodes.
#[derive(Clone, Debug)]
pub struct BinaryTree {
    net: Network,
    depth: u32,
    nodes_per_leaf: usize,
    /// Routers in heap order: router 0 is the root, children of `i` are
    /// `2i + 1` and `2i + 2`.
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl BinaryTree {
    /// Builds a tree with `depth` router levels (`depth ≥ 1`; a depth-1
    /// tree is a single root). `2^(depth-1)` leaf routers carry
    /// `nodes_per_leaf` end nodes each.
    pub fn new(depth: u32, nodes_per_leaf: usize, router_ports: u8) -> Result<Self, GraphError> {
        assert!((1..=16).contains(&depth));
        assert!(nodes_per_leaf < router_ports as usize);
        let count = (1usize << depth) - 1;
        let mut net = Network::new();
        let routers: Vec<NodeId> = (0..count)
            .map(|i| net.add_router(format!("T{i}"), router_ports))
            .collect();
        for i in 0..count {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            if l < count {
                net.connect(
                    routers[i],
                    PortId(1),
                    routers[l],
                    PortId(0),
                    LinkClass::Local,
                )?;
            }
            if r < count {
                net.connect(
                    routers[i],
                    PortId(2),
                    routers[r],
                    PortId(0),
                    LinkClass::Local,
                )?;
            }
        }
        let first_leaf = count / 2;
        let mut ends = Vec::new();
        for (li, &leaf) in routers.iter().enumerate().skip(first_leaf) {
            for k in 0..nodes_per_leaf {
                let e = net.add_end_node(format!("N{}.{k}", li - first_leaf));
                net.connect(leaf, PortId(1 + k as u8), e, PortId(0), LinkClass::Attach)?;
                ends.push(e);
            }
        }
        Ok(BinaryTree {
            net,
            depth,
            nodes_per_leaf,
            routers,
            ends,
        })
    }

    /// Router levels.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The root router.
    pub fn root(&self) -> NodeId {
        self.routers[0]
    }

    /// Routers in heap order.
    pub fn routers(&self) -> &[NodeId] {
        &self.routers
    }

    /// End nodes per leaf router.
    pub fn nodes_per_leaf(&self) -> usize {
        self.nodes_per_leaf
    }
}

impl Topology for BinaryTree {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!("bintree d{} ({}/leaf)", self.depth, self.nodes_per_leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn star_is_one_hop() {
        let s = Star::new(6, 6).unwrap();
        assert_eq!(s.end_nodes().len(), 6);
        assert_eq!(bfs::max_router_hops(s.net()), Some(1));
        s.net().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "only 6 ports")]
    fn star_overflow() {
        let _ = Star::new(7, 6);
    }

    #[test]
    fn tree_counts() {
        let t = BinaryTree::new(3, 2, 6).unwrap();
        assert_eq!(t.net().router_count(), 7);
        assert_eq!(t.end_nodes().len(), 8);
        assert!(bfs::is_connected(t.net()));
        t.net().validate().unwrap();
    }

    #[test]
    fn tree_max_hops_crosses_root() {
        // Leaves in different halves route through the root:
        // depth d gives 2d - 1 router hops.
        let t = BinaryTree::new(4, 1, 6).unwrap();
        assert_eq!(bfs::max_router_hops(t.net()), Some(7));
    }

    #[test]
    fn tree_has_no_cycles() {
        let t = BinaryTree::new(4, 1, 6).unwrap();
        // Routers + attach = links + 1 for a tree.
        assert_eq!(t.net().link_count() + 1, t.net().node_count());
    }

    #[test]
    fn depth_one_tree_is_star() {
        let t = BinaryTree::new(1, 4, 6).unwrap();
        assert_eq!(t.net().router_count(), 1);
        assert_eq!(t.end_nodes().len(), 4);
    }
}
