//! 2-D mesh and torus builders (§3.1).
//!
//! "To implement a 2-D mesh with a 6-port router, four ports are
//! devoted to the four directions, leaving the last two ports available
//! to connect to the nodes. Connecting 64-nodes requires a 6x6 mesh."
//!
//! Port convention on every mesh/torus router:
//!
//! | port | role |
//! |------|------|
//! | 0    | +X (east)  |
//! | 1    | −X (west)  |
//! | 2    | +Y (north) |
//! | 3    | −Y (south) |
//! | 4..  | end nodes  |
//!
//! Edge routers leave their missing direction ports vacant (meshes) or
//! wrap around (tori).

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// Direction-to-port mapping shared by mesh and torus.
pub const PORT_EAST: PortId = PortId(0);
/// −X port.
pub const PORT_WEST: PortId = PortId(1);
/// +Y port.
pub const PORT_NORTH: PortId = PortId(2);
/// −Y port.
pub const PORT_SOUTH: PortId = PortId(3);
/// First end-node attach port.
pub const PORT_NODE0: PortId = PortId(4);

/// A `cols × rows` 2-D mesh of routers with `nodes_per_router` end
/// nodes on each router.
#[derive(Clone, Debug)]
pub struct Mesh2D {
    net: Network,
    cols: usize,
    rows: usize,
    nodes_per_router: usize,
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl Mesh2D {
    /// Builds the mesh. `router_ports` must cover 4 directions plus
    /// `nodes_per_router` attach ports (6-port ServerNet routers allow
    /// up to 2 end nodes).
    pub fn new(
        cols: usize,
        rows: usize,
        nodes_per_router: usize,
        router_ports: u8,
    ) -> Result<Self, GraphError> {
        assert!(cols >= 1 && rows >= 1, "mesh must be at least 1x1");
        assert!(
            4 + nodes_per_router <= router_ports as usize,
            "router needs 4 direction ports + {nodes_per_router} attach ports"
        );
        let mut net = Network::new();
        let mut routers = Vec::with_capacity(cols * rows);
        for y in 0..rows {
            for x in 0..cols {
                routers.push(net.add_router(format!("R({x},{y})"), router_ports));
            }
        }
        let at = |x: usize, y: usize| routers[y * cols + x];
        for y in 0..rows {
            for x in 0..cols {
                if x + 1 < cols {
                    net.connect(
                        at(x, y),
                        PORT_EAST,
                        at(x + 1, y),
                        PORT_WEST,
                        LinkClass::Local,
                    )?;
                }
                if y + 1 < rows {
                    net.connect(
                        at(x, y),
                        PORT_NORTH,
                        at(x, y + 1),
                        PORT_SOUTH,
                        LinkClass::Local,
                    )?;
                }
            }
        }
        let mut ends = Vec::with_capacity(cols * rows * nodes_per_router);
        for y in 0..rows {
            for x in 0..cols {
                for k in 0..nodes_per_router {
                    let n = net.add_end_node(format!("N({x},{y}).{k}"));
                    net.connect(
                        at(x, y),
                        PortId(PORT_NODE0.0 + k as u8),
                        n,
                        PortId(0),
                        LinkClass::Attach,
                    )?;
                    ends.push(n);
                }
            }
        }
        Ok(Mesh2D {
            net,
            cols,
            rows,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// The paper's §3.1 configuration: a square mesh of 6-port routers
    /// with 2 nodes each, just large enough for `nodes` end nodes
    /// (64 → 6×6, 128 → 8×8, 1024 → 23×23).
    pub fn for_nodes(nodes: usize) -> Result<Self, GraphError> {
        let mut side = 1usize;
        while side * side * 2 < nodes {
            side += 1;
        }
        Self::new(side, side, 2, 6)
    }

    /// Mesh width in routers.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mesh height in routers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// End nodes attached to each router.
    pub fn nodes_per_router(&self) -> usize {
        self.nodes_per_router
    }

    /// Router at mesh coordinate `(x, y)`.
    pub fn router_at(&self, x: usize, y: usize) -> NodeId {
        self.routers[y * self.cols + x]
    }

    /// Coordinates of a router id.
    pub fn coords_of(&self, router: NodeId) -> Option<(usize, usize)> {
        self.routers
            .iter()
            .position(|&r| r == router)
            .map(|i| (i % self.cols, i / self.cols))
    }

    /// End node `k` of router `(x, y)`.
    pub fn end_at(&self, x: usize, y: usize, k: usize) -> NodeId {
        self.ends[(y * self.cols + x) * self.nodes_per_router + k]
    }

    /// `(x, y, k)` of an end-node address.
    pub fn end_coords(&self, addr: usize) -> (usize, usize, usize) {
        let r = addr / self.nodes_per_router;
        (r % self.cols, r / self.cols, addr % self.nodes_per_router)
    }

    /// All routers in row-major order.
    pub fn routers(&self) -> &[NodeId] {
        &self.routers
    }
}

impl Topology for Mesh2D {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!(
            "mesh {}x{} ({}/router)",
            self.cols, self.rows, self.nodes_per_router
        )
    }
}

/// A `cols × rows` 2-D torus: a mesh with wrap-around links (§2
/// background). Requires `cols, rows ≥ 3` so wrap links do not collide
/// with mesh links on the same port.
#[derive(Clone, Debug)]
pub struct Torus2D {
    net: Network,
    cols: usize,
    rows: usize,
    nodes_per_router: usize,
    routers: Vec<NodeId>,
    ends: Vec<NodeId>,
}

impl Torus2D {
    /// Builds the torus (see [`Mesh2D::new`] for the port layout).
    pub fn new(
        cols: usize,
        rows: usize,
        nodes_per_router: usize,
        router_ports: u8,
    ) -> Result<Self, GraphError> {
        assert!(
            cols >= 3 && rows >= 3,
            "torus needs at least 3 routers per dimension"
        );
        assert!(4 + nodes_per_router <= router_ports as usize);
        let mut net = Network::new();
        let mut routers = Vec::with_capacity(cols * rows);
        for y in 0..rows {
            for x in 0..cols {
                routers.push(net.add_router(format!("R({x},{y})"), router_ports));
            }
        }
        let at = |x: usize, y: usize| routers[y * cols + x];
        for y in 0..rows {
            for x in 0..cols {
                let east = at((x + 1) % cols, y);
                net.connect(at(x, y), PORT_EAST, east, PORT_WEST, LinkClass::Local)?;
                let north = at(x, (y + 1) % rows);
                net.connect(at(x, y), PORT_NORTH, north, PORT_SOUTH, LinkClass::Local)?;
            }
        }
        let mut ends = Vec::new();
        for y in 0..rows {
            for x in 0..cols {
                for k in 0..nodes_per_router {
                    let n = net.add_end_node(format!("N({x},{y}).{k}"));
                    net.connect(
                        at(x, y),
                        PortId(PORT_NODE0.0 + k as u8),
                        n,
                        PortId(0),
                        LinkClass::Attach,
                    )?;
                    ends.push(n);
                }
            }
        }
        Ok(Torus2D {
            net,
            cols,
            rows,
            nodes_per_router,
            routers,
            ends,
        })
    }

    /// Router at `(x, y)`.
    pub fn router_at(&self, x: usize, y: usize) -> NodeId {
        self.routers[y * self.cols + x]
    }

    /// Torus width in routers.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Torus height in routers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// `(x, y, k)` of an end-node address.
    pub fn end_coords(&self, addr: usize) -> (usize, usize, usize) {
        let r = addr / self.nodes_per_router;
        (r % self.cols, r / self.cols, addr % self.nodes_per_router)
    }

    /// End nodes attached to each router.
    pub fn nodes_per_router(&self) -> usize {
        self.nodes_per_router
    }

    /// Coordinates of a router id.
    pub fn coords_of(&self, router: NodeId) -> Option<(usize, usize)> {
        self.routers
            .iter()
            .position(|&r| r == router)
            .map(|i| (i % self.cols, i / self.cols))
    }
}

impl Topology for Torus2D {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!(
            "torus {}x{} ({}/router)",
            self.cols, self.rows, self.nodes_per_router
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_graph::bfs;

    #[test]
    fn mesh_6x6_matches_paper_section_3_1() {
        // 6x6 mesh, 2 nodes per router: 36 routers, 72 nodes capacity,
        // max latency 11 router hops corner to corner.
        let m = Mesh2D::new(6, 6, 2, 6).unwrap();
        assert_eq!(m.net().router_count(), 36);
        assert_eq!(m.end_nodes().len(), 72);
        let a = m.end_at(0, 0, 0);
        let b = m.end_at(5, 5, 0);
        assert_eq!(bfs::router_hops(m.net(), a, b), Some(11));
        assert_eq!(bfs::max_router_hops(m.net()), Some(11));
        m.net().validate().unwrap();
    }

    #[test]
    fn for_nodes_sizes_match_paper() {
        assert_eq!(Mesh2D::for_nodes(64).unwrap().cols(), 6);
        assert_eq!(Mesh2D::for_nodes(128).unwrap().cols(), 8);
        assert_eq!(Mesh2D::for_nodes(1024).unwrap().cols(), 23);
    }

    #[test]
    fn paper_scaling_hops() {
        // §3.1: 8x8 mesh → 15 max hops; 23x23 → 45.
        let m8 = Mesh2D::new(8, 8, 2, 6).unwrap();
        assert_eq!(bfs::max_router_hops(m8.net()), Some(15));
        // 23x23 is big for full APSP; check the corner pair directly.
        let m23 = Mesh2D::new(23, 23, 2, 6).unwrap();
        let a = m23.end_at(0, 0, 0);
        let b = m23.end_at(22, 22, 0);
        assert_eq!(bfs::router_hops(m23.net(), a, b), Some(45));
    }

    #[test]
    fn mesh_link_count() {
        // cols*(rows-1) + rows*(cols-1) inter-router + attach links.
        let m = Mesh2D::new(4, 3, 2, 6).unwrap();
        let inter = 4 * 2 + 3 * 3;
        assert_eq!(m.net().link_count(), inter + 24);
    }

    #[test]
    fn mesh_ports_respected() {
        // 1 node per router on 5-port routers is fine; 2 is not.
        assert!(Mesh2D::new(3, 3, 1, 5).is_ok());
    }

    #[test]
    #[should_panic(expected = "attach ports")]
    fn mesh_overcommitted_ports_panic() {
        let _ = Mesh2D::new(3, 3, 3, 6);
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2D::new(5, 4, 2, 6).unwrap();
        for y in 0..4 {
            for x in 0..5 {
                assert_eq!(m.coords_of(m.router_at(x, y)), Some((x, y)));
            }
        }
        for addr in 0..m.end_nodes().len() {
            let (x, y, k) = m.end_coords(addr);
            assert_eq!(m.end_at(x, y, k), m.end_nodes()[addr]);
        }
    }

    #[test]
    fn torus_wraps() {
        let t = Torus2D::new(4, 4, 1, 6).unwrap();
        // Opposite corners are 2+2 → wrap makes it 2 hops of distance
        // each dimension: router distance (0,0)->(3,3) is 1+1 = 2.
        let d = bfs::distances(t.net(), t.router_at(0, 0));
        assert_eq!(d[t.router_at(3, 3).index()], 2);
        assert_eq!(d[t.router_at(2, 2).index()], 4);
        t.net().validate().unwrap();
    }

    #[test]
    fn torus_link_count_is_2n() {
        let t = Torus2D::new(4, 5, 1, 6).unwrap();
        // Every router has exactly one +X and one +Y link.
        assert_eq!(t.net().link_count(), 2 * 20 + 20);
    }

    #[test]
    fn torus_end_coords() {
        let t = Torus2D::new(3, 3, 2, 6).unwrap();
        assert_eq!(t.end_coords(0), (0, 0, 0));
        assert_eq!(t.end_coords(5), (2, 0, 1));
        assert_eq!(t.end_coords(17), (2, 2, 1));
    }
}
