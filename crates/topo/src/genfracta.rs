//! Generalized fractahedrons — the paper's §4 extension: "The current
//! focus is on tetrahedral ensembles of 6-port ServerNet routers, but
//! the concepts easily generalize to other fully connected groups of
//! N-port routers."
//!
//! A *cluster fractahedron* recurses over fully-connected clusters of
//! `m` routers with `p` ports each, under the port partition
//! `(down, intra, up) = (d, m − 1, u)` with `d + (m − 1) + u ≤ p`:
//!
//! * every cluster serves `m·d` children (end nodes at level 1);
//! * **thin**: one up cable per cluster (router 0's first up port);
//! * **fat**: all `m·u` up ports connect to replicated layers — level
//!   `k` carries `(m·u)^(k-1)` layers, generalizing the tetrahedral
//!   `4^(k-1)`.
//!
//! Wiring discipline (generalizing §2.3's cables): child `c`'s up
//! endpoint `(layer j, corner l, up-port q)` lands on parent layer
//! `(l·u + q)·L_child + j`, at parent cluster router `⌊c/d⌋`, down
//! port `c mod d`. The paper's 2-3-1 fractahedron is exactly
//! `(m, p, d, u) = (4, 6, 2, 1)`.
//!
//! Port convention per router: ports `0..d` down, `d..d+m-1` intra,
//! `d+m-1..d+m-1+u` up.

use crate::Topology;
use fractanet_graph::{GraphError, LinkClass, Network, NodeId, PortId};

/// Shape parameters of a generalized fractahedron.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterShape {
    /// Routers per fully-connected cluster.
    pub cluster: usize,
    /// Ports per router.
    pub ports: u8,
    /// Down ports per router.
    pub down: usize,
    /// Up ports per router.
    pub up: usize,
}

impl ClusterShape {
    /// The paper's tetrahedral 2-3-1 shape on 6-port routers.
    pub const PAPER: ClusterShape = ClusterShape {
        cluster: 4,
        ports: 6,
        down: 2,
        up: 1,
    };

    /// Validates the port budget: `down + (m−1) + up ≤ ports`.
    pub fn check(&self) {
        assert!(self.cluster >= 2, "need at least two routers per cluster");
        assert!(self.down >= 1 && self.up >= 1, "need down and up ports");
        assert!(
            self.down + self.cluster - 1 + self.up <= self.ports as usize,
            "{}-router cluster on {}-port routers leaves only {} spare ports, \
             but down {} + up {} requested",
            self.cluster,
            self.ports,
            self.ports as usize + 1 - self.cluster,
            self.down,
            self.up
        );
    }

    /// Children (or end nodes) per cluster: `m · d`.
    pub fn fanout(&self) -> usize {
        self.cluster * self.down
    }

    /// Fat layer-replication factor per level: `m · u`.
    pub fn replication(&self) -> usize {
        self.cluster * self.up
    }

    /// First intra port index.
    fn intra0(&self) -> usize {
        self.down
    }

    /// First up port index.
    fn up0(&self) -> usize {
        self.down + self.cluster - 1
    }

    /// Intra port on router `from` reaching router `to` of the same
    /// cluster.
    pub fn intra_port(&self, from: usize, to: usize) -> PortId {
        debug_assert!(from != to && from < self.cluster && to < self.cluster);
        let shifted = if to < from { to } else { to - 1 };
        PortId((self.intra0() + shifted) as u8)
    }

    /// Up port `q` of a router.
    pub fn up_port(&self, q: usize) -> PortId {
        debug_assert!(q < self.up);
        PortId((self.up0() + q) as u8)
    }
}

/// Position of a router inside a generalized fractahedron.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenPos {
    /// Level, `1..=levels`.
    pub level: usize,
    /// Cluster-stack index within the level.
    pub stack: usize,
    /// Layer within the stack (0 for thin / level 1).
    pub layer: usize,
    /// Router index within the cluster, `0..m`.
    pub corner: usize,
}

/// An `N`-level generalized (thin or fat) cluster fractahedron.
#[derive(Clone, Debug)]
pub struct GenFractahedron {
    net: Network,
    shape: ClusterShape,
    levels: usize,
    fat: bool,
    /// `routers[k-1][stack][layer][corner]`.
    routers: Vec<Vec<Vec<Vec<NodeId>>>>,
    ends: Vec<NodeId>,
    pos: Vec<Option<GenPos>>,
}

impl GenFractahedron {
    /// Builds the structure; `fat` selects full layer replication.
    pub fn new(shape: ClusterShape, levels: usize, fat: bool) -> Result<Self, GraphError> {
        shape.check();
        assert!(levels >= 1, "need at least one level");
        let fanout = shape.fanout();
        let repl = shape.replication();
        assert!(
            fanout.pow(levels as u32 - 1) * repl.pow(levels as u32 - 1) < 1_000_000,
            "configuration too large"
        );
        let m = shape.cluster;
        let mut net = Network::new();
        let mut routers: Vec<Vec<Vec<Vec<NodeId>>>> = Vec::with_capacity(levels);

        for k in 1..=levels {
            let stacks = fanout.pow((levels - k) as u32);
            let layers = if fat && k > 1 {
                repl.pow(k as u32 - 1)
            } else {
                1
            };
            let mut level = Vec::with_capacity(stacks);
            for s in 0..stacks {
                let mut stack = Vec::with_capacity(layers);
                for y in 0..layers {
                    let cluster: Vec<NodeId> = (0..m)
                        .map(|c| net.add_router(format!("G{k}S{s}Y{y}C{c}"), shape.ports))
                        .collect();
                    for a in 0..m {
                        for b in (a + 1)..m {
                            net.connect(
                                cluster[a],
                                shape.intra_port(a, b),
                                cluster[b],
                                shape.intra_port(b, a),
                                LinkClass::Local,
                            )?;
                        }
                    }
                    stack.push(cluster);
                }
                level.push(stack);
            }
            routers.push(level);
        }

        // Inter-level cables.
        for k in 2..=levels {
            let child_layers = if fat && k > 2 {
                repl.pow(k as u32 - 2)
            } else {
                1
            };
            for s in 0..routers[k - 1].len() {
                for c in 0..fanout {
                    let child_stack = s * fanout + c;
                    let parent_router = c / shape.down;
                    let parent_port = PortId((c % shape.down) as u8);
                    if fat {
                        for l in 0..m {
                            for q in 0..shape.up {
                                for j in 0..child_layers {
                                    let child = routers[k - 2][child_stack][j][l];
                                    let parent_layer = (l * shape.up + q) * child_layers + j;
                                    let parent = routers[k - 1][s][parent_layer][parent_router];
                                    net.connect(
                                        child,
                                        shape.up_port(q),
                                        parent,
                                        parent_port,
                                        LinkClass::Level((k - 1) as u8),
                                    )?;
                                }
                            }
                        }
                    } else {
                        let child = routers[k - 2][child_stack][0][0];
                        let parent = routers[k - 1][s][0][parent_router];
                        net.connect(
                            child,
                            shape.up_port(0),
                            parent,
                            parent_port,
                            LinkClass::Level((k - 1) as u8),
                        )?;
                    }
                }
            }
        }

        // End nodes in address order: addr = cluster·fanout + corner·d + port.
        let base_clusters = fanout.pow((levels - 1) as u32);
        let mut ends = Vec::with_capacity(base_clusters * fanout);
        #[allow(clippy::needless_range_loop)] // t and corner are address digits
        for t in 0..base_clusters {
            for corner in 0..m {
                for p in 0..shape.down {
                    let e = net.add_end_node(format!("N{}", ends.len()));
                    net.connect(
                        routers[0][t][0][corner],
                        PortId(p as u8),
                        e,
                        PortId(0),
                        LinkClass::Attach,
                    )?;
                    ends.push(e);
                }
            }
        }

        let mut pos = vec![None; net.node_count()];
        for (k0, level) in routers.iter().enumerate() {
            for (s, stack) in level.iter().enumerate() {
                for (y, layer) in stack.iter().enumerate() {
                    for (c, &r) in layer.iter().enumerate() {
                        pos[r.index()] = Some(GenPos {
                            level: k0 + 1,
                            stack: s,
                            layer: y,
                            corner: c,
                        });
                    }
                }
            }
        }

        Ok(GenFractahedron {
            net,
            shape,
            levels,
            fat,
            routers,
            ends,
            pos,
        })
    }

    /// Shape parameters.
    pub fn shape(&self) -> ClusterShape {
        self.shape
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Whether this is the fat (replicated-layer) variant.
    pub fn is_fat(&self) -> bool {
        self.fat
    }

    /// Router at `(level, stack, layer, corner)`.
    pub fn router(&self, level: usize, stack: usize, layer: usize, corner: usize) -> NodeId {
        self.routers[level - 1][stack][layer][corner]
    }

    /// Layers per stack at `level`.
    pub fn layer_count(&self, level: usize) -> usize {
        self.routers[level - 1][0].len()
    }

    /// Position of a router id.
    pub fn pos_of(&self, node: NodeId) -> Option<GenPos> {
        self.pos.get(node.index()).copied().flatten()
    }

    /// Level-1 cluster index of an address.
    pub fn cluster_of_addr(&self, addr: usize) -> usize {
        addr / self.shape.fanout()
    }

    /// Cluster-router (corner) index of an address.
    pub fn corner_of_addr(&self, addr: usize) -> usize {
        (addr % self.shape.fanout()) / self.shape.down
    }

    /// Attach-port index of an address.
    pub fn port_of_addr(&self, addr: usize) -> usize {
        addr % self.shape.down
    }

    /// Stack containing level-1 cluster `t` at `level`.
    pub fn stack_of_cluster(&self, t: usize, level: usize) -> usize {
        t / self.shape.fanout().pow((level - 1) as u32)
    }

    /// Child digit of cluster `t`'s path at `level ≥ 2`.
    pub fn child_digit(&self, t: usize, level: usize) -> usize {
        (t / self.shape.fanout().pow((level - 2) as u32)) % self.shape.fanout()
    }
}

impl Topology for GenFractahedron {
    fn net(&self) -> &Network {
        &self.net
    }
    fn end_nodes(&self) -> &[NodeId] {
        &self.ends
    }
    fn name(&self) -> String {
        format!(
            "{}-fractahedron m{} p{} d{} u{} N{}",
            if self.fat { "fat" } else { "thin" },
            self.shape.cluster,
            self.shape.ports,
            self.shape.down,
            self.shape.up,
            self.levels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fractahedron, Variant};
    use fractanet_graph::bfs;

    #[test]
    fn paper_shape_matches_specialized_builder() {
        for (levels, fat) in [(1, true), (2, true), (2, false), (3, false)] {
            let gen = GenFractahedron::new(ClusterShape::PAPER, levels, fat).unwrap();
            let spec = Fractahedron::new(
                levels,
                if fat { Variant::Fat } else { Variant::Thin },
                false,
            )
            .unwrap();
            assert_eq!(
                gen.net().router_count(),
                spec.net().router_count(),
                "N={levels} fat={fat}"
            );
            assert_eq!(gen.end_nodes().len(), spec.end_nodes().len());
            assert_eq!(gen.net().link_count(), spec.net().link_count());
            assert_eq!(
                bfs::max_router_hops(gen.net()),
                bfs::max_router_hops(spec.net()),
                "N={levels} fat={fat}"
            );
            assert_eq!(
                bfs::avg_router_hops(gen.net()),
                bfs::avg_router_hops(spec.net()),
                "N={levels} fat={fat}"
            );
        }
    }

    #[test]
    fn eight_port_shape_builds() {
        // 8-port routers, 4-cluster, 3 down / 3 intra / 2 up: per the
        // paper's §4, "other fully connected groups of N-port routers".
        let shape = ClusterShape {
            cluster: 4,
            ports: 8,
            down: 3,
            up: 2,
        };
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        // Level 1: 12 clusters of 4 routers (fanout 12); level 2:
        // replication 8 layers.
        assert_eq!(g.end_nodes().len(), 12 * 12);
        assert_eq!(g.layer_count(2), 8);
        assert_eq!(g.net().router_count(), 12 * 4 + 8 * 4);
        g.net().validate().unwrap();
        assert!(bfs::is_connected(g.net()));
    }

    #[test]
    fn triangle_cluster_shape() {
        // 3 fully-connected 6-port routers: 2 intra, leaving 4 ports →
        // 2 down + 2 up.
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        assert_eq!(shape.fanout(), 6);
        assert_eq!(shape.replication(), 6);
        assert_eq!(g.end_nodes().len(), 36);
        assert_eq!(g.layer_count(2), 6);
        assert!(bfs::is_connected(g.net()));
    }

    #[test]
    fn fat_max_delay_generalizes_to_3n_minus_1() {
        for shape in [
            ClusterShape::PAPER,
            ClusterShape {
                cluster: 3,
                ports: 6,
                down: 2,
                up: 2,
            },
            ClusterShape {
                cluster: 4,
                ports: 8,
                down: 3,
                up: 2,
            },
        ] {
            for n in 1..=2usize {
                let g = GenFractahedron::new(shape, n, true).unwrap();
                assert_eq!(
                    bfs::max_router_hops(g.net()),
                    Some((3 * n - 1) as u32),
                    "{shape:?} N={n}"
                );
            }
        }
    }

    #[test]
    fn thin_max_delay_generalizes_to_4n_minus_2() {
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        for n in 1..=3usize {
            let g = GenFractahedron::new(shape, n, false).unwrap();
            assert_eq!(
                bfs::max_router_hops(g.net()),
                Some((4 * n - 2) as u32),
                "N={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "spare ports")]
    fn port_overflow_rejected() {
        let shape = ClusterShape {
            cluster: 4,
            ports: 6,
            down: 3,
            up: 1,
        };
        let _ = GenFractahedron::new(shape, 2, true);
    }

    #[test]
    fn address_decomposition() {
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        // addr 17 = cluster 2, corner (17 % 6) / 2 = 2, port 1.
        assert_eq!(g.cluster_of_addr(17), 2);
        assert_eq!(g.corner_of_addr(17), 2);
        assert_eq!(g.port_of_addr(17), 1);
        assert_eq!(g.stack_of_cluster(5, 2), 0);
        assert_eq!(g.child_digit(5, 2), 5);
        // Attachment agrees with the decomposition.
        for (addr, &e) in g.end_nodes().iter().enumerate() {
            let r = g.net().neighbors(e).next().unwrap();
            let pos = g.pos_of(r).unwrap();
            assert_eq!(pos.stack, g.cluster_of_addr(addr));
            assert_eq!(pos.corner, g.corner_of_addr(addr));
        }
    }

    #[test]
    fn wiring_discipline_holds() {
        // Child cluster c corner l up-port q lands on parent layer
        // (l*u + q)*L_child + j at router c/d, port c%d.
        let shape = ClusterShape {
            cluster: 3,
            ports: 6,
            down: 2,
            up: 2,
        };
        let g = GenFractahedron::new(shape, 2, true).unwrap();
        for c in 0..shape.fanout() {
            for l in 0..shape.cluster {
                for q in 0..shape.up {
                    let child = g.router(1, c, 0, l);
                    let ch = g.net().channel_out(child, shape.up_port(q)).unwrap();
                    let parent = g.net().channel_dst(ch);
                    let want_layer = l * shape.up + q;
                    assert_eq!(parent, g.router(2, 0, want_layer, c / shape.down));
                    assert_eq!(g.net().channel_dst_port(ch), PortId((c % shape.down) as u8));
                }
            }
        }
    }
}
