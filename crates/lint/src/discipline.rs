//! Routing-discipline models for rule L4.
//!
//! Each deadlock-free routing family in the paper obeys a *monotone
//! phase* discipline, and that is exactly what makes it statically
//! checkable: the fractahedral depth-first rule ascends the level
//! hierarchy and then only descends (§2.3–2.4), up*/down* fat-tree
//! routing climbs toward the roots and then only goes down (§3.3), and
//! dimension-order mesh/hypercube routing corrects coordinates in a
//! fixed dimension order (§3.1–3.2). A [`Discipline`] captures the
//! per-router metadata (level rank or coordinate vector) needed to
//! classify every hop of a traced path and reject the first
//! out-of-order one.

use fractanet_graph::{ChannelId, Network, NodeId};
use fractanet_topo::{FatTree, Fractahedron, Hypercube, Mesh2D, Topology};

/// A statically checkable routing discipline over a concrete network.
#[derive(Clone, Debug)]
pub enum Discipline {
    /// Hops may increase the router rank (ascend) or keep it (lateral)
    /// freely, but once any hop *decreases* the rank, no later hop may
    /// increase it again. Covers the fractahedral depth-first rule
    /// (rank = level) and fat-tree / generic up*-down* routing
    /// (rank = tree level).
    AscendThenDescend {
        /// Human name for diagnostics, e.g. `"depth-first fractahedral"`.
        name: &'static str,
        /// Rank per `NodeId::index()`; `None` for end nodes and routers
        /// outside the discipline (their hops are not classified).
        rank: Vec<Option<u32>>,
    },
    /// Every router-router hop changes exactly one coordinate, and the
    /// indices of the changed coordinates must be non-decreasing along
    /// the path (X before Y on meshes; low bit before high bit under
    /// e-cube).
    DimensionOrder {
        /// Human name for diagnostics, e.g. `"XY dimension order"`.
        name: &'static str,
        /// Coordinate vector per `NodeId::index()`; `None` for end
        /// nodes.
        coords: Vec<Option<Vec<i64>>>,
    },
}

impl Discipline {
    /// The discipline's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::AscendThenDescend { name, .. } => name,
            Discipline::DimensionOrder { name, .. } => name,
        }
    }

    /// The paper's depth-first fractahedral rule: levels ascend, then
    /// descend; intra-tetrahedron (lateral) hops are free. Fan-out
    /// routers sit below level 1 at rank 0.
    pub fn fractahedral(f: &Fractahedron) -> Self {
        let net = f.net();
        let rank = net
            .nodes()
            .map(|v| {
                if !net.is_router(v) {
                    None
                } else {
                    match f.pos_of(v) {
                        Some(pos) => Some(pos.level as u32),
                        // Tetrahedron levels are 1-based, so rank 0 is
                        // free for the fan-out stage below them.
                        None => Some(0),
                    }
                }
            })
            .collect();
        Discipline::AscendThenDescend {
            name: "depth-first fractahedral (ascend, then descend)",
            rank,
        }
    }

    /// Static up*/down* over a fat tree: tree level ascends, then
    /// descends.
    pub fn fat_tree(t: &FatTree) -> Self {
        let net = t.net();
        let rank = net
            .nodes()
            .map(|v| t.locate(v).map(|(level, _, _)| level as u32))
            .collect();
        Discipline::AscendThenDescend {
            name: "up*/down* fat tree",
            rank,
        }
    }

    /// Generic up*/down* against an arbitrary rank assignment (e.g. a
    /// BFS level order from repair). `rank[NodeId::index()]`; `None`
    /// entries are unclassified.
    pub fn up_down(rank: Vec<Option<u32>>) -> Self {
        Discipline::AscendThenDescend {
            name: "up*/down*",
            rank,
        }
    }

    /// X-then-Y dimension order on a 2-D mesh.
    pub fn mesh_xy(m: &Mesh2D) -> Self {
        let net = m.net();
        let coords = net
            .nodes()
            .map(|v| m.coords_of(v).map(|(x, y)| vec![x as i64, y as i64]))
            .collect();
        Discipline::DimensionOrder {
            name: "XY dimension order",
            coords,
        }
    }

    /// E-cube on a hypercube: each address bit is one dimension,
    /// corrected lowest-first.
    pub fn ecube(h: &Hypercube) -> Self {
        let net = h.net();
        let dim = h.dim() as usize;
        let coords = net
            .nodes()
            .map(|v| {
                h.label_of(v)
                    .map(|corner| (0..dim).map(|b| ((corner >> b) & 1) as i64).collect())
            })
            .collect();
        Discipline::DimensionOrder {
            name: "e-cube dimension order",
            coords,
        }
    }

    /// Checks one traced path. Returns `Err(description)` naming the
    /// first hop that violates the discipline; attach hops (to or from
    /// end nodes) and hops touching unclassified routers are skipped.
    pub fn check_path(&self, net: &Network, path: &[ChannelId]) -> Result<(), String> {
        match self {
            Discipline::AscendThenDescend { rank, .. } => {
                let mut descended = false;
                for &ch in path {
                    let Some((rs, rd)) = hop_meta(net, ch, rank) else {
                        continue;
                    };
                    if rd < rs {
                        descended = true;
                    } else if rd > rs && descended {
                        return Err(format!(
                            "hop {} -> {} re-ascends (rank {} -> {}) after a descent",
                            net.label(net.channel_src(ch)),
                            net.label(net.channel_dst(ch)),
                            rs,
                            rd
                        ));
                    }
                }
                Ok(())
            }
            Discipline::DimensionOrder { coords, .. } => {
                let mut last_dim: Option<usize> = None;
                for &ch in path {
                    let Some((cs, cd)) = hop_meta(net, ch, coords) else {
                        continue;
                    };
                    let changed: Vec<usize> = (0..cs.len().min(cd.len()))
                        .filter(|&i| cs[i] != cd[i])
                        .collect();
                    let [dim] = changed[..] else {
                        return Err(format!(
                            "hop {} -> {} changes {} dimensions at once",
                            net.label(net.channel_src(ch)),
                            net.label(net.channel_dst(ch)),
                            changed.len()
                        ));
                    };
                    if let Some(prev) = last_dim {
                        if dim < prev {
                            return Err(format!(
                                "hop {} -> {} corrects dimension {} after dimension {}",
                                net.label(net.channel_src(ch)),
                                net.label(net.channel_dst(ch)),
                                dim,
                                prev
                            ));
                        }
                    }
                    last_dim = Some(dim);
                }
                Ok(())
            }
        }
    }
}

/// Metadata of both endpoints of a hop, when both are classified
/// routers; `None` skips the hop (attach links, fan-out edges outside
/// the discipline).
fn hop_meta<'a, T>(net: &Network, ch: ChannelId, table: &'a [Option<T>]) -> Option<(&'a T, &'a T)> {
    let s = net.channel_src(ch);
    let d = net.channel_dst(ch);
    match (&table[s.index()], &table[d.index()]) {
        (Some(a), Some(b)) => Some((a, b)),
        _ => None,
    }
}

/// Convenience: the set of node ranks used by repair-style BFS level
/// orders, from a closure over node ids (router-only entries).
pub fn rank_table(net: &Network, f: impl FnMut(NodeId) -> Option<u32>) -> Vec<Option<u32>> {
    net.nodes().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_route::{dor, fattree, RouteSet};
    use fractanet_topo::Variant;

    #[test]
    fn fractahedral_routes_conform() {
        let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let d = Discipline::fractahedral(&f);
        for (s, dst, p) in rs.pairs() {
            assert!(d.check_path(f.net(), p).is_ok(), "{s}->{dst}");
        }
    }

    #[test]
    fn mesh_xy_conforms_but_yx_does_not() {
        let m = Mesh2D::new(3, 3, 1, 6).unwrap();
        let xy = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_xy_routes(&m)).unwrap();
        let d = Discipline::mesh_xy(&m);
        for (_, _, p) in xy.pairs() {
            assert!(d.check_path(m.net(), p).is_ok());
        }
        // YX routing violates the XY discipline on some corner pair.
        let yx = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_yx_routes(&m)).unwrap();
        let violations = yx
            .pairs()
            .filter(|(_, _, p)| d.check_path(m.net(), p).is_err())
            .count();
        assert!(violations > 0, "YX must trip the XY discipline");
    }

    #[test]
    fn ecube_conforms() {
        let h = Hypercube::new(3, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &dor::ecube_routes(&h)).unwrap();
        let d = Discipline::ecube(&h);
        for (_, _, p) in rs.pairs() {
            assert!(d.check_path(h.net(), p).is_ok());
        }
    }

    #[test]
    fn fat_tree_conforms() {
        let t = FatTree::paper_4_2_64();
        let rs = RouteSet::from_table(
            t.net(),
            t.end_nodes(),
            &fattree::fattree_routes(&t, fattree::UpPolicy::ByLeafRouter),
        )
        .unwrap();
        let d = Discipline::fat_tree(&t);
        for (s, dst, p) in rs.pairs() {
            assert!(d.check_path(t.net(), p).is_ok(), "{s}->{dst}");
        }
    }

    #[test]
    fn reascent_is_reported() {
        // Hand-build a path that goes down then up on a fat tree.
        let t = FatTree::paper_4_2_64();
        let net = t.net();
        // Find an up channel (leaf level 1 -> level 2) and use
        // down-then-up: reverse(up) then up.
        let up = net
            .channels()
            .find(|&ch| {
                let (s, d) = (net.channel_src(ch), net.channel_dst(ch));
                matches!(
                    (t.locate(s), t.locate(d)),
                    (Some((1, _, _)), Some((2, _, _)))
                )
            })
            .unwrap();
        let d = Discipline::fat_tree(&t);
        let err = d.check_path(net, &[up.reverse(), up]).unwrap_err();
        assert!(err.contains("re-ascends"), "{err}");
    }
}
