//! Structured lint diagnostics: rule identifiers, severities, and the
//! report object every consumer (CLI, CI gate, repair hook, examples)
//! shares.
//!
//! A [`Diagnostic`] is machine-readable first: rule id, severity, the
//! affected source→destination pairs and channels, and an optional
//! remediation suggestion, with the human sentence attached rather
//! than the other way around. [`LintReport::to_json`] renders the
//! whole report as one JSON object for the `fractanet lint --json` CI
//! gate.

use fractanet_graph::json::{JsonArray, JsonObject};
use fractanet_graph::ChannelId;
use std::fmt;

/// Identifier of a lint rule, stable across releases (CI configs and
/// suppression lists key on these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Full pair coverage: every live src→dst pair has a route that
    /// actually ends at dst.
    L1Coverage,
    /// Path well-formedness: channels consecutive, alive, and never
    /// repeated within a path.
    L2WellFormed,
    /// Channel-dependency acyclicity, with *all* elementary cycles
    /// enumerated (bounded) and a suggested disable set.
    L3CdgCycles,
    /// Routing-discipline conformance (depth-first ascend-then-descend,
    /// dimension order, up*/down*).
    L4Discipline,
    /// Per-link worst-case contention within the paper's bound for the
    /// topology.
    L5Contention,
    /// Disable-set minimality (exact mode only): compares the turns the
    /// installed discipline forgoes against the proven minimum from the
    /// exact synthesizer, reporting the gap and the certificate.
    L6Minimality,
}

impl RuleId {
    /// The short stable code, e.g. `"L3"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L1Coverage => "L1",
            RuleId::L2WellFormed => "L2",
            RuleId::L3CdgCycles => "L3",
            RuleId::L4Discipline => "L4",
            RuleId::L5Contention => "L5",
            RuleId::L6Minimality => "L6",
        }
    }

    /// One-line rule description for report headers.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::L1Coverage => "pair coverage",
            RuleId::L2WellFormed => "path well-formedness",
            RuleId::L3CdgCycles => "channel-dependency acyclicity",
            RuleId::L4Discipline => "routing-discipline conformance",
            RuleId::L5Contention => "contention bound",
            RuleId::L6Minimality => "disable-set minimality",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is. Only `Error` gates CI / fails the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: expected degradation or an observation with no
    /// configured bound (e.g. contention with no paper reference).
    Info,
    /// Suspicious but not provably wrong.
    Warning,
    /// A defect: the configuration would misroute, strand a pair, or
    /// admit deadlock.
    Error,
}

impl Severity {
    /// Lowercase tag used in text and JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One finding: a rule violation (or observation) with its evidence.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Affected `(src, dst)` address pairs (a bounded sample when the
    /// population is large; `affected_pairs` holds the true count).
    pub pairs: Vec<(usize, usize)>,
    /// Total number of affected pairs (may exceed `pairs.len()`).
    pub affected_pairs: usize,
    /// Channels involved (cycle members, dead channels, hot links…).
    pub channels: Vec<ChannelId>,
    /// Suggested remediation, when the linter can compute one (e.g. a
    /// minimal disable set for an L3 cycle).
    pub suggestion: Option<String>,
    /// For L6: how many more turns the discipline disables than the
    /// exhibited minimum (0 = already minimal).
    pub gap: Option<usize>,
    /// For L3: whether the cycle enumeration behind this finding hit
    /// its cap — any suggested disable set then covers a partial cycle
    /// list and exact mode refuses to claim minimality.
    pub truncated: Option<bool>,
    /// A replayable certificate (raw JSON object) backing the finding,
    /// emitted by exact mode.
    pub certificate: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no pair/channel evidence attached.
    pub fn new(rule: RuleId, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity,
            message: message.into(),
            pairs: Vec::new(),
            affected_pairs: 0,
            channels: Vec::new(),
            suggestion: None,
            gap: None,
            truncated: None,
            certificate: None,
        }
    }

    /// Attaches affected pairs (also sets `affected_pairs` when it was
    /// unset or smaller).
    pub fn with_pairs(mut self, pairs: Vec<(usize, usize)>) -> Self {
        self.affected_pairs = self.affected_pairs.max(pairs.len());
        self.pairs = pairs;
        self
    }

    /// Attaches involved channels.
    pub fn with_channels(mut self, channels: Vec<ChannelId>) -> Self {
        self.channels = channels;
        self
    }

    /// Attaches a remediation suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// Attaches an L6 minimality gap.
    pub fn with_gap(mut self, gap: usize) -> Self {
        self.gap = Some(gap);
        self
    }

    /// Records whether the backing cycle enumeration was truncated.
    pub fn with_truncated(mut self, truncated: bool) -> Self {
        self.truncated = Some(truncated);
        self
    }

    /// Attaches a replayable certificate (must already be valid JSON).
    pub fn with_certificate(mut self, cert: impl Into<String>) -> Self {
        self.certificate = Some(cert.into());
        self
    }

    fn json(&self) -> String {
        let mut o = JsonObject::new()
            .field_str("rule", self.rule.code())
            .field_str("severity", self.severity.tag())
            .field_str("message", &self.message);
        if !self.pairs.is_empty() {
            let mut pairs = JsonArray::new();
            for &(s, d) in &self.pairs {
                pairs.push_raw(&format!("[{s},{d}]"));
            }
            o = o
                .field_raw("pairs", &pairs.build())
                .field_num("affected_pairs", self.affected_pairs);
        }
        if !self.channels.is_empty() {
            let mut channels = JsonArray::new();
            for ch in &self.channels {
                channels.push_num(ch.0);
            }
            o = o.field_raw("channels", &channels.build());
        }
        if let Some(s) = &self.suggestion {
            o = o.field_str("suggestion", s);
        }
        if let Some(g) = self.gap {
            o = o.field_num("gap", g);
        }
        if let Some(t) = self.truncated {
            o = o.field_bool("truncated", t);
        }
        if let Some(c) = &self.certificate {
            o = o.field_raw("certificate", c);
        }
        o.build()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}",
            self.severity,
            self.rule.code(),
            self.rule.title(),
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}

/// The outcome of linting one `Network` + `RouteSet`.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Name of the linted configuration (topology name, or caller tag).
    pub subject: String,
    /// All findings, in rule order.
    pub diagnostics: Vec<Diagnostic>,
    /// Ordered pairs examined (live pairs under the fault mask).
    pub pairs_checked: usize,
    /// Channels in the network.
    pub channels: usize,
    /// Rules that actually ran (L4/L5 are skipped without a discipline
    /// or bound).
    pub rules_run: Vec<RuleId>,
}

impl LintReport {
    /// Number of error-severity findings — the CI gate condition.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the configuration passed (no error-severity findings).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings for one rule.
    pub fn by_rule(&self, rule: RuleId) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Renders the whole report as one JSON object:
    ///
    /// ```json
    /// {"subject":"…","pairs_checked":N,"channels":N,
    ///  "rules_run":["L1",…],"errors":N,"warnings":N,"clean":bool,
    ///  "diagnostics":[{"rule":"L3","severity":"error","message":"…",
    ///                  "pairs":[[s,d],…],"affected_pairs":N,
    ///                  "channels":[c,…],"suggestion":"…",
    ///                  "gap":N,"truncated":bool,"certificate":{…}},…]}
    /// ```
    ///
    /// `gap`, `truncated` and `certificate` appear only on findings
    /// that set them (L6 and exact-mode L3).
    pub fn to_json(&self) -> String {
        let mut rules = JsonArray::new();
        for r in &self.rules_run {
            rules.push_str_elem(r.code());
        }
        let mut diags = JsonArray::new();
        for d in &self.diagnostics {
            diags.push_raw(&d.json());
        }
        JsonObject::new()
            .field_str("subject", &self.subject)
            .field_num("pairs_checked", self.pairs_checked)
            .field_num("channels", self.channels)
            .field_raw("rules_run", &rules.build())
            .field_num("errors", self.error_count())
            .field_num("warnings", self.warning_count())
            .field_bool("clean", self.is_clean())
            .field_raw("diagnostics", &diags.build())
            .build()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint {}: {} pairs, {} channels, rules {}",
            self.subject,
            self.pairs_checked,
            self.channels,
            self.rules_run
                .iter()
                .map(|r| r.code())
                .collect::<Vec<_>>()
                .join("+")
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        if self.is_clean() {
            write!(f, "  OK ({} warnings)", self.warning_count())
        } else {
            write!(
                f,
                "  FAILED: {} errors, {} warnings",
                self.error_count(),
                self.warning_count()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LintReport {
        LintReport {
            subject: "test \"net\"".into(),
            diagnostics: vec![
                Diagnostic::new(RuleId::L3CdgCycles, Severity::Error, "cycle of 4")
                    .with_channels(vec![ChannelId(3), ChannelId(5)])
                    .with_suggestion("disable c3->c5"),
                Diagnostic::new(RuleId::L1Coverage, Severity::Info, "pair severed")
                    .with_pairs(vec![(0, 1)]),
            ],
            pairs_checked: 12,
            channels: 16,
            rules_run: vec![RuleId::L1Coverage, RuleId::L3CdgCycles],
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = report();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 0);
        assert!(!r.is_clean());
        assert_eq!(r.by_rule(RuleId::L3CdgCycles).count(), 1);
        assert_eq!(r.by_rule(RuleId::L5Contention).count(), 0);
    }

    #[test]
    fn json_is_well_formed() {
        let j = report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"L3\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"channels\":[3,5]"));
        assert!(j.contains("\"pairs\":[[0,1]]"));
        assert!(j.contains("\"subject\":\"test \\\"net\\\"\""));
        assert!(j.contains("\"clean\":false"));
        // Balanced braces/brackets (cheap structural check; the shim
        // workspace has no JSON parser to round-trip through).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_exact_output() {
        // Pins the exact serialization: the CI gate and external
        // consumers parse this shape, so the shared-writer port must
        // not shift a byte.
        assert_eq!(
            report().to_json(),
            "{\"subject\":\"test \\\"net\\\"\",\"pairs_checked\":12,\"channels\":16,\
             \"rules_run\":[\"L1\",\"L3\"],\"errors\":1,\"warnings\":0,\"clean\":false,\
             \"diagnostics\":[{\"rule\":\"L3\",\"severity\":\"error\",\
             \"message\":\"cycle of 4\",\"channels\":[3,5],\
             \"suggestion\":\"disable c3->c5\"},\
             {\"rule\":\"L1\",\"severity\":\"info\",\"message\":\"pair severed\",\
             \"pairs\":[[0,1]],\"affected_pairs\":1}]}"
        );
    }

    #[test]
    fn optional_exact_fields_serialize_only_when_set() {
        let d = Diagnostic::new(RuleId::L6Minimality, Severity::Info, "2 over minimum")
            .with_gap(2)
            .with_truncated(false)
            .with_certificate("{\"disables\":[[0,2]]}");
        let j = d.json();
        assert!(j.contains("\"rule\":\"L6\""));
        assert!(j.contains("\"gap\":2"));
        assert!(j.contains("\"truncated\":false"));
        assert!(j.contains("\"certificate\":{\"disables\":[[0,2]]}"));
        // And the plain report (which sets none of them) stays free of
        // the keys — guarded byte-exactly by json_exact_output too.
        assert!(!report().to_json().contains("gap"));
        assert!(!report().to_json().contains("certificate"));
    }

    #[test]
    fn display_names_rules_and_verdict() {
        let text = report().to_string();
        assert!(text.contains("[L3 channel-dependency acyclicity]"));
        assert!(text.contains("suggestion: disable c3->c5"));
        assert!(text.contains("FAILED: 1 errors"));
        let clean = LintReport {
            diagnostics: Vec::new(),
            ..report()
        };
        assert!(clean.to_string().contains("OK"));
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
