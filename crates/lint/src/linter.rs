//! The lint driver: rules L1–L6 over a `Network` + `RouteSet`.
//!
//! | rule | checks | severity |
//! |------|--------|----------|
//! | L1 | every live src→dst pair has a route that ends at dst | error (info when the pair is provably severed by faults) |
//! | L2 | paths are channel-consecutive, alive, router-interior, and never repeat a channel | error |
//! | L3 | channel-dependency graph acyclic; on failure *all* elementary cycles (bounded) plus a suggested disable set | error |
//! | L4 | routes obey the declared routing discipline | error |
//! | L5 | per-link worst-case contention within the configured bound | error (info when no bound is configured) |
//! | L6 | (exact mode) installed discipline vs the exhibited minimum disable set, with gap and certificate | info |
//!
//! L1–L3 always run; L4 needs a [`Discipline`], L5 reports
//! informationally unless a bound is set, and L6 runs only under
//! [`Linter::with_exact`]. All rules are static — no flit ever moves —
//! which is the §2.4 claim ("the preceding routing algorithm
//! eliminates these loops and avoids possible deadlocks") made
//! checkable for *any* table, not just the paper's.
//!
//! Exact mode upgrades the L3 disable-set suggestion from greedy to
//! the branch-and-bound minimum over the enumerated cycle space
//! (minimality is never claimed over a truncated enumeration) and adds
//! the L6 report backed by the certificate from
//! [`fractanet_deadlock::synthesize_disables_exact`].

use crate::diag::{Diagnostic, LintReport, RuleId, Severity};
use crate::discipline::Discipline;
use fractanet_deadlock::{
    min_cycle_disables, route_one_masked, synthesize_disables, synthesize_disables_exact,
    ChannelDependencyGraph, DisableSet, ExactConfig,
};
use fractanet_graph::{ChannelId, Network, NodeId};
use fractanet_metrics::max_link_contention_paths;
use fractanet_route::{DeadMask, Paths, RouteError, RouteSet, Routes};
use std::collections::VecDeque;

/// How many example pairs / channels a single diagnostic carries
/// before switching to a count.
const SAMPLE: usize = 8;

/// Static route-table verifier. Build with [`Linter::new`], configure
/// with the `with_*` methods, run with [`Linter::check`].
///
/// ```
/// use fractanet_lint::Linter;
/// use fractanet_route::{fractal, RouteSet};
/// use fractanet_topo::{Fractahedron, Topology};
///
/// let f = Fractahedron::paper_fat_64();
/// let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal::fractal_routes(&f)).unwrap();
/// let report = Linter::new(f.net(), f.end_nodes()).check(&rs);
/// assert!(report.is_clean());
/// ```
pub struct Linter<'a> {
    net: &'a Network,
    ends: &'a [NodeId],
    mask: Option<&'a DeadMask>,
    discipline: Option<Discipline>,
    contention_bound: Option<usize>,
    subject: String,
    max_cycles: usize,
    max_cycle_steps: usize,
    suggest_disables: bool,
    exact: Option<ExactConfig>,
    vc_ordering: Option<VcOrdering>,
}

/// An externally verified virtual-channel ordering (the linter has no
/// VC model of its own — the caller annotates the routes over the
/// extended `(channel, vc)` graph and reports the verdict here).
struct VcOrdering {
    vcs: u8,
    scheme: String,
    extended_acyclic: bool,
}

impl<'a> Linter<'a> {
    /// A linter for a network whose end nodes (in address order) are
    /// `ends`.
    pub fn new(net: &'a Network, ends: &'a [NodeId]) -> Self {
        Linter {
            net,
            ends,
            mask: None,
            discipline: None,
            contention_bound: None,
            subject: "network".into(),
            max_cycles: 16,
            max_cycle_steps: 100_000,
            suggest_disables: true,
            exact: None,
            vc_ordering: None,
        }
    }

    /// Names the configuration in reports (topology name, heal tag…).
    pub fn with_subject(mut self, s: impl Into<String>) -> Self {
        self.subject = s.into();
        self
    }

    /// Lints against a fault mask: dead channels in paths become L2
    /// errors, and pairs severed by the faults downgrade from L1
    /// errors to informational findings.
    pub fn with_mask(mut self, mask: &'a DeadMask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Declares the routing discipline for rule L4.
    pub fn with_discipline(mut self, d: Discipline) -> Self {
        self.discipline = Some(d);
        self
    }

    /// Sets the worst-case contention bound for rule L5 (`k` of
    /// `k:1`). Without a bound L5 only reports the observed value.
    pub fn with_contention_bound(mut self, k: usize) -> Self {
        self.contention_bound = Some(k);
        self
    }

    /// Declares a virtual-channel ordering over these routes, with the
    /// caller's verdict on the extended `(channel, vc)` dependency
    /// graph (Dally–Seitz). When the extended graph is acyclic,
    /// physical-CDG cycles are the *intent* — minimal routes the VC
    /// ordering makes safe — so L3 reports them informationally
    /// instead of as errors. When it is not, L3 fails with the
    /// extended verdict attached in addition to the physical cycles.
    pub fn with_vc_ordering(
        mut self,
        vcs: u8,
        scheme: impl Into<String>,
        extended_acyclic: bool,
    ) -> Self {
        self.vc_ordering = Some(VcOrdering {
            vcs,
            scheme: scheme.into(),
            extended_acyclic,
        });
        self
    }

    /// Caps L3 cycle enumeration (default 16 cycles / 100k DFS steps).
    pub fn with_cycle_limit(mut self, max_cycles: usize, max_steps: usize) -> Self {
        self.max_cycles = max_cycles;
        self.max_cycle_steps = max_steps;
        self
    }

    /// Disables the L3 disable-set suggestion (synthesis re-routes the
    /// whole network; skip it when linting inside a hot path).
    pub fn without_suggestions(mut self) -> Self {
        self.suggest_disables = false;
        self
    }

    /// Enables exact mode: the L3 suggestion becomes the proven
    /// minimum hitting set over the enumerated cycles, and the L6
    /// minimality rule runs, comparing the installed discipline
    /// against the exact synthesizer's certified disable set.
    pub fn with_exact(mut self, cfg: ExactConfig) -> Self {
        self.exact = Some(cfg);
        self
    }

    fn node_ok(&self, v: NodeId) -> bool {
        self.mask.is_none_or(|m| m.node_ok(v))
    }

    fn channel_ok(&self, ch: ChannelId) -> bool {
        self.mask.is_none_or(|m| m.channel_ok(self.net, ch))
    }

    /// Connected-component label per node over *surviving* channels
    /// (`u32::MAX` = dead node), for distinguishing coverage holes
    /// from genuinely severed pairs.
    fn components(&self) -> Vec<u32> {
        const DEAD: u32 = u32::MAX;
        let n = self.net.node_count();
        let mut comp = vec![DEAD; n];
        let mut next = 0u32;
        for root in self.net.nodes() {
            if comp[root.index()] != DEAD || !self.node_ok(root) {
                continue;
            }
            comp[root.index()] = next;
            let mut q = VecDeque::from([root]);
            while let Some(v) = q.pop_front() {
                for &(ch, w) in self.net.channels_from(v) {
                    if self.channel_ok(ch) && self.node_ok(w) && comp[w.index()] == DEAD {
                        comp[w.index()] = next;
                        q.push_back(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Runs every applicable rule over `routes`.
    pub fn check(&self, routes: &RouteSet) -> LintReport {
        self.check_paths(Paths::dense(routes))
    }

    /// Runs every applicable rule directly over destination tables,
    /// walking each pair's table entries in place — no dense path
    /// matrix is ever materialized. Tracing failures surface as
    /// diagnostics: missing entries as L1 coverage findings (severed
    /// vs hole, by surviving component), forwarding loops as L2 errors
    /// naming the visited-router sequence. When a fault mask is set,
    /// pairs whose own attach channels are dead lint as severed (the
    /// tables cannot represent an end node's death; the dense view
    /// encodes it as an empty path).
    pub fn check_tables(&self, routes: &Routes) -> LintReport {
        self.check_paths(Paths::tables(self.net, self.ends, routes))
    }

    /// Runs every applicable rule over any per-pair path view.
    pub fn check_paths(&self, paths: Paths<'_>) -> LintReport {
        let mut diags = Vec::new();
        let mut rules_run = vec![
            RuleId::L1Coverage,
            RuleId::L2WellFormed,
            RuleId::L3CdgCycles,
        ];
        let pairs_checked = self.check_coverage_and_paths(paths, &mut diags);
        self.check_cycles(paths, &mut diags);
        if let Some(d) = &self.discipline {
            rules_run.push(RuleId::L4Discipline);
            self.check_discipline(paths, d, &mut diags);
        }
        rules_run.push(RuleId::L5Contention);
        self.check_contention(paths, &mut diags);
        if let Some(cfg) = &self.exact {
            rules_run.push(RuleId::L6Minimality);
            self.check_minimality(paths, cfg, &mut diags);
        }
        diags.sort_by_key(|d| (d.rule, std::cmp::Reverse(d.severity)));
        LintReport {
            subject: self.subject.clone(),
            diagnostics: diags,
            pairs_checked,
            channels: self.net.channel_count(),
            rules_run,
        }
    }

    /// Whether both of the pair's attach channels survive the mask
    /// (vacuously true without one).
    fn attach_ok(&self, s: usize, d: usize) -> bool {
        let inject = self.net.channels_from(self.ends[s]).first();
        let eject = self.net.channels_from(self.ends[d]).first();
        match (inject, eject) {
            (Some(&(i, _)), Some(&(e, _))) => self.channel_ok(i) && self.channel_ok(e.reverse()),
            _ => false,
        }
    }

    /// L1 + L2 in a single pass over all pairs. Returns the number of
    /// live pairs examined.
    fn check_coverage_and_paths(&self, paths: Paths<'_>, out: &mut Vec<Diagnostic>) -> usize {
        let comp = self.components();
        let table_view = matches!(paths, Paths::Tables { .. });
        let mut holes: Vec<(usize, usize)> = Vec::new();
        let mut severed: Vec<(usize, usize)> = Vec::new();
        let mut misdelivered: Vec<(usize, usize)> = Vec::new();
        let mut wrong_source: Vec<(usize, usize)> = Vec::new();
        let mut discontinuous: Vec<(usize, usize)> = Vec::new();
        let mut dead: Vec<(usize, usize)> = Vec::new();
        let mut dead_channels: Vec<ChannelId> = Vec::new();
        let mut repeated: Vec<(usize, usize)> = Vec::new();
        let mut through_end: Vec<(usize, usize)> = Vec::new();
        let mut loops: Vec<(usize, usize)> = Vec::new();
        let mut loop_detail: Option<String> = None;
        let mut checked = 0usize;

        let mut seen_stamp = vec![0u32; self.net.channel_count()];
        let mut stamp = 0u32;
        paths.for_each_pair(|s, d, res| {
            if s >= self.ends.len()
                || d >= self.ends.len()
                || !self.node_ok(self.ends[s])
                || !self.node_ok(self.ends[d])
            {
                return;
            }
            checked += 1;
            let empty_route = |holes: &mut Vec<(usize, usize)>,
                               severed: &mut Vec<(usize, usize)>| {
                if comp[self.ends[s].index()] == comp[self.ends[d].index()] {
                    holes.push((s, d));
                } else {
                    severed.push((s, d));
                }
            };
            // Destination tables only describe surviving routers'
            // entries; a pair whose own attach channel died traces
            // right across it. Treat those pairs as severed, matching
            // the dense view's empty paths.
            if table_view && self.mask.is_some() && !self.attach_ok(s, d) {
                empty_route(&mut holes, &mut severed);
                return;
            }
            let p = match res {
                Ok([]) => {
                    empty_route(&mut holes, &mut severed);
                    return;
                }
                Ok(p) => p,
                Err(RouteError::ForwardingLoop { ref visited, .. }) => {
                    loops.push((s, d));
                    if loop_detail.is_none() {
                        let names: Vec<&str> = visited.iter().map(|&v| self.net.label(v)).collect();
                        loop_detail = Some(names.join(" -> "));
                    }
                    return;
                }
                Err(RouteError::Misdelivered { .. }) => {
                    misdelivered.push((s, d));
                    return;
                }
                // Missing or unconnected table entries: the route just
                // isn't there — a hole or a severed pair.
                Err(_) => {
                    empty_route(&mut holes, &mut severed);
                    return;
                }
            };
            // L1: endpoints.
            if self.net.channel_src(p[0]) != self.ends[s] {
                wrong_source.push((s, d));
            }
            if self.net.channel_dst(*p.last().expect("non-empty")) != self.ends[d] {
                misdelivered.push((s, d));
            }
            // L2: consecutive, alive, simple, router-interior.
            stamp += 1;
            let mut flagged_dead = false;
            let mut flagged_rep = false;
            for (i, &ch) in p.iter().enumerate() {
                if !self.channel_ok(ch) && !flagged_dead {
                    dead.push((s, d));
                    if dead_channels.len() < SAMPLE && !dead_channels.contains(&ch) {
                        dead_channels.push(ch);
                    }
                    flagged_dead = true;
                }
                if seen_stamp[ch.index()] == stamp && !flagged_rep {
                    repeated.push((s, d));
                    flagged_rep = true;
                }
                seen_stamp[ch.index()] = stamp;
                if i + 1 < p.len() {
                    let next = p[i + 1];
                    if self.net.channel_dst(ch) != self.net.channel_src(next) {
                        discontinuous.push((s, d));
                        break;
                    }
                    if !self.net.is_router(self.net.channel_dst(ch)) {
                        through_end.push((s, d));
                        break;
                    }
                }
            }
        });

        if !loops.is_empty() {
            let total = loops.len();
            let sample: Vec<_> = loops.into_iter().take(SAMPLE).collect();
            let mut diag = Diagnostic::new(
                RuleId::L2WellFormed,
                Severity::Error,
                format!(
                    "{total} pair(s) forward in a loop (e.g. {:?} via {})",
                    sample[0],
                    loop_detail.as_deref().unwrap_or("?"),
                ),
            )
            .with_pairs(sample);
            diag.affected_pairs = total;
            out.push(diag);
        }

        fn emit(
            out: &mut Vec<Diagnostic>,
            rule: RuleId,
            sev: Severity,
            pairs: Vec<(usize, usize)>,
            what: &str,
        ) {
            if pairs.is_empty() {
                return;
            }
            let total = pairs.len();
            let sample: Vec<_> = pairs.into_iter().take(SAMPLE).collect();
            let mut diag = Diagnostic::new(
                rule,
                sev,
                format!("{total} pair(s) {what} (e.g. {:?})", sample[0]),
            )
            .with_pairs(sample);
            diag.affected_pairs = total;
            out.push(diag);
        }
        emit(
            out,
            RuleId::L1Coverage,
            Severity::Error,
            holes,
            "have no route despite src and dst being connected in the surviving network \
             (coverage hole)",
        );
        emit(
            out,
            RuleId::L1Coverage,
            Severity::Info,
            severed,
            "are severed by faults (no surviving physical path); graceful degradation",
        );
        emit(
            out,
            RuleId::L1Coverage,
            Severity::Error,
            wrong_source,
            "have a route that does not start at the source end node",
        );
        emit(
            out,
            RuleId::L1Coverage,
            Severity::Error,
            misdelivered,
            "have a route that does not end at the destination end node",
        );
        emit(
            out,
            RuleId::L2WellFormed,
            Severity::Error,
            discontinuous,
            "have a discontinuous path (consecutive channels do not share a router)",
        );
        if !dead.is_empty() {
            let total = dead.len();
            let sample: Vec<_> = dead.into_iter().take(SAMPLE).collect();
            let mut diag = Diagnostic::new(
                RuleId::L2WellFormed,
                Severity::Error,
                format!(
                    "{total} pair(s) routed over dead channels (e.g. {:?} via {:?})",
                    sample[0], dead_channels[0]
                ),
            )
            .with_pairs(sample)
            .with_channels(dead_channels);
            diag.affected_pairs = total;
            out.push(diag);
        }
        emit(
            out,
            RuleId::L2WellFormed,
            Severity::Error,
            repeated,
            "repeat a channel within one path (wormhole self-block)",
        );
        emit(
            out,
            RuleId::L2WellFormed,
            Severity::Error,
            through_end,
            "route through an end node as if it were a router",
        );
        checked
    }

    /// L3: CDG acyclicity with full (bounded) cycle enumeration and a
    /// suggested disable set.
    fn check_cycles(&self, paths: Paths<'_>, out: &mut Vec<Diagnostic>) {
        let cdg = ChannelDependencyGraph::from_paths(self.net, paths);
        if cdg.is_deadlock_free() {
            return;
        }
        // A verified VC ordering makes physical cycles intentional:
        // the routes are minimal *because* the extended (channel, vc)
        // graph — not the physical one — is what must be acyclic.
        if let Some(vc) = &self.vc_ordering {
            if vc.extended_acyclic {
                out.push(Diagnostic::new(
                    RuleId::L3CdgCycles,
                    Severity::Info,
                    format!(
                        "physical channel-dependency cycles present by design: the \
                         {}-VC {} ordering breaks them — extended (channel, vc) \
                         dependency graph verified acyclic",
                        vc.vcs, vc.scheme
                    ),
                ));
                return;
            }
            out.push(Diagnostic::new(
                RuleId::L3CdgCycles,
                Severity::Error,
                format!(
                    "the {}-VC {} ordering does NOT break the physical cycles: \
                     the extended (channel, vc) dependency graph is still cyclic",
                    vc.vcs, vc.scheme
                ),
            ));
        }
        let (cycles, truncated) = cdg
            .graph()
            .elementary_cycles(self.max_cycles, self.max_cycle_steps);
        let suggestion = if self.suggest_disables {
            Some(match &self.exact {
                Some(cfg) => self.exact_suggestion(&cycles, truncated, cfg),
                None => self.disable_suggestion(&cycles),
            })
        } else {
            None
        };
        for (i, cyc) in cycles.iter().enumerate() {
            let chans: Vec<ChannelId> = cyc.iter().map(|&v| ChannelId(v)).collect();
            let hops: Vec<String> = chans
                .iter()
                .map(|&ch| {
                    format!(
                        "{}->{}",
                        self.net.label(self.net.channel_src(ch)),
                        self.net.label(self.net.channel_dst(ch))
                    )
                })
                .collect();
            let mut diag = Diagnostic::new(
                RuleId::L3CdgCycles,
                Severity::Error,
                format!(
                    "channel-dependency cycle {}/{}{}: {} ({} channels)",
                    i + 1,
                    cycles.len(),
                    if truncated {
                        "+ (enumeration truncated)"
                    } else {
                        ""
                    },
                    hops.join(" => "),
                    chans.len()
                ),
            )
            .with_channels(chans)
            .with_truncated(truncated);
            if i == 0 {
                if let Some(s) = &suggestion {
                    diag = diag.with_suggestion(s.clone());
                }
            }
            out.push(diag);
        }
        if truncated {
            out.push(
                Diagnostic::new(
                    RuleId::L3CdgCycles,
                    Severity::Warning,
                    format!(
                        "cycle enumeration truncated at {} cycles — the dependency graph \
                         contains more, so any suggested disable set covers a partial \
                         cycle list",
                        cycles.len()
                    ),
                )
                .with_truncated(true),
            );
        }
    }

    /// A minimal-ish disable set that would make the network
    /// deadlock-free, via the Fig 2 synthesis — falling back to a
    /// greedy hitting set of turns over the enumerated cycles when the
    /// synthesis needs no disables (the installed tables, not the
    /// topology, are at fault).
    fn disable_suggestion(&self, cycles: &[Vec<u32>]) -> String {
        match synthesize_disables(self.net, self.ends, 200) {
            Ok((disables, _)) if disables.is_empty() => {
                let turns = turn_hitting_set(cycles);
                let named: Vec<String> = turns
                    .iter()
                    .map(|&(a, b)| {
                        format!(
                            "{}->{}-x->{}",
                            self.net.label(self.net.channel_src(ChannelId(a))),
                            self.net.label(self.net.channel_dst(ChannelId(a))),
                            self.net.label(self.net.channel_dst(ChannelId(b)))
                        )
                    })
                    .collect();
                format!(
                    "disable {} turn(s) to break the enumerated cycle(s): {}; \
                     alternatively re-route — greedy shortest-allowed-path routing \
                     of this topology is acyclic without disables",
                    named.len(),
                    named.join(", ")
                )
            }
            Ok((disables, _)) => {
                let mut turns: Vec<String> = disables
                    .iter()
                    .map(|(a, b)| {
                        format!(
                            "{}->{}-x->{}",
                            self.net.label(self.net.channel_src(a)),
                            self.net.label(self.net.channel_dst(a)),
                            self.net.label(self.net.channel_dst(b))
                        )
                    })
                    .collect();
                turns.sort();
                format!(
                    "disable {} turn(s) and re-route (Fig 2 synthesis): {}",
                    turns.len(),
                    turns.join(", ")
                )
            }
            Err(e) => format!("no disable set found ({e})"),
        }
    }

    /// Exact-mode L3 suggestion: the branch-and-bound minimum hitting
    /// set over the enumerated cycles, with the minimality claim scoped
    /// honestly — never claimed over a truncated enumeration or an
    /// exhausted node budget.
    fn exact_suggestion(&self, cycles: &[Vec<u32>], truncated: bool, cfg: &ExactConfig) -> String {
        let sol = min_cycle_disables(cycles, cfg.bb_node_budget);
        let named: Vec<String> = sol
            .turns
            .iter()
            .map(|&(a, b)| {
                format!(
                    "{}->{}-x->{}",
                    self.net.label(self.net.channel_src(ChannelId(a))),
                    self.net.label(self.net.channel_dst(ChannelId(a))),
                    self.net.label(self.net.channel_dst(ChannelId(b)))
                )
            })
            .collect();
        let claim = if truncated {
            "enumeration truncated — minimality not claimed".to_string()
        } else if sol.proven_minimal {
            format!(
                "proven minimal over the {} enumerated cycle(s)",
                cycles.len()
            )
        } else {
            format!(
                "node budget exhausted — minimality unproven (lower bound {})",
                sol.lower_bound
            )
        };
        format!(
            "disable {} turn(s) ({claim}): {}",
            named.len(),
            named.join(", ")
        )
    }

    /// L6 (exact mode only): compares the turns the installed routing
    /// forgoes against the exhibited minimum from the certificate-
    /// producing synthesizer. Informational — a positive gap means the
    /// discipline is more restrictive than necessary, not wrong.
    fn check_minimality(&self, paths: Paths<'_>, cfg: &ExactConfig, out: &mut Vec<Diagnostic>) {
        let synth = match synthesize_disables_exact(self.net, self.ends, self.mask, cfg) {
            Ok(s) => s,
            Err(e) => {
                out.push(Diagnostic::new(
                    RuleId::L6Minimality,
                    Severity::Warning,
                    format!("exact synthesis failed: {e}"),
                ));
                return;
            }
        };
        // Turn deviation of the installed routing: CDG edges an
        // unrestricted shortest-path routing would take that the
        // installed routing avoids — the price the discipline pays.
        let installed = ChannelDependencyGraph::from_paths(self.net, paths);
        let installed_edges: std::collections::HashSet<(u32, u32)> = (0..self.net.channel_count()
            as u32)
            .flat_map(|v| {
                installed
                    .graph()
                    .succ(v)
                    .iter()
                    .map(move |&w| (v, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        let empty = DisableSet::new();
        let mut forgone = 0usize;
        let mut free_edges = std::collections::HashSet::new();
        for s in 0..self.ends.len() {
            for d in 0..self.ends.len() {
                if s == d || !self.node_ok(self.ends[s]) || !self.node_ok(self.ends[d]) {
                    continue;
                }
                if let Some(p) = route_one_masked(self.net, self.ends, &empty, self.mask, s, d) {
                    for w in p.windows(2) {
                        free_edges.insert((w[0].0, w[1].0));
                    }
                }
            }
        }
        for e in &free_edges {
            if !installed_edges.contains(e) {
                forgone += 1;
            }
        }
        let m = synth.disables();
        let gap = forgone.saturating_sub(m);
        let minimality = if synth.proven_minimal {
            format!(
                "proven minimal over the {} enumerated cycle(s)",
                synth.cycles_seen
            )
        } else if synth.truncated {
            "cycle enumeration truncated — minimality not claimed".to_string()
        } else {
            format!(
                "minimality unproven (lower bound {}, greedy {})",
                synth.lower_bound,
                if synth.greedy_size == usize::MAX {
                    "failed".to_string()
                } else {
                    synth.greedy_size.to_string()
                }
            )
        };
        let message = if gap > 0 {
            format!(
                "installed routing forgoes {forgone} turn(s) of the unrestricted \
                 shortest-path routing; {m} disable(s) suffice ({minimality}) — \
                 {gap} more than the exhibited minimum"
            )
        } else {
            format!(
                "installed routing forgoes {forgone} turn(s); exhibited minimum is \
                 {m} disable(s) ({minimality})"
            )
        };
        out.push(
            Diagnostic::new(RuleId::L6Minimality, Severity::Info, message)
                .with_gap(gap)
                .with_truncated(synth.truncated)
                .with_certificate(synth.certificate_json()),
        );
    }

    /// L4: every path obeys the declared discipline.
    fn check_discipline(&self, paths: Paths<'_>, d: &Discipline, out: &mut Vec<Diagnostic>) {
        let mut bad: Vec<(usize, usize)> = Vec::new();
        let mut first_err = None;
        paths.for_each_pair(|s, dst, res| {
            if s >= self.ends.len()
                || dst >= self.ends.len()
                || !self.node_ok(self.ends[s])
                || !self.node_ok(self.ends[dst])
            {
                return;
            }
            // Untraceable pairs are L1/L2 findings, not discipline ones.
            let Ok(p) = res else { return };
            if let Err(e) = d.check_path(self.net, p) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
                bad.push((s, dst));
            }
        });
        if let Some(err) = first_err {
            let total = bad.len();
            let sample: Vec<_> = bad.into_iter().take(SAMPLE).collect();
            let mut diag = Diagnostic::new(
                RuleId::L4Discipline,
                Severity::Error,
                format!(
                    "{total} pair(s) violate the {} discipline; first: pair {:?}, {err}",
                    d.name(),
                    sample[0]
                ),
            )
            .with_pairs(sample);
            diag.affected_pairs = total;
            out.push(diag);
        }
    }

    /// L5: worst-case per-link contention against the configured bound
    /// (informational without one).
    fn check_contention(&self, paths: Paths<'_>, out: &mut Vec<Diagnostic>) {
        let rep = max_link_contention_paths(self.net, paths);
        match self.contention_bound {
            Some(bound) if rep.worst > bound => {
                let over: Vec<ChannelId> = rep
                    .per_channel
                    .iter()
                    .enumerate()
                    .filter(|&(_, &k)| k > bound)
                    .map(|(i, _)| ChannelId(i as u32))
                    .take(SAMPLE)
                    .collect();
                let n_over = rep.per_channel.iter().filter(|&&k| k > bound).count();
                out.push(
                    Diagnostic::new(
                        RuleId::L5Contention,
                        Severity::Error,
                        format!(
                            "worst-case contention {}:1 exceeds the configured bound {}:1 \
                             on {} channel(s); hottest: {} -> {}",
                            rep.worst,
                            bound,
                            n_over,
                            self.net.label(self.net.channel_src(rep.worst_channel)),
                            self.net.label(self.net.channel_dst(rep.worst_channel)),
                        ),
                    )
                    .with_channels(over),
                );
            }
            Some(_) => {}
            None => out.push(
                Diagnostic::new(
                    RuleId::L5Contention,
                    Severity::Info,
                    format!(
                        "worst-case contention {}:1 (no bound configured for this topology)",
                        rep.worst
                    ),
                )
                .with_channels(vec![rep.worst_channel]),
            ),
        }
    }
}

/// Greedy hitting set over the enumerated cycles: repeatedly disable
/// the turn (CDG edge `held -> wanted`) that appears in the most
/// still-unbroken cycles. Not guaranteed minimum, but small and every
/// enumerated cycle loses at least one turn.
fn turn_hitting_set(cycles: &[Vec<u32>]) -> Vec<(u32, u32)> {
    let mut alive: Vec<Vec<(u32, u32)>> = cycles
        .iter()
        .map(|c| (0..c.len()).map(|i| (c[i], c[(i + 1) % c.len()])).collect())
        .collect();
    let mut chosen = Vec::new();
    while !alive.is_empty() {
        let mut counts: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        for c in &alive {
            for &e in c {
                *counts.entry(e).or_insert(0) += 1;
            }
        }
        // Deterministic tie-break: highest count, then smallest edge.
        let &best = counts
            .iter()
            .max_by_key(|&(e, n)| (*n, std::cmp::Reverse(*e)))
            .map(|(e, _)| e)
            .expect("alive cycles are non-empty");
        chosen.push(best);
        alive.retain(|c| !c.contains(&best));
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::ringroute::{ring_clockwise_routes, ring_shortest_routes};
    use fractanet_route::{dor, fractal, repair_routes, Routes};
    use fractanet_topo::{Fractahedron, Mesh2D, Ring, Topology, Variant};

    fn fracta_rs(f: &Fractahedron) -> RouteSet {
        RouteSet::from_table(f.net(), f.end_nodes(), &fractal::fractal_routes(f)).unwrap()
    }

    #[test]
    fn clean_fractahedron_passes_all_rules() {
        let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let report = Linter::new(f.net(), f.end_nodes())
            .with_discipline(Discipline::fractahedral(&f))
            .with_contention_bound(8)
            .check(&rs);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.pairs_checked, 64 * 63);
        assert_eq!(report.rules_run.len(), 5);
    }

    #[test]
    fn fig1_ring_trips_l3_with_cycles_and_suggestion() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        let report = Linter::new(r.net(), r.end_nodes())
            .with_subject("fig1 ring")
            .check(&rs);
        assert!(!report.is_clean());
        let l3: Vec<_> = report.by_rule(RuleId::L3CdgCycles).collect();
        assert!(!l3.is_empty());
        // The diagnostic names the channels...
        assert!(!l3[0].channels.is_empty());
        assert!(l3[0].message.contains("=>"), "{}", l3[0].message);
        // ...and proposes a disable set.
        assert!(
            l3.iter().any(|d| d.suggestion.is_some()),
            "expected a disable-set suggestion"
        );
        let json = report.to_json();
        assert!(json.contains("\"rule\":\"L3\""));
        assert!(json.contains("\"clean\":false"));
    }

    #[test]
    fn exact_mode_stays_clean_and_adds_l6_with_certificate() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let report = Linter::new(f.net(), f.end_nodes())
            .with_discipline(Discipline::fractahedral(&f))
            .with_exact(ExactConfig::default())
            .check(&rs);
        assert!(report.is_clean(), "{report}");
        assert!(report.rules_run.contains(&RuleId::L6Minimality));
        let l6: Vec<_> = report.by_rule(RuleId::L6Minimality).collect();
        assert_eq!(l6.len(), 1);
        assert_eq!(l6[0].severity, Severity::Info);
        let cert = l6[0]
            .certificate
            .as_deref()
            .expect("L6 carries certificate");
        assert!(cert.contains("\"rank\":["), "{cert}");
        assert!(report.to_json().contains("\"certificate\":{"));
    }

    #[test]
    fn exact_mode_ring_suggestion_claims_scoped_minimality() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_clockwise_routes(&r)).unwrap();
        let report = Linter::new(r.net(), r.end_nodes())
            .with_exact(ExactConfig::default())
            .check(&rs);
        assert!(!report.is_clean());
        let l3: Vec<_> = report.by_rule(RuleId::L3CdgCycles).collect();
        let s = l3
            .iter()
            .find_map(|d| d.suggestion.as_deref())
            .expect("exact L3 suggestion");
        assert!(s.contains("proven minimal over the"), "{s}");
        // The untruncated enumeration is recorded on the diagnostic.
        assert_eq!(l3[0].truncated, Some(false));
        assert!(report.to_json().contains("\"truncated\":false"));
    }

    #[test]
    fn truncated_enumeration_refuses_minimality_and_is_surfaced() {
        // Cap the enumeration at a single cycle on the shortest-routed
        // ring (which has two): truncation must be flagged on the L3
        // diagnostics and the exact suggestion must not claim
        // minimality.
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_shortest_routes(&r)).unwrap();
        let report = Linter::new(r.net(), r.end_nodes())
            .with_cycle_limit(1, 100_000)
            .with_exact(ExactConfig::default())
            .check(&rs);
        let l3: Vec<_> = report.by_rule(RuleId::L3CdgCycles).collect();
        assert!(l3.iter().any(|d| d.truncated == Some(true)));
        assert!(l3
            .iter()
            .any(|d| d.message.contains("enumeration truncated")));
        let s = l3
            .iter()
            .find_map(|d| d.suggestion.as_deref())
            .expect("suggestion still emitted");
        assert!(s.contains("minimality not claimed"), "{s}");
        assert!(!s.contains("proven minimal"), "{s}");
        assert!(report.to_json().contains("\"truncated\":true"));
    }

    #[test]
    fn shortest_ring_is_also_flagged() {
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_shortest_routes(&r)).unwrap();
        assert!(!Linter::new(r.net(), r.end_nodes()).check(&rs).is_clean());
    }

    #[test]
    fn coverage_hole_is_an_error() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let n = rs.len();
        // Empty one path: a hole, since the network is fully connected.
        let holed = RouteSet::from_pairs(n, |s, d| {
            if (s, d) == (0, 5) {
                Vec::new()
            } else {
                rs.path(s, d).to_vec()
            }
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&holed);
        assert_eq!(report.error_count(), 1, "{report}");
        let diag = report.by_rule(RuleId::L1Coverage).next().unwrap();
        assert!(diag.message.contains("coverage hole"));
        assert_eq!(diag.pairs, vec![(0, 5)]);
    }

    #[test]
    fn severed_pair_is_informational_under_mask() {
        let r = Ring::new(4, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        let router0 = r.net().channels_from(r.end_nodes()[0]).first().unwrap().1;
        mask.kill_router(router0);
        let rep = repair_routes(r.net(), r.end_nodes(), &mask).unwrap();
        let report = Linter::new(r.net(), r.end_nodes())
            .with_mask(&mask)
            .check(&rep.routes);
        assert!(report.is_clean(), "{report}");
        // End 0 itself is alive (only its attach router died), so all
        // 4*3 ordered pairs are examined; its pairs lint as severed
        // (info), the surviving 3x2 as covered.
        assert_eq!(report.pairs_checked, 12);
    }

    #[test]
    fn dead_channel_in_path_is_an_error() {
        // Install healthy routes, then kill a link they cross without
        // re-routing: exactly the PR 1 bug class.
        let r = Ring::new(4, 1, 6).unwrap();
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &ring_shortest_routes(&r)).unwrap();
        let victim = rs.path(0, 1)[1].link();
        let mut mask = DeadMask::new(r.net());
        mask.kill_link(victim);
        let report = Linter::new(r.net(), r.end_nodes())
            .with_mask(&mask)
            .check(&rs);
        let dead: Vec<_> = report
            .by_rule(RuleId::L2WellFormed)
            .filter(|d| d.message.contains("dead"))
            .collect();
        assert_eq!(dead.len(), 1, "{report}");
        assert!(dead[0].affected_pairs >= 1);
        assert!(!dead[0].channels.is_empty());
    }

    #[test]
    fn truncated_and_misdelivered_paths_flagged() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let n = rs.len();
        let corrupted = RouteSet::from_pairs(n, |s, d| {
            let mut p = rs.path(s, d).to_vec();
            if (s, d) == (2, 7) {
                p.pop(); // now ends mid-network
            }
            p
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&corrupted);
        assert!(!report.is_clean());
        assert!(report
            .by_rule(RuleId::L1Coverage)
            .any(|d| d.message.contains("does not end at the destination")));
    }

    #[test]
    fn repeated_channel_flagged() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let n = rs.len();
        let corrupted = RouteSet::from_pairs(n, |s, d| {
            let mut p = rs.path(s, d).to_vec();
            if (s, d) == (0, 7) && p.len() >= 3 {
                // Insert a there-and-back detour over channel 1's link.
                let ch = p[1];
                p.insert(2, ch.reverse());
                p.insert(3, ch);
            }
            p
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&corrupted);
        assert!(report
            .by_rule(RuleId::L2WellFormed)
            .any(|d| d.message.contains("repeat a channel")));
    }

    #[test]
    fn discontinuous_path_flagged() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let n = rs.len();
        let corrupted = RouteSet::from_pairs(n, |s, d| {
            let mut p = rs.path(s, d).to_vec();
            if (s, d) == (0, 7) && p.len() >= 3 {
                p.remove(1); // skip a hop: neighbours no longer share a router
            }
            p
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&corrupted);
        assert!(report
            .by_rule(RuleId::L2WellFormed)
            .any(|d| d.message.contains("discontinuous")));
    }

    #[test]
    fn l4_flags_wrong_discipline() {
        let m = Mesh2D::new(3, 3, 1, 6).unwrap();
        let yx = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_yx_routes(&m)).unwrap();
        let report = Linter::new(m.net(), m.end_nodes())
            .with_discipline(Discipline::mesh_xy(&m))
            .check(&yx);
        let l4: Vec<_> = report.by_rule(RuleId::L4Discipline).collect();
        assert_eq!(l4.len(), 1);
        assert_eq!(l4[0].severity, Severity::Error);
        assert!(l4[0].affected_pairs > 0);
    }

    #[test]
    fn l5_bound_and_info_modes() {
        let m = Mesh2D::new(6, 6, 2, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_xy_routes(&m)).unwrap();
        // Paper bound 10:1 → clean.
        let ok = Linter::new(m.net(), m.end_nodes())
            .with_contention_bound(10)
            .check(&rs);
        assert!(ok.is_clean(), "{ok}");
        assert!(ok.by_rule(RuleId::L5Contention).next().is_none());
        // Tighter bound → error naming channels.
        let tight = Linter::new(m.net(), m.end_nodes())
            .with_contention_bound(9)
            .check(&rs);
        let l5: Vec<_> = tight.by_rule(RuleId::L5Contention).collect();
        assert_eq!(l5.len(), 1);
        assert_eq!(l5[0].severity, Severity::Error);
        assert!(l5[0].message.contains("10:1"));
        // No bound → info only, still clean.
        let info = Linter::new(m.net(), m.end_nodes()).check(&rs);
        assert!(info.is_clean());
        assert_eq!(
            info.by_rule(RuleId::L5Contention).next().unwrap().severity,
            Severity::Info
        );
    }

    #[test]
    fn wrong_source_detected() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = fracta_rs(&f);
        let n = rs.len();
        // Swap one pair's path for another source's path to the same dst.
        let corrupted = RouteSet::from_pairs(n, |s, d| {
            if (s, d) == (2, 7) {
                rs.path(4, 7).to_vec()
            } else {
                rs.path(s, d).to_vec()
            }
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&corrupted);
        assert!(report
            .by_rule(RuleId::L1Coverage)
            .any(|d| d.message.contains("does not start at the source")));
    }

    #[test]
    fn tables_lint_matches_dense_lint_when_clean() {
        let f = Fractahedron::new(2, Variant::Fat, false).unwrap();
        let routes = fractal::fractal_routes(&f);
        let tabled = Linter::new(f.net(), f.end_nodes())
            .with_discipline(Discipline::fractahedral(&f))
            .with_contention_bound(8)
            .check_tables(&routes);
        assert!(tabled.is_clean(), "{tabled}");
        assert_eq!(tabled.pairs_checked, 64 * 63);
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &routes).unwrap();
        let dense = Linter::new(f.net(), f.end_nodes())
            .with_discipline(Discipline::fractahedral(&f))
            .with_contention_bound(8)
            .check(&rs);
        assert_eq!(tabled.to_json(), dense.to_json());
    }

    #[test]
    fn forwarding_loop_names_the_visited_routers() {
        // Corrupt two table entries so r0 and r1 bounce destination 2
        // between each other forever.
        let r = Ring::new(4, 1, 6).unwrap();
        let mut routes: Routes = ring_shortest_routes(&r);
        let net = r.net();
        let (r0, r1) = (r.router(0), r.router(1));
        let to_r1 = net
            .channels_from(r0)
            .iter()
            .find(|&&(_, w)| w == r1)
            .map(|&(ch, _)| ch)
            .unwrap();
        routes.set(r0, 2, net.channel_src_port(to_r1));
        routes.set(r1, 2, net.channel_dst_port(to_r1));
        let report = Linter::new(net, r.end_nodes()).check_tables(&routes);
        let l2: Vec<_> = report
            .by_rule(RuleId::L2WellFormed)
            .filter(|d| d.message.contains("forward in a loop"))
            .collect();
        assert_eq!(l2.len(), 1, "{report}");
        // The diagnostic spells out the visited-router cycle.
        assert!(l2[0].message.contains("->"), "{}", l2[0].message);
        assert!(
            l2[0].message.contains(net.label(r0)) && l2[0].message.contains(net.label(r1)),
            "{}",
            l2[0].message
        );
        assert!(l2[0].affected_pairs >= 1);
    }

    #[test]
    fn tables_lint_under_mask_matches_healed_dense_lint() {
        // The heal path: repaired tables linted directly must agree
        // with linting their traced dense projection.
        let r = Ring::new(6, 1, 6).unwrap();
        let mut mask = DeadMask::new(r.net());
        let victim = r
            .net()
            .channels_from(r.router(2))
            .iter()
            .find(|&&(_, w)| w == r.router(3))
            .map(|&(ch, _)| ch.link())
            .unwrap();
        mask.kill_link(victim);
        let repaired = fractanet_route::repair_tables(r.net(), r.end_nodes(), &mask);
        let tabled = Linter::new(r.net(), r.end_nodes())
            .with_mask(&mask)
            .check_tables(&repaired.tables);
        assert!(tabled.is_clean(), "{tabled}");
        let rep = repair_routes(r.net(), r.end_nodes(), &mask).unwrap();
        let dense = Linter::new(r.net(), r.end_nodes())
            .with_mask(&mask)
            .check(&rep.routes);
        assert_eq!(tabled.to_json(), dense.to_json());
    }

    #[test]
    fn routes_trait_object_sanity() {
        // Linting tables traced through `Routes` equals linting the
        // RouteSet — the CLI path.
        let r = Ring::new(5, 1, 6).unwrap();
        let routes: Routes = ring_shortest_routes(&r);
        let rs = RouteSet::from_table(r.net(), r.end_nodes(), &routes).unwrap();
        let report = Linter::new(r.net(), r.end_nodes()).check(&rs);
        // A 5-ring under shortest routing still closes a dependency
        // cycle (both wrap directions live).
        assert!(!report.is_clean());
    }
}
