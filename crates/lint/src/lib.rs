//! `fractanet-lint` — static route-table verification with structured
//! diagnostics.
//!
//! The paper's deadlock-avoidance story (§2.4) rests on a *static*
//! property of the routing tables: their channel-dependency graph is
//! acyclic, every pair is covered, and every path obeys the topology's
//! routing discipline. This crate makes that property checkable for
//! **any** `Network` + `RouteSet` — hand-written, traced, repaired, or
//! corrupted — and reports violations as structured [`Diagnostic`]s
//! with rule ids, severities, affected pairs/channels, and remediation
//! suggestions, serializable to JSON for CI gates.
//!
//! Five rules:
//!
//! - **L1 coverage** — every live ordered pair has a route from its
//!   source end node to its destination end node; pairs severed by a
//!   [`DeadMask`](fractanet_route::DeadMask) downgrade to info.
//! - **L2 well-formedness** — paths are channel-consecutive, cross
//!   only live channels and router interiors, and never repeat a
//!   channel.
//! - **L3 CDG acyclicity** — the Dally & Seitz condition, upgraded
//!   from yes/no to enumeration of *all* elementary dependency cycles
//!   (bounded) plus a suggested disable set from the Fig 2 synthesis.
//! - **L4 discipline conformance** — paths follow the declared
//!   [`Discipline`] (depth-first fractahedral, dimension order,
//!   up*/down*).
//! - **L5 contention** — worst-case per-link route load stays within
//!   the paper's Table 1 / Fig 3 bounds.
//!
//! Entry point: [`Linter`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod discipline;
pub mod linter;

pub use diag::{Diagnostic, LintReport, RuleId, Severity};
pub use discipline::{rank_table, Discipline};
pub use linter::Linter;
