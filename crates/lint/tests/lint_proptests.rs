//! Property-based tests for the static route linter.
//!
//! Two families: (1) the paper's deadlock-free routings lint clean
//! across randomly-drawn topology parameters, and (2) random
//! single-path corruptions of a clean table (truncation, a dead
//! channel spliced into a live path, a wrong-destination swap) always
//! trip at least one rule. Together they pin down both directions of
//! the linter's contract: no false alarms on certified-good tables,
//! no silence on the corruption classes that caused real bugs.

use fractanet_lint::{Discipline, Linter};
use fractanet_route::{dor, fractal, DeadMask, RouteSet};
use fractanet_topo::{Fractahedron, Hypercube, Mesh2D, Topology, Variant};
use proptest::prelude::*;

proptest! {
    /// XY dimension-order routing on any small mesh lints clean on
    /// every rule, including discipline conformance.
    #[test]
    fn mesh_xy_lints_clean(cols in 1usize..6, rows in 1usize..6) {
        let m = Mesh2D::new(cols, rows, 1, 6).unwrap();
        let rs = RouteSet::from_table(m.net(), m.end_nodes(), &dor::mesh_xy_routes(&m)).unwrap();
        let report = Linter::new(m.net(), m.end_nodes())
            .with_discipline(Discipline::mesh_xy(&m))
            .check(&rs);
        prop_assert!(report.is_clean(), "{report}");
        let n = m.end_nodes().len();
        prop_assert_eq!(report.pairs_checked, n * (n - 1));
    }

    /// E-cube routing on any small hypercube lints clean.
    #[test]
    fn hypercube_ecube_lints_clean(dim in 1u32..5) {
        let h = Hypercube::new(dim, 1, 6).unwrap();
        let rs = RouteSet::from_table(h.net(), h.end_nodes(), &dor::ecube_routes(&h)).unwrap();
        let report = Linter::new(h.net(), h.end_nodes())
            .with_discipline(Discipline::ecube(&h))
            .check(&rs);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Depth-first fractal routing on every fractahedron variant lints
    /// clean — the paper's central deadlock-freedom claim, as a property.
    #[test]
    fn fractahedron_lints_clean(levels in 1usize..3, fat in any::<bool>()) {
        let variant = if fat { Variant::Fat } else { Variant::Thin };
        let f = Fractahedron::new(levels, variant, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal::fractal_routes(&f)).unwrap();
        let report = Linter::new(f.net(), f.end_nodes())
            .with_discipline(Discipline::fractahedral(&f))
            .check(&rs);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Truncating any multi-hop path trips the linter: the packet no
    /// longer ends at its destination.
    #[test]
    fn truncated_path_always_trips(s in 0usize..8, off in 1usize..8, cut in 1usize..4) {
        let d = (s + off) % 8;
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal::fractal_routes(&f)).unwrap();
        let n = rs.len();
        let cut = cut.min(rs.path(s, d).len());
        let corrupted = RouteSet::from_pairs(n, |a, b| {
            let mut p = rs.path(a, b).to_vec();
            if (a, b) == (s, d) {
                p.truncate(p.len() - cut);
            }
            p
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&corrupted);
        prop_assert!(report.error_count() >= 1, "{report}");
        prop_assert!(report.diagnostics.iter().any(|g| g.pairs.contains(&(s, d))), "{report}");
    }

    /// Killing the link under any channel of any live path — without
    /// re-routing — trips the fault-aware lint (the PR 1 bug class:
    /// stale tables crossing dead hardware).
    #[test]
    fn dead_channel_spliced_always_trips(s in 0usize..8, off in 1usize..8, hop in 0usize..3) {
        let d = (s + off) % 8;
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal::fractal_routes(&f)).unwrap();
        let path = rs.path(s, d);
        let victim = path[hop.min(path.len() - 1)].link();
        let mut mask = DeadMask::new(f.net());
        mask.kill_link(victim);
        let report = Linter::new(f.net(), f.end_nodes()).with_mask(&mask).check(&rs);
        prop_assert!(report.error_count() >= 1, "{report}");
        prop_assert!(
            report.diagnostics.iter().any(|g| g.message.contains("dead")),
            "{report}"
        );
    }

    /// Swapping in the path for a different destination is always
    /// caught as a misdelivery.
    #[test]
    fn wrong_destination_always_trips(s in 0usize..8, off in 1usize..8, off2 in 1usize..7) {
        let d = (s + off) % 8;
        // A second offset distinct from `off`, so d2 differs from both
        // s and d.
        let off2 = if off2 >= off { off2 + 1 } else { off2 };
        let d2 = (s + off2) % 8;
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal::fractal_routes(&f)).unwrap();
        let n = rs.len();
        let corrupted = RouteSet::from_pairs(n, |a, b| {
            if (a, b) == (s, d) {
                rs.path(s, d2).to_vec()
            } else {
                rs.path(a, b).to_vec()
            }
        });
        let report = Linter::new(f.net(), f.end_nodes()).check(&corrupted);
        prop_assert!(report.error_count() >= 1, "{report}");
        prop_assert!(report.diagnostics.iter().any(|g| g.pairs.contains(&(s, d))), "{report}");
    }
}
