//! Capacity planning for fractahedral systems.
//!
//! The paper's closing pitch: "The topology scales to any number of
//! nodes, and allows for tradeoffs between cost and performance." This
//! module turns that into an API: given a CPU count and a bandwidth
//! floor, enumerate the thin/fat configurations that satisfy it, with
//! closed-form hardware counts (validated against constructed networks
//! in the tests, so the formulas cannot drift from the builders).
//!
//! Closed forms for an `N`-level 2-3-1 fractahedron:
//!
//! | quantity | thin | fat |
//! |----------|------|-----|
//! | CPUs (with fan-out) | 2·8^N | 2·8^N |
//! | tetrahedron routers | 4·(8^N − 1)/7 | Σₖ 8^(N−k)·4^k |
//! | worst-case delay    | 4N − 2 (+2 with fan-out) | 3N − 1 (+2) |
//! | bisection           | 4 links | 4^N links |

use fractanet_topo::Variant;

/// What the installation needs.
#[derive(Clone, Copy, Debug)]
pub struct Requirement {
    /// CPUs (or end nodes when `fanout` is false).
    pub cpus: usize,
    /// Minimum acceptable bisection bandwidth, in links.
    pub min_bisection_links: u64,
    /// Whether CPUs attach in pairs through fan-out routers.
    pub fanout: bool,
}

/// One feasible configuration with its hardware bill.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanOption {
    /// Thin or fat recursion.
    pub variant: Variant,
    /// Levels `N`.
    pub levels: usize,
    /// End-node capacity of the configuration.
    pub capacity: usize,
    /// Tetrahedron routers (excluding fan-out routers).
    pub tetra_routers: usize,
    /// Fan-out routers (0 without fan-out).
    pub fanout_routers: usize,
    /// Cables of all classes.
    pub cables: usize,
    /// Worst-case router hops between CPUs.
    pub max_delay: usize,
    /// Bisection bandwidth in links.
    pub bisection: u64,
}

impl PlanOption {
    /// All routers.
    pub fn total_routers(&self) -> usize {
        self.tetra_routers + self.fanout_routers
    }
}

/// End-node capacity of an `N`-level fractahedron.
pub fn capacity(levels: usize, fanout: bool) -> usize {
    let attach_points = 8usize.pow(levels as u32);
    if fanout {
        2 * attach_points
    } else {
        attach_points
    }
}

/// Closed-form hardware bill for one configuration.
pub fn bill(variant: Variant, levels: usize, fanout: bool) -> PlanOption {
    let n = levels as u32;
    let tetra_routers = match variant {
        Variant::Thin => 4 * (8usize.pow(n) - 1) / 7,
        Variant::Fat => (1..=levels)
            .map(|k| 8usize.pow(n - k as u32) * 4usize.pow(k as u32))
            .sum(),
    };
    let attach_points = 8usize.pow(n);
    let fanout_routers = if fanout { attach_points } else { 0 };

    // Cables: intra-tetra (6 per tetrahedron), inter-level, attach.
    let tetra_count: usize = match variant {
        Variant::Thin => (8usize.pow(n) - 1) / 7,
        Variant::Fat => (1..=levels)
            .map(|k| 8usize.pow(n - k as u32) * 4usize.pow(k as u32 - 1))
            .sum(),
    };
    let intra = 6 * tetra_count;
    // Inter-level: thin = one per child stack; fat = every child up
    // port: level k has 8^(N-k) stacks, each with 8 children
    // contributing (thin: 1) / (fat: 4^k) cables... fat child (level
    // k-1 subtree) has 4^(k-1) up links; 8 children per stack.
    let inter: usize = match variant {
        Variant::Thin => (2..=levels).map(|k| 8usize.pow(n - k as u32) * 8).sum(),
        Variant::Fat => (2..=levels)
            .map(|k| 8usize.pow(n - k as u32) * 8 * 4usize.pow(k as u32 - 1))
            .sum(),
    };
    let attach = capacity(levels, fanout) + if fanout { attach_points } else { 0 };

    let mut max_delay = match variant {
        Variant::Thin => 4 * levels - 2,
        Variant::Fat => 3 * levels - 1,
    };
    if fanout {
        max_delay += 2;
    }
    PlanOption {
        variant,
        levels,
        capacity: capacity(levels, fanout),
        tetra_routers,
        fanout_routers,
        cables: intra + inter + attach,
        max_delay,
        bisection: match variant {
            Variant::Thin => 4,
            Variant::Fat => 4u64.pow(n),
        },
    }
}

/// Enumerates configurations (N = 1..=6, thin and fat) that meet the
/// requirement, cheapest (fewest routers) first.
///
/// ```
/// use fractanet::sizing::{plan, Requirement};
/// use fractanet::topo::Variant;
///
/// // 128 CPUs with modest bandwidth: thin wins on router count.
/// let options = plan(Requirement { cpus: 128, min_bisection_links: 1, fanout: true });
/// assert_eq!(options[0].variant, Variant::Thin);
/// // Demand more bisection and only fat qualifies.
/// let options = plan(Requirement { cpus: 128, min_bisection_links: 10, fanout: true });
/// assert!(options.iter().all(|o| o.variant == Variant::Fat));
/// ```
pub fn plan(req: Requirement) -> Vec<PlanOption> {
    let mut options = Vec::new();
    for levels in 1..=6usize {
        if capacity(levels, req.fanout) < req.cpus {
            continue;
        }
        for variant in [Variant::Thin, Variant::Fat] {
            let opt = bill(variant, levels, req.fanout);
            if opt.bisection >= req.min_bisection_links {
                options.push(opt);
            }
        }
        // Larger N only adds hardware; one size class is enough.
        break;
    }
    options.sort_by_key(PlanOption::total_routers);
    options
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_metrics::CostSummary;
    use fractanet_topo::{Fractahedron, Topology};

    /// The closed forms must agree with the constructed networks.
    #[test]
    fn bill_matches_built_networks() {
        for levels in 1..=3usize {
            for variant in [Variant::Thin, Variant::Fat] {
                for fanout in [false, true] {
                    if levels == 3 && fanout {
                        continue; // keep test runtime low
                    }
                    let opt = bill(variant, levels, fanout);
                    let f = Fractahedron::new(levels, variant, fanout).unwrap();
                    let cost = CostSummary::of(f.net());
                    assert_eq!(opt.capacity, f.end_nodes().len(), "{variant:?} N{levels}");
                    assert_eq!(
                        opt.total_routers(),
                        cost.routers,
                        "{variant:?} N{levels} fanout={fanout}"
                    );
                    assert_eq!(
                        opt.cables,
                        cost.total_links(),
                        "{variant:?} N{levels} fanout={fanout}"
                    );
                    assert_eq!(
                        opt.max_delay as u32,
                        fractanet_graph::bfs::max_router_hops(f.net()).unwrap(),
                        "{variant:?} N{levels} fanout={fanout}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_64_node_bills() {
        let fat = bill(Variant::Fat, 2, false);
        assert_eq!(fat.tetra_routers, 48);
        let thin = bill(Variant::Thin, 2, false);
        assert_eq!(thin.tetra_routers, 36);
    }

    #[test]
    fn plan_prefers_thin_when_bandwidth_allows() {
        let opts = plan(Requirement {
            cpus: 64,
            min_bisection_links: 1,
            fanout: false,
        });
        assert_eq!(opts.len(), 2);
        assert_eq!(opts[0].variant, Variant::Thin, "thin is cheaper");
        assert!(opts[0].total_routers() < opts[1].total_routers());
    }

    #[test]
    fn plan_filters_by_bisection() {
        let opts = plan(Requirement {
            cpus: 64,
            min_bisection_links: 8,
            fanout: false,
        });
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].variant, Variant::Fat);
        assert_eq!(opts[0].bisection, 16);
    }

    #[test]
    fn plan_scales_to_1024_cpus() {
        let opts = plan(Requirement {
            cpus: 1024,
            min_bisection_links: 1,
            fanout: true,
        });
        assert!(!opts.is_empty());
        assert_eq!(opts[0].levels, 3);
        assert_eq!(opts[0].capacity, 1024);
        // Thin 1024-CPU: 292 tetra + 512 fanout routers, max delay 12.
        let thin = opts.iter().find(|o| o.variant == Variant::Thin).unwrap();
        assert_eq!(thin.tetra_routers, 292);
        assert_eq!(thin.fanout_routers, 512);
        assert_eq!(thin.max_delay, 12);
    }

    #[test]
    fn unsatisfiable_returns_empty() {
        let opts = plan(Requirement {
            cpus: 64,
            min_bisection_links: 1000,
            fanout: false,
        });
        assert!(opts.is_empty());
    }

    #[test]
    fn capacity_table() {
        assert_eq!(capacity(1, true), 16);
        assert_eq!(capacity(2, true), 128);
        assert_eq!(capacity(3, true), 1024);
        assert_eq!(capacity(2, false), 64);
    }
}
