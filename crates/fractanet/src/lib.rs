//! # fractanet
//!
//! Fractahedral topologies and deadlock-free ServerNet routing — a
//! complete, tested reproduction of Robert Horst, *"ServerNet Deadlock
//! Avoidance and Fractahedral Topologies"* (IPPS 1996).
//!
//! The paper proposes a family of self-similar tetrahedron-based
//! networks ("fractahedrons") for 6-port wormhole routers, a
//! depth-first routing rule that keeps them deadlock-free, and an
//! analytical comparison against meshes, hypercubes and fat trees.
//! This crate is the front door to the workspace that rebuilds all of
//! it:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`graph`] | port-aware network graphs + SCC/max-flow/matching |
//! | [`topo`]  | every topology in the paper (and §2's background list) |
//! | [`route`] | destination-table routing, one generator per family |
//! | [`deadlock`] | channel-dependency graphs, Dally–Seitz verification, path-disable synthesis |
//! | [`metrics`] | link contention, bisection bandwidth, hop stats, cost |
//! | [`lint`] | static route-table verification: rules L1–L5, structured diagnostics |
//! | [`sim`] | flit-level wormhole simulator with deadlock detection |
//! | [`servernet`] | router ASIC / cable / packet / dual-fabric substrate |
//!
//! ## Quickstart
//!
//! ```
//! use fractanet::System;
//!
//! // The paper's 64-node fat fractahedron (Fig 7, Table 2).
//! let system = System::fat_fractahedron(2);
//! let report = system.analyze();
//! assert_eq!(report.routers, 48);
//! assert!(report.deadlock_free);
//! assert_eq!(report.worst_contention, 8);
//! assert!((report.avg_hops - 4.3).abs() < 0.01);
//! ```
//!
//! See `examples/` for runnable scenarios: a quickstart tour, the
//! paper's database-cluster workload, a deadlock audit of every
//! topology, and dual-fabric fault-tolerance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fractanet_deadlock as deadlock;
pub use fractanet_graph as graph;
pub use fractanet_lint as lint;
pub use fractanet_metrics as metrics;
pub use fractanet_route as route;
pub use fractanet_servernet as servernet;
pub use fractanet_sim as sim;
pub use fractanet_topo as topo;

pub mod chaos;
pub mod cli;
pub mod sizing;
pub mod spec;
mod system;

pub use chaos::{incident, replay, run_campaign, ChaosOptions, ChaosReport, Incident};
pub use spec::{SpecError, TopoSpec, VcBase, VcDisc};
pub use system::{AnalysisReport, System, VcScheme};

/// Convenient glob-import surface: `use fractanet::prelude::*;`.
pub mod prelude {
    pub use crate::spec::{TopoSpec, VcBase, VcDisc};
    pub use crate::system::{AnalysisReport, System, VcScheme};
    pub use fractanet_deadlock::{verify_deadlock_free, verify_deadlock_free_tables};
    pub use fractanet_graph::{ChannelId, LinkClass, Network, NodeId, PortId};
    pub use fractanet_lint::{Diagnostic, LintReport, Linter, RuleId, Severity};
    pub use fractanet_metrics::{bisection_estimate, max_link_contention, HopStats};
    pub use fractanet_route::{Paths, RouteSet, Routes};
    pub use fractanet_servernet::{
        heal, healing_repairer, run_with_failover, table_healing_repairer, FabricSim,
        FailoverOutcome, FaultSet, HealReport,
    };
    pub use fractanet_sim::{
        parse_trace, write_trace, DstPattern, Engine, FaultEvent, FaultKind, MetricsConfig,
        MetricsReport, RecordedTrace, RetryPolicy, SimConfig, Telemetry, TelemetryReport, Workload,
    };
    pub use fractanet_topo::{
        FatTree, Fractahedron, FullyConnectedCluster, Hypercube, Mesh2D, Ring, Topology, Variant,
    };
}
