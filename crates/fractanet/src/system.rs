//! The high-level `System` API: topology + routing + analysis in one
//! object, so downstream users can reproduce a Table 2 row in five
//! lines.

use fractanet_deadlock::verify_deadlock_free_tables;
use fractanet_graph::{LinkClass, Network, NodeId};
use fractanet_lint::{Discipline, LintReport, Linter};
use fractanet_metrics::{bisection_estimate, max_link_contention_paths, CostSummary, HopStats};
use fractanet_route::fattree::{fattree_routes, UpPolicy};
use fractanet_route::fractal::fractal_routes;
use fractanet_route::ringroute::ring_shortest_routes;
use fractanet_route::treeroute::bintree_routes;
use fractanet_route::{direct, dor, Paths, RouteSet, Routes};
use fractanet_sim::{
    dateline_ring_map, dateline_torus_map, ecube_hypercube_map, ecube_mesh_map, Engine, SimConfig,
    SimResult, VcMap, Workload,
};
use fractanet_topo::{
    BinaryTree, FatTree, Fractahedron, FullyConnectedCluster, Hypercube, Mesh2D, Ring, Topology,
    Torus2D, Variant,
};
use std::sync::{Arc, OnceLock};

/// A topology paired with its canonical routing.
enum Built {
    Mesh(Mesh2D),
    Torus(Torus2D),
    Ring(Ring),
    Hypercube(Hypercube),
    FatTree(FatTree),
    Fractahedron(Fractahedron),
    Cluster(FullyConnectedCluster),
    BinaryTree(BinaryTree),
}

impl Built {
    fn topo(&self) -> &dyn Topology {
        match self {
            Built::Mesh(t) => t,
            Built::Torus(t) => t,
            Built::Ring(t) => t,
            Built::Hypercube(t) => t,
            Built::FatTree(t) => t,
            Built::Fractahedron(t) => t,
            Built::Cluster(t) => t,
            Built::BinaryTree(t) => t,
        }
    }

    fn routes(&self) -> Routes {
        match self {
            Built::Mesh(t) => dor::mesh_xy_routes(t),
            Built::Torus(t) => dor::torus_xy_routes(t),
            Built::Ring(t) => ring_shortest_routes(t),
            Built::Hypercube(t) => dor::ecube_routes(t),
            Built::FatTree(t) => fattree_routes(t, UpPolicy::ByLeafRouter),
            Built::Fractahedron(t) => fractal_routes(t),
            Built::Cluster(t) => direct::cluster_routes(t),
            Built::BinaryTree(t) => bintree_routes(t),
        }
    }
}

/// The Dally–Seitz virtual-channel discipline a [`System`] runs under
/// when virtual channels are enabled ([`System::with_vcs`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcScheme {
    /// Dateline ordering for topologies with wrap cables (rings and
    /// tori): promote past the wrap, reset on dimension change.
    Dateline,
    /// Static per-dimension channel classes for dimension-ordered
    /// topologies (meshes and hypercubes).
    Ecube,
}

impl std::fmt::Display for VcScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcScheme::Dateline => write!(f, "dateline"),
            VcScheme::Ecube => write!(f, "ecube"),
        }
    }
}

/// Installed virtual-channel state: the count, the scheme, and the
/// concrete per-channel map the engines consult.
struct VcState {
    vcs: u8,
    scheme: VcScheme,
    map: VcMap,
}

/// Everything the paper's comparison tables need, for one system.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Human-readable topology name.
    pub name: String,
    /// End nodes.
    pub nodes: usize,
    /// Routers (Table 2's cost row).
    pub routers: usize,
    /// Cables of all classes.
    pub links: usize,
    /// Mean router hops over all pairs (Table 2).
    pub avg_hops: f64,
    /// Worst-case router hops (Table 1's "maximum delays").
    pub max_hops: usize,
    /// Whole-network maximum link contention (`k` of `k:1`).
    pub worst_contention: usize,
    /// Maximum contention restricted to intra-stage (Local) links —
    /// the population §3.4 quotes for the fractahedron.
    pub local_contention: usize,
    /// Weakest balanced cut found, in cables.
    pub bisection_links: u64,
    /// Dally–Seitz verdict for the canonical routing.
    pub deadlock_free: bool,
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} nodes, {} routers, {} links | hops avg {:.2} max {} | \
             contention {}:1 (local {}:1) | bisection {} links | {}",
            self.name,
            self.nodes,
            self.routers,
            self.links,
            self.avg_hops,
            self.max_hops,
            self.worst_contention,
            self.local_contention,
            self.bisection_links,
            if self.deadlock_free {
                "deadlock-free"
            } else {
                "CAN DEADLOCK"
            }
        )
    }
}

/// A topology with its canonical deadlock-aware routing, ready for
/// analysis and simulation.
pub struct System {
    built: Built,
    /// Canonical routing state: destination-indexed tables, shared
    /// with the simulator via `Arc` rather than copied per engine.
    routes: Arc<Routes>,
    /// Dense per-pair view, traced lazily the first time a caller
    /// actually asks for frozen paths.
    routeset: OnceLock<RouteSet>,
    /// Virtual-channel discipline, when enabled via
    /// [`System::with_vcs`].
    vc: Option<VcState>,
}

impl System {
    fn new(built: Built) -> Self {
        let routes = Arc::new(built.routes());
        System {
            built,
            routes,
            routeset: OnceLock::new(),
            vc: None,
        }
    }

    /// N-level fat fractahedron with direct-attached nodes
    /// (`System::fat_fractahedron(2)` is the paper's Fig 7 network).
    pub fn fat_fractahedron(levels: usize) -> Self {
        Self::new(Built::Fractahedron(
            Fractahedron::new(levels, Variant::Fat, false).expect("valid configuration"),
        ))
    }

    /// N-level thin fractahedron; `fanout` adds the CPU-pair router
    /// level (Table 1's 2·8^N node scaling).
    pub fn thin_fractahedron(levels: usize, fanout: bool) -> Self {
        Self::new(Built::Fractahedron(
            Fractahedron::new(levels, Variant::Thin, fanout).expect("valid configuration"),
        ))
    }

    /// The Fig 4 tetrahedron (4 routers, 12 nodes).
    pub fn tetrahedron() -> Self {
        Self::new(Built::Cluster(FullyConnectedCluster::tetrahedron()))
    }

    /// A fully-connected cluster of `m` 6-port routers (Fig 3).
    pub fn cluster(m: usize) -> Self {
        Self::new(Built::Cluster(
            FullyConnectedCluster::new(m, 6).expect("m <= 6"),
        ))
    }

    /// `cols × rows` mesh with 2 nodes per 6-port router and X-then-Y
    /// dimension-order routing (§3.1).
    pub fn mesh(cols: usize, rows: usize) -> Self {
        Self::new(Built::Mesh(
            Mesh2D::new(cols, rows, 2, 6).expect("valid mesh"),
        ))
    }

    /// `cols × rows` torus with 2 nodes per 6-port router and minimal
    /// X-then-Y routing. The wrap cables make the plain routing
    /// deadlock-prone; see [`System::with_vcs`].
    pub fn torus(cols: usize, rows: usize) -> Self {
        Self::new(Built::Torus(
            Torus2D::new(cols, rows, 2, 6).expect("valid torus"),
        ))
    }

    /// Enables `vcs` virtual channels per physical channel under the
    /// given ordering scheme. Panics if the scheme does not apply to
    /// this topology: dateline needs wrap cables (ring/torus), e-cube
    /// classes need dimension-ordered routing (mesh/hypercube).
    pub fn with_vcs(mut self, vcs: u8, scheme: VcScheme) -> Self {
        let vcs = vcs.max(1);
        let map = match (&self.built, scheme) {
            (Built::Ring(r), VcScheme::Dateline) => dateline_ring_map(r, vcs),
            (Built::Torus(t), VcScheme::Dateline) => dateline_torus_map(t, vcs),
            (Built::Mesh(m), VcScheme::Ecube) => ecube_mesh_map(m, vcs),
            (Built::Hypercube(h), VcScheme::Ecube) => ecube_hypercube_map(h, vcs),
            _ => panic!(
                "VC scheme {scheme} does not apply to {}",
                self.built.topo().name()
            ),
        };
        self.vc = Some(VcState { vcs, scheme, map });
        self
    }

    /// The installed virtual-channel configuration, if any.
    pub fn vc(&self) -> Option<(u8, VcScheme)> {
        self.vc.as_ref().map(|v| (v.vcs, v.scheme))
    }

    /// The installed VC-assignment map, if any — what
    /// [`simulate`](System::simulate) attaches to the engine, exposed
    /// so external harnesses (the dual-fabric chaos runner) can attach
    /// the same discipline.
    pub fn vc_map(&self) -> Option<&VcMap> {
        self.vc.as_ref().map(|v| &v.map)
    }

    /// The Dally–Seitz verdict on the *extended* `(channel, vc)`
    /// dependency graph, for systems with virtual channels enabled:
    /// the physical-channel graph may be cyclic (that is the point)
    /// while the extended graph is not. `None` without VCs.
    pub fn vc_deadlock_free(&self) -> Option<bool> {
        self.vc.as_ref().map(|v| {
            v.map
                .annotate(self.route_set())
                .is_deadlock_free(self.net())
        })
    }

    /// `(down, up)` fat tree over `nodes` end nodes with the Fig 6
    /// leaf-router partitioning (§3.3).
    pub fn fat_tree(nodes: usize, down: usize, up: usize) -> Self {
        Self::new(Built::FatTree(
            FatTree::new(nodes, down, up, 6).expect("valid fat tree"),
        ))
    }

    /// `dim`-cube with one node per corner and e-cube routing (§3.2).
    /// Needs `dim + 1` ports, so 6-port routers cap out at `dim = 5`.
    pub fn hypercube(dim: u32, router_ports: u8) -> Self {
        Self::new(Built::Hypercube(
            Hypercube::new(dim, 1, router_ports).expect("valid cube"),
        ))
    }

    /// Ring of `n` routers, one node each, minimal routing (§2; note
    /// this routing is *not* deadlock-free for `n ≥ 4` — the Fig 1
    /// lesson).
    pub fn ring(n: usize) -> Self {
        Self::new(Built::Ring(Ring::new(n, 1, 6).expect("valid ring")))
    }

    /// Complete binary tree of `depth` router levels (§2 background).
    pub fn binary_tree(depth: u32, nodes_per_leaf: usize) -> Self {
        Self::new(Built::BinaryTree(
            BinaryTree::new(depth, nodes_per_leaf, 6).expect("valid tree"),
        ))
    }

    /// The underlying network.
    pub fn net(&self) -> &Network {
        self.built.topo().net()
    }

    /// End nodes in address order.
    pub fn end_nodes(&self) -> &[NodeId] {
        self.built.topo().end_nodes()
    }

    /// The destination-indexed routing tables — the canonical routing
    /// state everything else (analysis, lint, simulation) derives from.
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// A shared handle to the canonical tables, for engines and other
    /// consumers that hold routing state across epochs.
    pub fn shared_routes(&self) -> Arc<Routes> {
        Arc::clone(&self.routes)
    }

    /// All traced pair paths. Derived from [`System::routes`] on first
    /// use; the table form stays canonical.
    pub fn route_set(&self) -> &RouteSet {
        self.routeset.get_or_init(|| {
            let topo = self.built.topo();
            RouteSet::from_table(topo.net(), topo.end_nodes(), &self.routes)
                .expect("canonical routing must cover all pairs")
        })
    }

    /// Topology name, including the VC discipline when one is
    /// installed.
    pub fn name(&self) -> String {
        match &self.vc {
            Some(v) => format!(
                "{} + {} VCs ({})",
                self.built.topo().name(),
                v.vcs,
                v.scheme
            ),
            None => self.built.topo().name(),
        }
    }

    /// Hardware inventory.
    pub fn cost(&self) -> CostSummary {
        CostSummary::of(self.net())
    }

    /// Runs the full analytical battery (hops, contention, bisection,
    /// deadlock freedom). `O(pairs × path length)` plus a handful of
    /// max-flows — instant at the paper's 64-node scale.
    pub fn analyze(&self) -> AnalysisReport {
        let net = self.net();
        let ends = self.end_nodes();
        let hops = HopStats::routed_tables(net, ends, &self.routes).expect("≥ 2 nodes");
        let cont = max_link_contention_paths(net, Paths::tables(net, ends, &self.routes));
        let local = cont
            .worst_in_class(net, LinkClass::Local)
            .map(|(k, _)| k)
            .unwrap_or(0);
        let bis = bisection_estimate(net, ends, 4);
        // With VCs installed the physical-channel graph may be cyclic
        // by design; the verdict that matters is the extended one.
        let deadlock_free = self
            .vc_deadlock_free()
            .unwrap_or_else(|| verify_deadlock_free_tables(net, ends, &self.routes).is_ok());
        AnalysisReport {
            name: self.name(),
            nodes: self.end_nodes().len(),
            routers: net.router_count(),
            links: net.link_count(),
            avg_hops: hops.avg,
            max_hops: hops.max,
            worst_contention: cont.worst,
            local_contention: local,
            bisection_links: bis.links,
            deadlock_free,
        }
    }

    /// The routing discipline rule L4 should check this system
    /// against, when one is modeled.
    fn discipline(&self) -> Option<Discipline> {
        match &self.built {
            Built::Mesh(m) => Some(Discipline::mesh_xy(m)),
            Built::Hypercube(h) => Some(Discipline::ecube(h)),
            Built::FatTree(t) => Some(Discipline::fat_tree(t)),
            Built::Fractahedron(f) => Some(Discipline::fractahedral(f)),
            // Rings, tori, direct clusters, and binary trees have no
            // phase discipline worth modeling here (tori and rings are
            // checked through the extended VC graph instead).
            Built::Ring(_) | Built::Torus(_) | Built::Cluster(_) | Built::BinaryTree(_) => None,
        }
    }

    /// The paper's published worst-case contention bound for this
    /// exact configuration (Table 1 / Fig 3 / §3), when one exists.
    fn paper_contention_bound(&self) -> Option<usize> {
        match &self.built {
            // §3.4: 8:1 network-wide for the 64-node fat fractahedron.
            Built::Fractahedron(f) if f.variant() == Variant::Fat && f.levels() == 2 => Some(8),
            // §3.1: 10:1 on the 6x6 mesh with 2 nodes per router.
            Built::Mesh(m) if m.cols() == 6 && m.rows() == 6 => Some(10),
            // §3.3: 12:1 on the 64-node (4,2) fat tree.
            Built::FatTree(t) if t.nodes() == 64 && t.down() == 4 && t.up() == 2 => Some(12),
            // Fig 3 closed form for fully-connected clusters.
            Built::Cluster(c) => c.predicted_contention(),
            _ => None,
        }
    }

    /// Statically verifies this system's canonical routing tables:
    /// coverage, path well-formedness, dependency-cycle enumeration,
    /// discipline conformance, and the paper's contention bound where
    /// published. See `fractanet-lint` for the rule catalogue.
    pub fn lint(&self) -> LintReport {
        let mut linter = Linter::new(self.net(), self.end_nodes()).with_subject(self.name());
        if let Some(d) = self.discipline() {
            linter = linter.with_discipline(d);
        }
        if let Some(k) = self.paper_contention_bound() {
            linter = linter.with_contention_bound(k);
        }
        if let Some(v) = &self.vc {
            let acyclic = self.vc_deadlock_free().expect("vc installed");
            linter = linter.with_vc_ordering(v.vcs, v.scheme.to_string(), acyclic);
        }
        linter.check_tables(&self.routes)
    }

    /// [`Self::lint`] in exact mode: the L3 suggestion becomes the
    /// branch-and-bound minimum over the enumerated cycles and the L6
    /// minimality rule runs with a replayable certificate.
    pub fn lint_exact(&self) -> LintReport {
        let mut linter = Linter::new(self.net(), self.end_nodes())
            .with_subject(self.name())
            .with_exact(fractanet_deadlock::ExactConfig::default());
        if let Some(d) = self.discipline() {
            linter = linter.with_discipline(d);
        }
        if let Some(k) = self.paper_contention_bound() {
            linter = linter.with_contention_bound(k);
        }
        if let Some(v) = &self.vc {
            let acyclic = self.vc_deadlock_free().expect("vc installed");
            linter = linter.with_vc_ordering(v.vcs, v.scheme.to_string(), acyclic);
        }
        linter.check_tables(&self.routes)
    }

    /// Runs the certificate-producing exact route synthesizer over
    /// this topology (ignoring the installed tables) — the
    /// `lint --synthesize` backend.
    pub fn synthesize_exact(
        &self,
    ) -> Result<fractanet_deadlock::ExactSynthesis, fractanet_deadlock::SynthesisError> {
        fractanet_deadlock::synthesize_disables_exact(
            self.net(),
            self.end_nodes(),
            None,
            &fractanet_deadlock::ExactConfig::default(),
        )
    }

    /// Simulates a workload on this system. The engine forwards
    /// hop-by-hop from the shared tables; no per-packet path is
    /// snapshotted.
    pub fn simulate(&self, workload: Workload, cfg: SimConfig) -> SimResult {
        let mut eng = Engine::with_tables(self.net(), self.end_nodes(), self.shared_routes(), cfg);
        if let Some(v) = &self.vc {
            eng = eng.with_vc_map(v.map.clone());
        }
        eng.run(workload)
    }

    /// Simulates a workload with certified self-healing enabled: on
    /// each permanent fault in `cfg`'s schedule, routing tables are
    /// repaired incrementally around the dead components, verified
    /// deadlock-free (Dally & Seitz), and installed mid-run as a new
    /// routing epoch.
    pub fn simulate_healing(&self, workload: Workload, cfg: SimConfig) -> SimResult {
        let mut eng = Engine::with_tables(self.net(), self.end_nodes(), self.shared_routes(), cfg)
            .with_table_repairer(fractanet_servernet::table_healing_repairer(
                self.net(),
                self.end_nodes(),
            ))
            // The heal path promises certified tables, so debug builds
            // re-lint every install.
            .with_lint_on_install(self.end_nodes());
        if let Some(v) = &self.vc {
            eng = eng.with_vc_map(v.map.clone());
        }
        eng.run(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_sim::DstPattern;

    #[test]
    fn paper_fat_64_headline_numbers() {
        let report = System::fat_fractahedron(2).analyze();
        assert_eq!(report.nodes, 64);
        assert_eq!(report.routers, 48);
        assert!((report.avg_hops - 271.0 / 63.0).abs() < 1e-9);
        assert_eq!(report.max_hops, 5);
        assert_eq!(report.local_contention, 4);
        assert_eq!(report.worst_contention, 8);
        assert_eq!(report.bisection_links, 16);
        assert!(report.deadlock_free);
    }

    #[test]
    fn paper_fat_tree_headline_numbers() {
        let report = System::fat_tree(64, 4, 2).analyze();
        assert_eq!(report.routers, 28);
        assert!((report.avg_hops - 279.0 / 63.0).abs() < 1e-9);
        assert_eq!(report.worst_contention, 12);
        assert!(report.deadlock_free);
    }

    #[test]
    fn mesh_headline_numbers() {
        let report = System::mesh(6, 6).analyze();
        assert_eq!(report.max_hops, 11);
        assert_eq!(report.worst_contention, 10);
        assert!(report.deadlock_free);
    }

    #[test]
    fn ring_is_flagged_deadlock_prone() {
        let report = System::ring(4).analyze();
        assert!(!report.deadlock_free, "Fig 1: ring routing loops");
    }

    #[test]
    fn tetrahedron_and_clusters() {
        let report = System::tetrahedron().analyze();
        assert_eq!(report.nodes, 12);
        assert_eq!(report.routers, 4);
        assert_eq!(report.worst_contention, 3);
        assert!(report.deadlock_free);
        assert_eq!(System::cluster(2).analyze().worst_contention, 5);
    }

    #[test]
    fn torus_headline_numbers() {
        let report = System::torus(4, 4).analyze();
        assert_eq!(report.nodes, 32);
        assert_eq!(report.routers, 16);
        // Wraparound halves the worst-case distance vs the 4x4 mesh.
        assert!(report.max_hops < System::mesh(4, 4).analyze().max_hops);
        assert!(!report.deadlock_free, "plain torus XY routing cycles");
    }

    #[test]
    fn vc_simulation_through_the_facade() {
        let sys = System::torus(4, 4).with_vcs(2, VcScheme::Dateline);
        assert_eq!(sys.vc(), Some((2, VcScheme::Dateline)));
        assert_eq!(sys.vc_deadlock_free(), Some(true));
        assert!(sys.name().contains("2 VCs (dateline)"));
        let cfg = SimConfig::default()
            .with_packet_flits(8)
            .with_max_cycles(20_000);
        let res = sys.simulate(
            Workload::Bernoulli {
                injection_rate: 0.1,
                pattern: DstPattern::Uniform,
                until_cycle: 2_000,
            },
            cfg,
        );
        assert!(res.deadlock.is_none());
        assert!(res.delivered > 0);
        assert!(res.credits.is_conserved());
    }

    /// Regression: `lint` on a VC-enabled system must judge the
    /// *extended* (channel, vc) graph, not flag the physical cycles
    /// the VC ordering exists to break.
    #[test]
    fn lint_respects_the_vc_ordering() {
        let vc = System::torus(4, 4).with_vcs(2, VcScheme::Dateline);
        let report = vc.lint();
        assert!(
            report.is_clean(),
            "dateline torus must lint clean: {report}"
        );
        // The verdict is an explicit Info finding, not silence.
        assert!(
            report
                .by_rule(fractanet_lint::RuleId::L3CdgCycles)
                .any(|d| d.message.contains("extended (channel, vc)")),
            "{report}"
        );
        // Without the ordering the same topology still fails L3.
        assert!(!System::torus(4, 4).lint().is_clean());
    }

    #[test]
    fn simulation_through_the_facade() {
        let sys = System::fat_fractahedron(1);
        let cfg = SimConfig::default()
            .with_packet_flits(8)
            .with_max_cycles(5_000);
        let res = sys.simulate(
            Workload::Bernoulli {
                injection_rate: 0.1,
                pattern: DstPattern::Uniform,
                until_cycle: 2_000,
            },
            cfg,
        );
        assert!(res.deadlock.is_none());
        assert!(res.delivered > 0);
    }

    #[test]
    fn thin_vs_fat_tradeoff_visible() {
        let thin = System::thin_fractahedron(2, false).analyze();
        let fat = System::fat_fractahedron(2).analyze();
        assert!(thin.routers < fat.routers);
        assert!(thin.bisection_links < fat.bisection_links);
        assert!(thin.max_hops > fat.max_hops);
    }

    #[test]
    fn report_display_is_complete() {
        let s = System::fat_fractahedron(2).analyze().to_string();
        assert!(s.contains("48 routers"));
        assert!(s.contains("deadlock-free"));
        assert!(s.contains("4.30"));
        let r = System::ring(4).analyze().to_string();
        assert!(r.contains("CAN DEADLOCK"));
    }

    #[test]
    fn paper_systems_lint_clean() {
        for sys in [
            System::fat_fractahedron(1),
            System::fat_fractahedron(2),
            System::thin_fractahedron(2, false),
            System::mesh(6, 6),
            System::fat_tree(64, 4, 2),
            System::hypercube(3, 6),
            System::tetrahedron(),
        ] {
            let report = sys.lint();
            assert!(report.is_clean(), "{}: {report}", sys.name());
        }
    }

    #[test]
    fn ring_lint_reports_cycles() {
        use fractanet_lint::RuleId;
        let report = System::ring(4).lint();
        assert!(!report.is_clean());
        assert!(report.by_rule(RuleId::L3CdgCycles).next().is_some());
    }

    #[test]
    fn hypercube_and_tree_build() {
        assert!(System::hypercube(3, 6).analyze().deadlock_free);
        let t = System::binary_tree(3, 2).analyze();
        assert!(t.deadlock_free);
        assert_eq!(t.bisection_links, 1);
    }
}
