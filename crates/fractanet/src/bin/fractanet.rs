//! The `fractanet` command-line tool: analyze, render, simulate and
//! plan ServerNet-style topologies from the shell. See
//! `fractanet help` or [`fractanet::cli`] for the grammar.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fractanet::cli::parse(&args).and_then(fractanet::cli::execute) {
        Ok(outcome) => {
            print!("{}", outcome.output);
            ExitCode::from(outcome.code)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
