//! Command-line interface plumbing for the `fractanet` binary.
//!
//! Kept as a library module so the parsing and command logic are unit
//! tested; `src/bin/fractanet.rs` is a thin shell around [`run`].
//!
//! ```text
//! fractanet analyze fat-fractahedron:2
//! fractanet analyze mesh:6x6 fattree:64:4:2 fat-fractahedron:2
//! fractanet dot fat-fractahedron:1 --routers-only
//! fractanet simulate fat-fractahedron:2 --load 0.3 --cycles 10000
//! fractanet plan --cpus 1024 --bisection 16
//! ```

use crate::chaos::{self, ChaosOptions};
use crate::sizing::{plan, Requirement};
use crate::spec::{TopoSpec, VcBase, VcDisc};
use crate::System;
use fractanet_graph::{viz, LinkId, NodeId};
use fractanet_sim::{
    parse_trace, write_trace, DstPattern, FaultEvent, MetricsConfig, MetricsReport, RetryPolicy,
    Scenario, SimConfig, Telemetry, Workload,
};
use fractanet_telemetry::{
    incident_chrome_trace, to_chrome_trace, to_jsonl, to_prometheus, to_text_summary,
};
use std::fmt;

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Analyze one or more topologies.
    Analyze(Vec<TopoSpec>),
    /// Emit Graphviz for a topology.
    Dot {
        /// What to render.
        spec: TopoSpec,
        /// Hide end nodes.
        routers_only: bool,
    },
    /// Simulate uniform traffic on a topology.
    Simulate {
        /// What to simulate.
        spec: TopoSpec,
        /// Offered load in flits/node/cycle.
        load: f64,
        /// Cycle budget.
        cycles: u64,
        /// Fault-injection and recovery options.
        faults: FaultOpts,
        /// Record telemetry and append the per-channel summary.
        telemetry: bool,
        /// Worker threads for the sharded engine (`--threads`);
        /// results are identical at every width.
        threads: usize,
        /// Live-metrics options (`--metrics-every`, `--metrics-out`,
        /// `--slo-deadline`).
        metrics: MetricsOpts,
        /// Router knobs (`--fifo-depth`, `--credit-delay`, `--vcs`,
        /// `--vc-discipline`).
        router: RouterOpts,
    },
    /// Run a metrics-instrumented simulation and export the live
    /// metrics pipeline's view of it.
    Metrics {
        /// What to simulate.
        spec: TopoSpec,
        /// Offered load in flits/node/cycle.
        load: f64,
        /// Cycle budget.
        cycles: u64,
        /// Fault-injection and recovery options.
        faults: FaultOpts,
        /// Worker threads for the sharded engine.
        threads: usize,
        /// Export format (`--format prom|jsonl`).
        format: MetricsFormat,
        /// Sampling cadence / SLO deadline / output path.
        metrics: MetricsOpts,
        /// Router knobs (`--fifo-depth`, `--credit-delay`, `--vcs`,
        /// `--vc-discipline`).
        router: RouterOpts,
    },
    /// Re-run a recorded metrics trace and assert the recorded
    /// outcome.
    Replay {
        /// Trace file (JSONL, as written by `--metrics-out`).
        path: String,
        /// Override the recorded thread width (`--threads`; the
        /// outcome is identical at every width).
        threads: Option<usize>,
    },
    /// Simulate with telemetry recording and export the trace.
    Trace {
        /// What to trace.
        spec: TopoSpec,
        /// Export format.
        format: TraceFormat,
        /// File to write instead of stdout.
        out: Option<String>,
        /// Offered load in flits/node/cycle.
        load: f64,
        /// Cycle budget.
        cycles: u64,
        /// Fault-injection and recovery options.
        faults: FaultOpts,
        /// Router knobs (`--fifo-depth`, `--credit-delay`, `--vcs`,
        /// `--vc-discipline`).
        router: RouterOpts,
    },
    /// Plan a fractahedral installation.
    Plan {
        /// Required CPUs.
        cpus: usize,
        /// Required bisection links.
        bisection: u64,
    },
    /// Statically verify routing tables (rules L1–L6).
    Lint {
        /// Topologies to lint.
        specs: Vec<TopoSpec>,
        /// Emit machine-readable JSON instead of prose.
        json: bool,
        /// Exact mode: branch-and-bound minimum disable sets, the L6
        /// minimality rule, and replayable certificates.
        exact: bool,
        /// Also run the certificate-producing route synthesizer per
        /// spec and report its certified disable set.
        synthesize: bool,
    },
    /// Run a deterministic chaos campaign (or replay a scenario file).
    Chaos {
        /// Topology under test (absent in `--replay` mode, where the
        /// scenario file names it).
        spec: Option<TopoSpec>,
        /// Sampled fault schedules to run (`--runs`).
        runs: usize,
        /// Campaign base seed (`--seed`).
        seed: u64,
        /// Short CI-smoke cases (`--quick`).
        quick: bool,
        /// Turn destination duplicate suppression *off*
        /// (`--disable-dedup`) to mint regression scenarios.
        dedup: bool,
        /// Write the first shrunk counterexample here (`--out`).
        out: Option<String>,
        /// Replay a scenario JSON file instead of sampling
        /// (`--replay`).
        replay: Option<String>,
        /// Worker threads dispatching campaign cases (`--threads`);
        /// the verdict is identical at every width.
        threads: usize,
        /// In `--replay` mode: re-run the scenario with live metrics
        /// and write a replayable metrics trace here; when the replay
        /// still violates, a Chrome incident bundle lands next to it
        /// (`--trace-out`).
        trace_out: Option<String>,
        /// Router knobs for both fabrics (`--fifo-depth`,
        /// `--credit-delay`; `--vcs`/`--vc-discipline` fold into
        /// `spec`).
        router: RouterOpts,
    },
    /// Print usage.
    Help,
}

/// Export format for `fractanet trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line: run metadata, spans, then events.
    Jsonl,
    /// Chrome `trace_event` JSON (load in `chrome://tracing` / Perfetto).
    Chrome,
    /// Human-readable per-channel summary.
    Summary,
}

/// Export format for `fractanet metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition (format 0.0.4).
    Prometheus,
    /// The replayable JSONL metrics trace (config echo, fault
    /// timeline, injections, time-series samples, final counts).
    Jsonl,
}

/// Live-metrics options shared by `simulate` and `metrics`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsOpts {
    /// Sampling cadence in cycles (`--metrics-every`); any metrics
    /// flag turns the pipeline on, this one sets the cadence.
    pub every: Option<u64>,
    /// Write the run as a replayable JSONL metrics trace
    /// (`--metrics-out`); anomalies also dump a Chrome incident
    /// bundle next to it.
    pub out: Option<String>,
    /// Per-packet delivery deadline in cycles for SLO accounting
    /// (`--slo-deadline`).
    pub deadline: Option<u64>,
}

impl MetricsOpts {
    fn is_on(&self) -> bool {
        self.every.is_some() || self.out.is_some() || self.deadline.is_some()
    }

    /// The engine-side metrics configuration: always-on flavor, for
    /// commands where metrics are the whole point.
    fn config_on(&self, topology: &str) -> MetricsConfig {
        let mut cfg = MetricsConfig::sampling(self.every.unwrap_or(100));
        if let Some(d) = self.deadline {
            cfg = cfg.with_deadline(d);
        }
        cfg.with_topology(topology)
    }

    /// The engine-side metrics configuration, or off when no metrics
    /// flag was given.
    fn config(&self, topology: &str) -> MetricsConfig {
        if self.is_on() {
            self.config_on(topology)
        } else {
            MetricsConfig::off()
        }
    }
}

/// Router-microarchitecture knobs shared by `simulate`, `metrics`,
/// `trace`, and `chaos`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct RouterOpts {
    /// Per-port input-FIFO depth in flits (`--fifo-depth <n|inf>`;
    /// `inf` restores the pre-credit unbounded-buffer model).
    pub fifo_depth: Option<u32>,
    /// Credit round-trip delay in cycles (`--credit-delay`).
    pub credit_delay: u64,
    /// Virtual channels per physical channel (`--vcs`); folded into
    /// the topology spec at parse time via [`apply_vc_flags`].
    pub vcs: Option<u8>,
    /// VC ordering discipline (`--vc-discipline dateline|ecube`);
    /// folded into the spec alongside `vcs`.
    pub discipline: Option<VcDisc>,
}

impl RouterOpts {
    /// Applies the FIFO-depth and credit-delay knobs to an engine
    /// config (the VC knobs travel through the spec instead).
    fn apply(&self, cfg: SimConfig) -> SimConfig {
        let cfg = cfg.with_credit_delay(self.credit_delay);
        match self.fifo_depth {
            Some(d) => cfg.with_buffer_depth(d),
            None => cfg,
        }
    }
}

/// Folds `--vcs` / `--vc-discipline` into the topology spec, upgrading
/// a VC-capable base to its `:vc<K>[:discipline]` form. The upgraded
/// spec is round-tripped through the grammar so every validation rule
/// (VC range, discipline/base compatibility) applies to flag-built
/// specs exactly as to literal ones.
fn apply_vc_flags(
    spec: TopoSpec,
    vcs: Option<u8>,
    disc: Option<VcDisc>,
) -> Result<TopoSpec, CliError> {
    if vcs.is_none() && disc.is_none() {
        return Ok(spec);
    }
    let (base, cur_vcs, cur_disc) = match spec {
        TopoSpec::Vc { base, vcs, disc } => (base, Some(vcs), Some(disc)),
        TopoSpec::Ring { n } => (VcBase::Ring { n }, None, None),
        TopoSpec::Torus { cols, rows } => (VcBase::Torus { cols, rows }, None, None),
        TopoSpec::Mesh { cols, rows } => (VcBase::Mesh { cols, rows }, None, None),
        TopoSpec::Hypercube { dim } => (VcBase::Hypercube { dim }, None, None),
        other => {
            return Err(CliError(format!(
                "--vcs/--vc-discipline apply to ring, torus, mesh, and hypercube \
                 topologies, not '{other}'"
            )))
        }
    };
    let upgraded = TopoSpec::Vc {
        base,
        vcs: vcs.or(cur_vcs).unwrap_or(2),
        disc: disc.or(cur_disc).unwrap_or(VcDisc::Auto),
    };
    parse_spec(&upgraded.to_string())
}

/// The incident-bundle path derived from a trace path:
/// `x.jsonl` → `x.incident.json`.
fn incident_path(trace_path: &str) -> String {
    match trace_path.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}.incident.json"),
        None => format!("{trace_path}.incident.json"),
    }
}

/// Renders the live-metrics block `simulate` appends: whole-run
/// quantiles, SLO accounting, the worst group pair, and anomalies.
fn metrics_block(m: &MetricsReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "metrics: {} sample(s) every {} cycles; latency p50 {} / p95 {} / p99 {} / max {} cy\n",
        m.samples.len(),
        m.sample_every,
        m.latency.p50(),
        m.latency.p95(),
        m.latency.p99(),
        m.latency.max()
    ));
    s.push_str(&format!(
        "SLO: {:.2}% delivered within {} cy; retry budget burn {:.2}%\n",
        100.0 * m.slo_ratio(),
        m.deadline,
        100.0 * m.retry_budget_burn()
    ));
    if let Some(w) = m
        .classes
        .iter()
        .filter(|c| c.generated > 0)
        .min_by(|a, b| a.slo_ratio().total_cmp(&b.slo_ratio()))
    {
        s.push_str(&format!(
            "worst group pair g{}->g{}: {:.2}% in deadline, burn {:.2}%, p99 {} cy\n",
            w.src_group,
            w.dst_group,
            100.0 * w.slo_ratio(),
            100.0 * w.retry_budget_burn(m.max_retries),
            w.latency.p99()
        ));
    }
    for a in &m.anomalies {
        s.push_str(&format!(
            "anomaly @{}: {} — {}\n",
            a.cycle,
            a.kind.tag(),
            a.detail
        ));
    }
    s
}

/// Fault-injection and recovery options for `simulate`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultOpts {
    /// Link indices to kill (`--kill-link`, repeatable).
    pub kill_links: Vec<u32>,
    /// Router ordinals (among routers, in node order) to kill
    /// (`--kill-router`, repeatable).
    pub kill_routers: Vec<u32>,
    /// Cycle at which the faults strike (`--fault-at`).
    pub fault_at: u64,
    /// Cycle at which transient faults repair (`--repair-at`);
    /// faults are permanent when absent.
    pub repair_at: Option<u64>,
    /// Cycles a source waits for the ACK before retrying
    /// (`--ack-timeout`).
    pub ack_timeout: u64,
    /// Attempts before a transfer is abandoned to the failover layer
    /// (`--max-retries`).
    pub max_retries: u32,
    /// Exponential backoff base in cycles (`--backoff-base`).
    pub backoff_base: u64,
    /// Seed for retry jitter (`--jitter-seed`).
    pub jitter_seed: u64,
    /// Regenerate + certify routing tables around permanent faults
    /// (`--heal`).
    pub heal: bool,
    /// Gray failures: links that silently drop worms, as
    /// `(link, drop ‰)` (`--flaky-link <id>:<pm>`, repeatable).
    pub flaky_links: Vec<(u32, u16)>,
    /// Gray failures: links that corrupt traversing worms, as
    /// `(link, corrupt ‰)` (`--corrupt-link <id>:<pm>`, repeatable).
    pub corrupt_links: Vec<(u32, u16)>,
    /// Oscillating outages, as `(link, down cycles, up cycles)`
    /// (`--brownout <id>:<down>:<up>`, repeatable).
    pub brownouts: Vec<(u32, u64, u64)>,
}

impl Default for FaultOpts {
    fn default() -> Self {
        let retry = RetryPolicy::default();
        FaultOpts {
            kill_links: Vec::new(),
            kill_routers: Vec::new(),
            fault_at: 0,
            repair_at: None,
            ack_timeout: retry.ack_timeout,
            max_retries: retry.max_retries,
            backoff_base: retry.backoff_base,
            jitter_seed: retry.jitter_seed,
            heal: false,
            flaky_links: Vec::new(),
            corrupt_links: Vec::new(),
            brownouts: Vec::new(),
        }
    }
}

impl FaultOpts {
    fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            ack_timeout: self.ack_timeout,
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
            jitter_seed: self.jitter_seed,
        }
    }

    /// Resolves the kill lists against a concrete system into fault
    /// events.
    fn events(&self, sys: &System) -> Result<Vec<FaultEvent>, CliError> {
        let net = sys.net();
        let routers: Vec<NodeId> = net.nodes().filter(|&v| net.is_router(v)).collect();
        let mut out = Vec::new();
        let check_link = |flag: &str, l: u32| {
            if l as usize >= net.link_count() {
                return Err(CliError(format!(
                    "{flag} {l} out of range (network has {} links)",
                    net.link_count()
                )));
            }
            Ok(LinkId(l))
        };
        for &l in &self.kill_links {
            out.push(FaultEvent::kill_link(
                check_link("--kill-link", l)?,
                self.fault_at,
            ));
        }
        for &(l, pm) in &self.flaky_links {
            out.push(FaultEvent::flaky_link(
                check_link("--flaky-link", l)?,
                pm,
                self.fault_at,
            ));
        }
        for &(l, pm) in &self.corrupt_links {
            out.push(FaultEvent::corrupt_link(
                check_link("--corrupt-link", l)?,
                pm,
                self.fault_at,
            ));
        }
        for &(l, down, up) in &self.brownouts {
            if down == 0 || up == 0 {
                return Err(CliError("--brownout phases must be nonzero".into()));
            }
            out.push(FaultEvent::brownout(
                check_link("--brownout", l)?,
                down,
                up,
                self.fault_at,
            ));
        }
        for &r in &self.kill_routers {
            let Some(&node) = routers.get(r as usize) else {
                return Err(CliError(format!(
                    "--kill-router {r} out of range (network has {} routers)",
                    routers.len()
                )));
            };
            out.push(FaultEvent::kill_router(node, self.fault_at));
        }
        if let Some(at) = self.repair_at {
            if at <= self.fault_at {
                return Err(CliError("--repair-at must be after --fault-at".into()));
            }
            for e in &mut out {
                *e = e.transient(at);
            }
        }
        Ok(out)
    }
}

/// CLI errors, with a message suitable for stderr.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
fractanet — fractahedral topologies & deadlock-free ServerNet routing

USAGE:
  fractanet analyze <topology>...       hops/contention/bisection/deadlock report
  fractanet dot <topology> [--routers-only]
                                        Graphviz on stdout
  fractanet simulate <topology> [--load <f>] [--cycles <n>] [--threads <n>]
                     [--fifo-depth <n|inf>] [--credit-delay <cy>]
                     [--vcs <k>] [--vc-discipline dateline|ecube]
                     [--kill-link <id>]... [--kill-router <id>]...
                     [--flaky-link <id>:<pm>]... [--corrupt-link <id>:<pm>]...
                     [--brownout <id>:<down>:<up>]...
                     [--fault-at <cycle>] [--repair-at <cycle>] [--heal]
                     [--ack-timeout <cy>] [--max-retries <n>]
                     [--backoff-base <cy>] [--jitter-seed <s>] [--telemetry]
                     [--metrics-every <cy>] [--metrics-out <path>]
                     [--slo-deadline <cy>]
                                        uniform-traffic wormhole simulation with
                                        optional live fault injection — outright
                                        kills plus gray failures (silent drops,
                                        CRC corruption, oscillating brownouts at
                                        the given per-mille rates) — source
                                        retry and certified self-healing;
                                        --threads shards the engine across
                                        worker threads (results identical at
                                        any width); --telemetry appends the
                                        per-channel utilization/contention
                                        summary; any --metrics-* / --slo-* flag
                                        turns on the live metrics pipeline
                                        (streaming quantile sketches, SLO
                                        accounting — provably inert on the sim
                                        outcome) and --metrics-out records the
                                        run as a replayable JSONL trace, with a
                                        Chrome-trace incident bundle auto-dumped
                                        next to it when the flight recorder sees
                                        an anomaly (deadlock, SLO breach, heal
                                        install); --fifo-depth/--credit-delay
                                        set the router's per-port input-FIFO
                                        depth and credit round-trip delay
                                        (inf = the unbounded pre-credit model),
                                        and --vcs/--vc-discipline fold a
                                        Dally-Seitz virtual-channel suffix onto
                                        a ring/torus/mesh/hypercube spec
  fractanet metrics <topology> [--format prom|jsonl] [--out <path>]
                    [--load <f>] [--cycles <n>] [--threads <n>]
                    [--metrics-every <cy>] [--slo-deadline <cy>]
                    [<fault and router flags as simulate>]
                                        run with live metrics on and export
                                        them: Prometheus text exposition
                                        (default) or the replayable JSONL
                                        metrics trace
  fractanet replay <trace.jsonl> [--threads <n>]
                                        re-run a recorded metrics trace —
                                        scripted injections, echoed config,
                                        fault timeline — and assert the
                                        recorded delivered/abandoned counts and
                                        latency quantiles reproduce exactly.
                                        Exits 1 on any mismatch
  fractanet trace <topology> [--format jsonl|chrome|summary] [--out <path>]
                  [--load <f>] [--cycles <n>]
                  [<fault and router flags as simulate>]
                                        run with the flit-event tracer on and
                                        export the trace: JSONL for scripts,
                                        Chrome trace_event JSON for
                                        chrome://tracing / Perfetto, or a
                                        plain-text summary
  fractanet plan --cpus <n> [--bisection <links>]
                                        fractahedral capacity planning
  fractanet chaos <topology> [--runs <n>] [--seed <s>] [--threads <n>]
                  [--quick] [--disable-dedup] [--out <path>]
                  [<router flags as simulate>]
                                        deterministic chaos campaign: sampled
                                        fault schedules (kills, flaky/corrupting
                                        links, brownouts) against a self-healing
                                        dual fabric, checking exactly-once
                                        delivery, deadlock freedom, heal
                                        certification and span accounting;
                                        violations delta-shrink to a minimal
                                        replayable JSON scenario (recording any
                                        --fifo-depth/--credit-delay knobs);
                                        --threads dispatches cases across
                                        workers with an identical verdict.
                                        Exits 1 on any violation
  fractanet chaos --replay <file> [--quick] [--disable-dedup]
                  [--trace-out <path>]
                                        re-run a recorded scenario bit-
                                        identically and re-check every
                                        invariant; --trace-out additionally
                                        re-runs the schedule with live metrics
                                        and writes a replayable metrics trace
                                        (plus an incident bundle when the
                                        scenario still violates)
  fractanet lint <topology>... [--json] [--exact] [--synthesize]
                                        static route verification: coverage,
                                        path well-formedness, dependency-cycle
                                        enumeration, discipline conformance,
                                        contention bounds. Exits 1 when any
                                        error-severity diagnostic fires.
                                        --exact upgrades suggestions to proven
                                        minimum disable sets and adds the L6
                                        minimality rule with a replayable
                                        certificate; --synthesize also runs the
                                        certificate-producing route synthesizer
                                        per topology
  fractanet help

TOPOLOGIES:
  fat-fractahedron:<levels>             e.g. fat-fractahedron:2  (the paper's Fig 7 at 2)
  thin-fractahedron:<levels>[:fanout]   e.g. thin-fractahedron:3:fanout (1024 CPUs)
  mesh:<cols>x<rows>                    e.g. mesh:6x6            (§3.1)
  torus:<cols>x<rows>                   e.g. torus:8x8           (wraparound mesh;
                                        XY routing deadlock-prone without :vc2)
  fattree:<nodes>:<down>:<up>           e.g. fattree:64:4:2      (Fig 6)
  hypercube:<dim>                       e.g. hypercube:3         (Fig 2; dim <= 8,
                                        routers grow past 6 ports above dim 5)
  ring:<n>                              e.g. ring:4              (Fig 1 — deadlock-prone!)
  tetrahedron                           (Fig 4)
  cluster:<m>                           e.g. cluster:3           (Fig 3)
  bintree:<depth>:<nodes-per-leaf>      e.g. bintree:3:2
  <base>:vc<k>[:dateline|:ecube]        e.g. torus:8x8:vc2:dateline, ring:6:vc2,
                                        mesh:6x6:vc2:ecube — k virtual channels
                                        per physical channel under a Dally-Seitz
                                        ordering discipline (base = ring, torus,
                                        mesh, or hypercube; the discipline
                                        defaults to the canonical one)
";

/// Parses a topology specifier, appending usage on failure.
fn parse_spec(s: &str) -> Result<TopoSpec, CliError> {
    s.parse()
        .map_err(|e: crate::spec::SpecError| CliError(format!("{e}\n\n{USAGE}")))
}

/// Splits a flag value like `3:50` (or `3:16:24`) into `n` integer
/// fields, erroring with the flag name and expected shape.
fn split_fields(
    flag: &str,
    shape: &str,
    v: Option<&String>,
    n: usize,
) -> Result<Vec<u64>, CliError> {
    let v = v.ok_or_else(|| CliError(format!("{flag} needs {shape}")))?;
    let parts: Vec<u64> = v.split(':').filter_map(|p| p.parse().ok()).collect();
    if parts.len() != n || v.split(':').count() != n {
        return Err(CliError(format!("{flag} needs {shape}, got '{v}'")));
    }
    Ok(parts)
}

/// Parses a `--fifo-depth` value: a positive flit count, or `inf` for
/// the unbounded pre-credit buffer model.
fn fifo_depth_value(v: Option<&String>) -> Result<u32, CliError> {
    let v = v.ok_or_else(|| CliError("--fifo-depth needs a flit count or 'inf'".into()))?;
    if v == "inf" {
        return Ok(SimConfig::INFINITE_DEPTH);
    }
    match v.parse::<u32>() {
        Ok(d) if d >= 1 => Ok(d),
        _ => Err(CliError(format!(
            "--fifo-depth needs a flit count >= 1 or 'inf', got '{v}'"
        ))),
    }
}

/// Parses a `--vc-discipline` value.
fn discipline_value(v: Option<&String>) -> Result<VcDisc, CliError> {
    match v.map(String::as_str) {
        Some("dateline") => Ok(VcDisc::Dateline),
        Some("ecube") => Ok(VcDisc::Ecube),
        Some(other) => Err(CliError(format!(
            "unknown VC discipline '{other}' (dateline|ecube)"
        ))),
        None => Err(CliError("--vc-discipline needs dateline|ecube".into())),
    }
}

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("analyze") => {
            let specs: Vec<TopoSpec> =
                it.map(|a| parse_spec(a)).collect::<Result<_, CliError>>()?;
            if specs.is_empty() {
                return Err(CliError(format!("analyze needs a topology\n\n{USAGE}")));
            }
            Ok(Command::Analyze(specs))
        }
        Some("dot") => {
            let mut spec = None;
            let mut routers_only = false;
            for a in it {
                match a.as_str() {
                    "--routers-only" => routers_only = true,
                    other if spec.is_none() => spec = Some(parse_spec(other)?),
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let spec = spec.ok_or_else(|| CliError(format!("dot needs a topology\n\n{USAGE}")))?;
            Ok(Command::Dot { spec, routers_only })
        }
        Some(cmd @ ("simulate" | "trace" | "metrics")) => {
            let tracing = cmd == "trace";
            let metrics_cmd = cmd == "metrics";
            let mut spec = None;
            let mut load = 0.2f64;
            let mut cycles = if tracing { 5_000u64 } else { 20_000u64 };
            let mut faults = FaultOpts::default();
            let mut telemetry = false;
            let mut threads = 1usize;
            let mut format = TraceFormat::Summary;
            let mut mformat = MetricsFormat::Prometheus;
            let mut metrics = MetricsOpts::default();
            let mut router = RouterOpts::default();
            let mut out = None;
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                macro_rules! val {
                    ($flag:literal) => {
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError(concat!($flag, " needs a number").into()))?
                    };
                }
                match a.as_str() {
                    "--load" => load = val!("--load"),
                    "--cycles" => cycles = val!("--cycles"),
                    "--kill-link" => faults.kill_links.push(val!("--kill-link")),
                    "--kill-router" => faults.kill_routers.push(val!("--kill-router")),
                    "--fault-at" => faults.fault_at = val!("--fault-at"),
                    "--repair-at" => faults.repair_at = Some(val!("--repair-at")),
                    "--ack-timeout" => faults.ack_timeout = val!("--ack-timeout"),
                    "--max-retries" => faults.max_retries = val!("--max-retries"),
                    "--backoff-base" => faults.backoff_base = val!("--backoff-base"),
                    "--jitter-seed" => faults.jitter_seed = val!("--jitter-seed"),
                    "--heal" => faults.heal = true,
                    "--fifo-depth" => router.fifo_depth = Some(fifo_depth_value(it.next())?),
                    "--credit-delay" => router.credit_delay = val!("--credit-delay"),
                    "--vcs" => router.vcs = Some(val!("--vcs")),
                    "--vc-discipline" => router.discipline = Some(discipline_value(it.next())?),
                    flag @ ("--flaky-link" | "--corrupt-link") => {
                        let f = split_fields(flag, "<link>:<per-mille>", it.next(), 2)?;
                        if f[1] > 1000 {
                            return Err(CliError(format!("{flag}: per-mille must be <= 1000")));
                        }
                        let pair = (f[0] as u32, f[1] as u16);
                        if flag == "--flaky-link" {
                            faults.flaky_links.push(pair);
                        } else {
                            faults.corrupt_links.push(pair);
                        }
                    }
                    "--brownout" => {
                        let f = split_fields("--brownout", "<link>:<down>:<up>", it.next(), 3)?;
                        faults.brownouts.push((f[0] as u32, f[1], f[2]));
                    }
                    "--telemetry" if cmd == "simulate" => telemetry = true,
                    "--threads" if !tracing => threads = val!("--threads"),
                    "--metrics-every" if !tracing => metrics.every = Some(val!("--metrics-every")),
                    "--slo-deadline" if !tracing => metrics.deadline = Some(val!("--slo-deadline")),
                    "--metrics-out" if cmd == "simulate" => {
                        metrics.out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--metrics-out needs a path".into()))?
                                .clone(),
                        );
                    }
                    "--format" if tracing => {
                        let v = it.next().ok_or_else(|| {
                            CliError("--format needs jsonl|chrome|summary".into())
                        })?;
                        format = match v.as_str() {
                            "jsonl" => TraceFormat::Jsonl,
                            "chrome" => TraceFormat::Chrome,
                            "summary" => TraceFormat::Summary,
                            other => {
                                return Err(CliError(format!(
                                    "unknown trace format '{other}' (jsonl|chrome|summary)"
                                )))
                            }
                        };
                    }
                    "--format" if metrics_cmd => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--format needs prom|jsonl".into()))?;
                        mformat = match v.as_str() {
                            "prom" => MetricsFormat::Prometheus,
                            "jsonl" => MetricsFormat::Jsonl,
                            other => {
                                return Err(CliError(format!(
                                    "unknown metrics format '{other}' (prom|jsonl)"
                                )))
                            }
                        };
                    }
                    "--out" if tracing || metrics_cmd => {
                        out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--out needs a path".into()))?
                                .clone(),
                        );
                    }
                    other if spec.is_none() && !other.starts_with('-') => {
                        spec = Some(parse_spec(other)?)
                    }
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let spec =
                spec.ok_or_else(|| CliError(format!("{cmd} needs a topology\n\n{USAGE}")))?;
            let spec = apply_vc_flags(spec, router.vcs, router.discipline)?;
            if !(0.0..=1.0).contains(&load) {
                return Err(CliError(
                    "--load must be within 0..=1 flits/node/cycle".into(),
                ));
            }
            if tracing {
                Ok(Command::Trace {
                    spec,
                    format,
                    out,
                    load,
                    cycles,
                    faults,
                    router,
                })
            } else if metrics_cmd {
                metrics.out = out;
                Ok(Command::Metrics {
                    spec,
                    load,
                    cycles,
                    faults,
                    threads,
                    format: mformat,
                    metrics,
                    router,
                })
            } else {
                Ok(Command::Simulate {
                    spec,
                    load,
                    cycles,
                    faults,
                    telemetry,
                    threads,
                    metrics,
                    router,
                })
            }
        }
        Some("replay") => {
            let mut path = None;
            let mut threads = None;
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--threads" => {
                        threads = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| CliError("--threads needs a number".into()))?,
                        )
                    }
                    other if path.is_none() && !other.starts_with('-') => {
                        path = Some(other.to_string())
                    }
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let path =
                path.ok_or_else(|| CliError(format!("replay needs a trace file\n\n{USAGE}")))?;
            Ok(Command::Replay { path, threads })
        }
        Some("chaos") => {
            let mut spec = None;
            let mut runs = 64usize;
            let mut seed = 42u64;
            let mut quick = false;
            let mut dedup = true;
            let mut threads = 1usize;
            let mut out = None;
            let mut replay = None;
            let mut trace_out = None;
            let mut router = RouterOpts::default();
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                macro_rules! val {
                    ($flag:literal) => {
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError(concat!($flag, " needs a number").into()))?
                    };
                }
                match a.as_str() {
                    "--spec" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--spec needs a topology".into()))?;
                        spec = Some(parse_spec(v)?);
                    }
                    "--runs" => runs = val!("--runs"),
                    "--seed" => seed = val!("--seed"),
                    "--threads" => threads = val!("--threads"),
                    "--fifo-depth" => router.fifo_depth = Some(fifo_depth_value(it.next())?),
                    "--credit-delay" => router.credit_delay = val!("--credit-delay"),
                    "--vcs" => router.vcs = Some(val!("--vcs")),
                    "--vc-discipline" => router.discipline = Some(discipline_value(it.next())?),
                    "--quick" => quick = true,
                    "--disable-dedup" => dedup = false,
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--out needs a path".into()))?
                                .clone(),
                        );
                    }
                    "--replay" => {
                        replay = Some(
                            it.next()
                                .ok_or_else(|| CliError("--replay needs a path".into()))?
                                .clone(),
                        );
                    }
                    "--trace-out" => {
                        trace_out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--trace-out needs a path".into()))?
                                .clone(),
                        );
                    }
                    other if spec.is_none() && !other.starts_with('-') => {
                        spec = Some(parse_spec(other)?)
                    }
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            if spec.is_none() && replay.is_none() {
                return Err(CliError(format!(
                    "chaos needs a topology or --replay <file>\n\n{USAGE}"
                )));
            }
            if trace_out.is_some() && replay.is_none() {
                return Err(CliError("--trace-out only applies in --replay mode".into()));
            }
            if replay.is_some() && (router.fifo_depth.is_some() || router.credit_delay != 0) {
                return Err(CliError(
                    "--fifo-depth/--credit-delay don't apply in --replay mode \
                     (the scenario file records them)"
                        .into(),
                ));
            }
            let spec = match spec {
                Some(sp) => Some(apply_vc_flags(sp, router.vcs, router.discipline)?),
                None if router.vcs.is_some() || router.discipline.is_some() => {
                    return Err(CliError(
                        "--vcs/--vc-discipline need a topology (the scenario file \
                         records the spec in --replay mode)"
                            .into(),
                    ))
                }
                None => None,
            };
            Ok(Command::Chaos {
                spec,
                runs,
                seed,
                quick,
                dedup,
                out,
                replay,
                threads,
                trace_out,
                router,
            })
        }
        Some("lint") => {
            let mut specs = Vec::new();
            let mut json = false;
            let mut exact = false;
            let mut synthesize = false;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    "--exact" => exact = true,
                    "--synthesize" => synthesize = true,
                    other if other.starts_with('-') => {
                        return Err(CliError(format!("unexpected argument '{other}'")))
                    }
                    other => specs.push(parse_spec(other)?),
                }
            }
            if specs.is_empty() {
                return Err(CliError(format!("lint needs a topology\n\n{USAGE}")));
            }
            Ok(Command::Lint {
                specs,
                json,
                exact,
                synthesize,
            })
        }
        Some("plan") => {
            let mut cpus = None;
            let mut bisection = 1u64;
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--cpus" => {
                        cpus = it.next().and_then(|v| v.parse().ok());
                        if cpus.is_none() {
                            return Err(CliError("--cpus needs an integer".into()));
                        }
                    }
                    "--bisection" => {
                        bisection = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError("--bisection needs an integer".into()))?;
                    }
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let cpus = cpus.ok_or_else(|| CliError(format!("plan needs --cpus\n\n{USAGE}")))?;
            Ok(Command::Plan { cpus, bisection })
        }
        Some(other) => Err(CliError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

/// What a command produced, including the process exit status — lint
/// findings are not *errors* (parsing and building succeeded) but must
/// still fail a CI gate.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Text for stdout.
    pub output: String,
    /// Process exit code: 0 = success, 1 = lint gate failed.
    pub code: u8,
}

/// Executes a command, reporting output *and* exit status. This is the
/// binary's entry point; [`run`] remains for callers that only want
/// the text.
pub fn execute(cmd: Command) -> Result<RunOutcome, CliError> {
    match cmd {
        Command::Lint {
            specs,
            json,
            exact,
            synthesize,
        } => run_lint(&specs, json, exact, synthesize),
        Command::Chaos { .. } => run_chaos(cmd),
        Command::Replay { path, threads } => run_replay(&path, threads),
        other => run(other).map(|output| RunOutcome { output, code: 0 }),
    }
}

/// Re-runs a recorded metrics trace through a fresh engine and checks
/// the recorded finals. The exit code is 1 when any recorded count or
/// latency quantile fails to reproduce — so CI can gate on "checked-in
/// incident traces still replay exactly".
fn run_replay(path: &str, threads: Option<usize>) -> Result<RunOutcome, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let trace =
        parse_trace(&text).map_err(|e| CliError(format!("{path} is not a metrics trace: {e}")))?;
    let spec = parse_spec(&trace.spec)?;
    let sys = spec.build();
    let mut cfg = trace.cfg.clone();
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let workload = trace.workload();
    let res = if trace.heal {
        sys.simulate_healing(workload, cfg)
    } else {
        sys.simulate(workload, cfg)
    };
    let mut out = format!(
        "replaying {path} on {}: {} injection(s), {} fault(s), threads {}{}\n",
        trace.spec,
        trace.injections.len(),
        trace.cfg.faults.len(),
        threads.unwrap_or(trace.cfg.threads),
        if trace.heal { ", healing on" } else { "" },
    );
    let bad = trace.check(&res);
    for line in &bad {
        out.push_str(&format!("MISMATCH {line}\n"));
    }
    if bad.is_empty() {
        out.push_str(&format!(
            "replay exact: {} generated, {} delivered, {} abandoned, \
             p50 {} / p95 {} / p99 {} / max {} cy\n",
            trace.expected.generated,
            trace.expected.delivered,
            trace.expected.abandoned,
            trace.expected.p50,
            trace.expected.p95,
            trace.expected.p99,
            trace.expected.max,
        ));
    }
    Ok(RunOutcome {
        output: out,
        code: u8::from(!bad.is_empty()),
    })
}

/// Runs a chaos campaign or scenario replay. The exit code is 1 when
/// any invariant violation was observed — so CI can both gate on
/// "campaign clean" and on "checked-in regression scenario no longer
/// reproduces".
fn run_chaos(cmd: Command) -> Result<RunOutcome, CliError> {
    let Command::Chaos {
        spec,
        runs,
        seed,
        quick,
        dedup,
        out: out_path,
        replay,
        threads,
        trace_out,
        router,
    } = cmd
    else {
        unreachable!("run_chaos is only called on Command::Chaos");
    };
    let mut out = String::new();
    if let Some(path) = replay {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
        let sc = Scenario::from_json(&text)
            .map_err(|e| CliError(format!("{path} is not a scenario: {e}")))?;
        out.push_str(&format!(
            "replaying {} on {} (engine seed {}, {} fault(s), recorded invariant {})\n",
            path,
            sc.spec,
            sc.seed,
            sc.faults.len(),
            sc.invariant
        ));
        // With --trace-out the replay also mints the incident: a
        // replayable metrics trace, plus a flight-recorder bundle when
        // the scenario still violates.
        let violations = match &trace_out {
            Some(tp) => {
                let inc = chaos::incident(&sc, quick, dedup)
                    .map_err(|e| CliError(format!("{path}: {e}")))?;
                std::fs::write(tp, inc.trace.as_bytes())
                    .map_err(|e| CliError(format!("cannot write {tp}: {e}")))?;
                out.push_str(&format!("wrote metrics trace to {tp}\n"));
                if let Some(bundle) = &inc.bundle {
                    let ip = incident_path(tp);
                    std::fs::write(&ip, bundle.as_bytes())
                        .map_err(|e| CliError(format!("cannot write {ip}: {e}")))?;
                    out.push_str(&format!("wrote incident bundle to {ip}\n"));
                }
                inc.violations
            }
            None => {
                chaos::replay(&sc, quick, dedup).map_err(|e| CliError(format!("{path}: {e}")))?
            }
        };
        for v in &violations {
            out.push_str(&format!(
                "violation: {} — {}\n",
                v.invariant.tag(),
                v.detail
            ));
        }
        if violations.is_empty() {
            out.push_str("replay clean: every invariant held\n");
        }
        return Ok(RunOutcome {
            output: out,
            code: u8::from(!violations.is_empty()),
        });
    }
    let spec = spec.expect("parser requires a spec without --replay");
    let opts = ChaosOptions {
        runs,
        seed,
        quick,
        dedup,
        threads,
        fifo_depth: router.fifo_depth,
        credit_delay: router.credit_delay,
    };
    let report = chaos::run_campaign(&spec, &opts);
    for line in &report.lines {
        out.push_str(line);
        out.push('\n');
    }
    if let (Some(path), Some(sc)) = (&out_path, report.scenarios.first()) {
        std::fs::write(path, sc.to_json().as_bytes())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!(
            "wrote minimal scenario ({} fault(s), invariant {}) to {path}\n",
            sc.faults.len(),
            sc.invariant
        ));
    }
    out.push_str(&format!("{}\n", report.summary()));
    Ok(RunOutcome {
        output: out,
        code: u8::from(!report.is_clean()),
    })
}

/// Lints each spec's canonical routing tables. The exit code is 1 when
/// any error-severity diagnostic fired across any spec. `--exact`
/// switches to exact mode (minimum disable sets, L6, certificates);
/// `--synthesize` additionally runs the certificate-producing route
/// synthesizer per spec and replay-checks its witness.
fn run_lint(
    specs: &[TopoSpec],
    json: bool,
    exact: bool,
    synthesize: bool,
) -> Result<RunOutcome, CliError> {
    let mut out = String::new();
    let mut errors = 0usize;
    let mut entries = Vec::new();
    for spec in specs {
        let sys = spec.build();
        let report = if exact { sys.lint_exact() } else { sys.lint() };
        errors += report.error_count();
        let synth = if synthesize {
            Some(synth_summary(&sys))
        } else {
            None
        };
        entries.push((report, synth));
    }
    if json {
        // One JSON array; plain report objects, or {"lint":…,
        // "synthesis":…} wrappers when synthesis ran.
        out.push('[');
        for (i, (r, synth)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match synth {
                Some(s) => out.push_str(
                    &fractanet_graph::json::JsonObject::new()
                        .field_raw("lint", &r.to_json())
                        .field_raw("synthesis", s.json())
                        .build(),
                ),
                None => out.push_str(&r.to_json()),
            }
        }
        out.push_str("]\n");
    } else {
        for (r, synth) in &entries {
            out.push_str(&format!("{r}\n"));
            if let Some(s) = synth {
                out.push_str(&s.text);
            }
        }
        out.push_str(&format!(
            "lint: {} configuration(s), {} error(s), {} warning(s)\n",
            entries.len(),
            errors,
            entries
                .iter()
                .map(|(r, _)| r.warning_count())
                .sum::<usize>()
        ));
    }
    Ok(RunOutcome {
        output: out,
        code: u8::from(errors > 0),
    })
}

/// The per-spec `--synthesize` result, pre-rendered for both output
/// modes.
struct SynthSummary {
    text: String,
    json: String,
}

impl SynthSummary {
    fn json(&self) -> &str {
        &self.json
    }
}

/// Runs the exact synthesizer for one system and replay-checks the
/// witness certificate from scratch.
fn synth_summary(sys: &crate::system::System) -> SynthSummary {
    use fractanet_graph::json::JsonObject;
    match sys.synthesize_exact() {
        Ok(s) => {
            let replay = s.witness.replay(sys.net(), sys.end_nodes());
            let claim = if s.proven_minimal {
                format!("proven minimal over {} enumerated cycle(s)", s.cycles_seen)
            } else if s.truncated {
                "enumeration truncated — minimality not claimed".into()
            } else {
                format!("minimality unproven (lower bound {})", s.lower_bound)
            };
            let replay_txt = match &replay {
                Ok(covered) => format!("certificate replay OK ({covered} pairs)"),
                Err(e) => format!("CERTIFICATE REPLAY FAILED: {e}"),
            };
            SynthSummary {
                text: format!(
                    "  synthesize: {} turn disable(s), {}/{} pairs routed, {claim}; {replay_txt}\n",
                    s.disables(),
                    s.connected_pairs,
                    s.total_pairs,
                ),
                json: JsonObject::new()
                    .field_num("disables", s.disables())
                    .field_num("covered_pairs", s.connected_pairs)
                    .field_num("total_pairs", s.total_pairs)
                    .field_bool("proven_minimal", s.proven_minimal)
                    .field_bool("replay_ok", replay.is_ok())
                    .field_raw("certificate", &s.certificate_json())
                    .build(),
            }
        }
        Err(e) => SynthSummary {
            text: format!("  synthesize: failed ({e})\n"),
            json: JsonObject::new().field_str("error", &e.to_string()).build(),
        },
    }
}

/// Executes a command, writing human output to the returned string.
pub fn run(cmd: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Lint {
            specs,
            json,
            exact,
            synthesize,
        } => return run_lint(&specs, json, exact, synthesize).map(|o| o.output),
        cmd @ Command::Chaos { .. } => return run_chaos(cmd).map(|o| o.output),
        Command::Replay { path, threads } => return run_replay(&path, threads).map(|o| o.output),
        Command::Analyze(specs) => {
            for spec in specs {
                let sys = spec.build();
                out.push_str(&format!("{}\n", sys.analyze()));
            }
        }
        Command::Dot { spec, routers_only } => {
            let sys = spec.build();
            let dot = if routers_only {
                viz::routers_only_dot(sys.net(), &sys.name())
            } else {
                viz::to_dot(
                    sys.net(),
                    &viz::DotOptions {
                        name: sys.name(),
                        ..viz::DotOptions::default()
                    },
                )
            };
            out.push_str(&dot);
        }
        Command::Simulate {
            spec,
            load,
            cycles,
            faults,
            telemetry,
            threads,
            metrics,
            router,
        } => {
            let sys = spec.build();
            let report = sys.analyze();
            let events = faults.events(&sys)?;
            let injecting = !events.is_empty();
            let cfg = router
                .apply(SimConfig {
                    packet_flits: 16,
                    max_cycles: cycles,
                    stall_threshold: (cycles / 4).max(100),
                    warmup_cycles: cycles / 10,
                    retry: faults.retry(),
                    telemetry: if telemetry {
                        Telemetry::recording()
                    } else {
                        Telemetry::off()
                    },
                    metrics: metrics.config(&sys.name()),
                    ..SimConfig::default()
                })
                .with_faults(events)
                .with_threads(threads);
            let workload = Workload::Bernoulli {
                injection_rate: load,
                pattern: DstPattern::Uniform,
                until_cycle: cycles * 3 / 4,
            };
            let res = if faults.heal {
                sys.simulate_healing(workload, cfg.clone())
            } else {
                sys.simulate(workload, cfg.clone())
            };
            out.push_str(&format!("{report}\n"));
            out.push_str(&format!(
                "simulated {} cycles at load {load}: {}/{} packets delivered, \
                 avg latency {:.1} cy, p95 {} cy, throughput {:.3} flits/node/cy\n",
                res.cycles,
                res.delivered,
                res.generated,
                res.avg_latency,
                res.p95_latency,
                res.throughput
            ));
            match res.deadlock {
                Some(dl) => out.push_str(&format!(
                    "DEADLOCK at cycle {} ({} packets stuck, {}-channel circular wait)\n",
                    dl.cycle,
                    dl.stuck_packets,
                    dl.cycle_channels.len()
                )),
                None => out.push_str("no deadlock\n"),
            }
            if res.credits.consumed > 0 {
                // consumed == returned only once every worm has drained;
                // a max-cycles cutoff legitimately strands the difference
                // in occupied FIFO slots.
                let held = res.credits.consumed - res.credits.returned;
                out.push_str(&format!(
                    "credits: {} consumed, {} returned ({}), {} transfer stalls\n",
                    res.credits.consumed,
                    res.credits.returned,
                    if res.credits.is_conserved() {
                        "conserved".to_string()
                    } else {
                        format!("{held} held at cutoff")
                    },
                    res.credits.stalls
                ));
            }
            if injecting {
                let r = &res.recovery;
                out.push_str(&format!(
                    "faults: {} applied, {} worms dropped, {} retries, {} abandoned, \
                     {} repaired tables installed\n",
                    r.faults_applied,
                    r.dropped_worms,
                    r.retries,
                    r.abandoned.len(),
                    r.repairs_installed
                ));
                match r.time_to_recover {
                    Some(t) => out.push_str(&format!(
                        "recovered in {t} cycles; post-fault delivery {:.1}%\n",
                        100.0 * r.post_fault_delivery_ratio()
                    )),
                    None => out.push_str(&format!(
                        "post-fault delivery {:.1}%\n",
                        100.0 * r.post_fault_delivery_ratio()
                    )),
                }
            }
            if let Some(m) = &res.metrics {
                out.push_str(&metrics_block(m));
                if let Some(path) = &metrics.out {
                    let text = write_trace(&spec.to_string(), faults.heal, &cfg, m);
                    std::fs::write(path, text.as_bytes())
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    out.push_str(&format!(
                        "wrote metrics trace ({} injection(s), {} sample(s)) to {path}\n",
                        m.injections.len(),
                        m.samples.len()
                    ));
                    if let Some(bundle) = incident_chrome_trace(m, &[]) {
                        let ip = incident_path(path);
                        std::fs::write(&ip, bundle.as_bytes())
                            .map_err(|e| CliError(format!("cannot write {ip}: {e}")))?;
                        out.push_str(&format!(
                            "flight recorder: {} anomaly(ies) — wrote incident bundle to {ip}\n",
                            m.anomalies.len()
                        ));
                    }
                }
            }
            if let Some(tel) = &res.telemetry {
                out.push_str(&to_text_summary(tel));
            }
        }
        Command::Metrics {
            spec,
            load,
            cycles,
            faults,
            threads,
            format,
            metrics,
            router,
        } => {
            let sys = spec.build();
            let events = faults.events(&sys)?;
            let cfg = router
                .apply(SimConfig {
                    packet_flits: 16,
                    max_cycles: cycles,
                    stall_threshold: (cycles / 4).max(100),
                    warmup_cycles: cycles / 10,
                    retry: faults.retry(),
                    metrics: metrics.config_on(&sys.name()),
                    ..SimConfig::default()
                })
                .with_faults(events)
                .with_threads(threads);
            let workload = Workload::Bernoulli {
                injection_rate: load,
                pattern: DstPattern::Uniform,
                until_cycle: cycles * 3 / 4,
            };
            let res = if faults.heal {
                sys.simulate_healing(workload, cfg.clone())
            } else {
                sys.simulate(workload, cfg.clone())
            };
            let m = res
                .metrics
                .as_ref()
                .expect("metrics always records under the metrics command");
            let rendered = match format {
                MetricsFormat::Prometheus => to_prometheus(m),
                MetricsFormat::Jsonl => write_trace(&spec.to_string(), faults.heal, &cfg, m),
            };
            match &metrics.out {
                Some(path) => {
                    std::fs::write(path, rendered.as_bytes())
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    out.push_str(&format!("wrote {} bytes to {path}\n", rendered.len()));
                    if let Some(bundle) = incident_chrome_trace(m, &[]) {
                        let ip = incident_path(path);
                        std::fs::write(&ip, bundle.as_bytes())
                            .map_err(|e| CliError(format!("cannot write {ip}: {e}")))?;
                        out.push_str(&format!(
                            "flight recorder: {} anomaly(ies) — wrote incident bundle to {ip}\n",
                            m.anomalies.len()
                        ));
                    }
                }
                None => out.push_str(&rendered),
            }
        }
        Command::Trace {
            spec,
            format,
            out: out_path,
            load,
            cycles,
            faults,
            router,
        } => {
            let sys = spec.build();
            let events = faults.events(&sys)?;
            let cfg = router
                .apply(SimConfig {
                    packet_flits: 16,
                    max_cycles: cycles,
                    stall_threshold: (cycles / 4).max(100),
                    retry: faults.retry(),
                    ..SimConfig::default()
                })
                .with_faults(events)
                .with_telemetry(Telemetry::recording());
            let workload = Workload::Bernoulli {
                injection_rate: load,
                pattern: DstPattern::Uniform,
                until_cycle: cycles * 3 / 4,
            };
            let res = if faults.heal {
                sys.simulate_healing(workload, cfg)
            } else {
                sys.simulate(workload, cfg)
            };
            let tel = res
                .telemetry
                .expect("trace always runs with telemetry recording");
            let rendered = match format {
                TraceFormat::Jsonl => to_jsonl(&tel),
                TraceFormat::Chrome => to_chrome_trace(&tel),
                TraceFormat::Summary => to_text_summary(&tel),
            };
            match out_path {
                Some(path) => {
                    std::fs::write(&path, rendered.as_bytes())
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    out.push_str(&format!("wrote {} bytes to {path}\n", rendered.len()));
                }
                None => out.push_str(&rendered),
            }
        }
        Command::Plan { cpus, bisection } => {
            let options = plan(Requirement {
                cpus,
                min_bisection_links: bisection,
                fanout: true,
            });
            if options.is_empty() {
                out.push_str("no fractahedral configuration satisfies the requirement\n");
            }
            for o in options {
                out.push_str(&format!(
                    "{:?} N{}: {} CPUs, {} routers ({} tetra + {} fan-out), {} cables, \
                     max delay {} hops, bisection {} links\n",
                    o.variant,
                    o.levels,
                    o.capacity,
                    o.total_routers(),
                    o.tetra_routers,
                    o.fanout_routers,
                    o.cables,
                    o.max_delay,
                    o.bisection
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_analyze() {
        let cmd = parse(&argv("analyze fat-fractahedron:2 mesh:6x6")).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze(vec![
                "fat-fractahedron:2".parse::<TopoSpec>().unwrap(),
                "mesh:6x6".parse::<TopoSpec>().unwrap()
            ])
        );
    }

    #[test]
    fn parse_simulate_flags() {
        let cmd = parse(&argv("simulate ring:4 --load 0.5 --cycles 1000")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                router: Default::default(),
                spec: "ring:4".parse::<TopoSpec>().unwrap(),
                load: 0.5,
                cycles: 1000,
                faults: FaultOpts::default(),
                telemetry: false,
                threads: 1,
                metrics: MetricsOpts::default(),
            }
        );
        let cmd = parse(&argv("simulate ring:4 --telemetry")).unwrap();
        let Command::Simulate { telemetry, .. } = cmd else {
            panic!("not simulate: {cmd:?}")
        };
        assert!(telemetry);
        let cmd = parse(&argv("simulate mesh:8x8 --threads 8")).unwrap();
        let Command::Simulate { threads, .. } = cmd else {
            panic!("not simulate: {cmd:?}")
        };
        assert_eq!(threads, 8);
        let cmd = parse(&argv("chaos mesh:3x3 --threads 4")).unwrap();
        let Command::Chaos { threads, .. } = cmd else {
            panic!("not chaos: {cmd:?}")
        };
        assert_eq!(threads, 4);
    }

    #[test]
    fn parse_router_flags() {
        let cmd = parse(&argv(
            "simulate torus:4x4 --vcs 2 --fifo-depth 2 --credit-delay 3",
        ))
        .unwrap();
        let Command::Simulate { spec, router, .. } = cmd else {
            panic!("not simulate: {cmd:?}")
        };
        // --vcs folds into the spec (the grammar's Auto discipline
        // resolves to dateline on a torus at build time).
        assert_eq!(spec.to_string(), "torus:4x4:vc2");
        assert_eq!(router.fifo_depth, Some(2));
        assert_eq!(router.credit_delay, 3);
        // `inf` restores the unbounded pre-credit model; an explicit
        // discipline lands in the spec suffix.
        let cmd = parse(&argv(
            "metrics mesh:4x4 --vcs 2 --vc-discipline ecube --fifo-depth inf",
        ))
        .unwrap();
        let Command::Metrics { spec, router, .. } = cmd else {
            panic!("not metrics: {cmd:?}")
        };
        assert_eq!(spec.to_string(), "mesh:4x4:vc2:ecube");
        assert_eq!(router.fifo_depth, Some(SimConfig::INFINITE_DEPTH));
        // --vc-discipline alone upgrades with the default of 2 VCs.
        let cmd = parse(&argv("chaos ring:6 --vc-discipline dateline --quick")).unwrap();
        let Command::Chaos { spec, router, .. } = cmd else {
            panic!("not chaos: {cmd:?}")
        };
        assert_eq!(spec.unwrap().to_string(), "ring:6:vc2:dateline");
        assert_eq!(router.fifo_depth, None);
        // And a literal VC spec takes flag overrides on top.
        let cmd = parse(&argv("trace ring:6:vc2 --vcs 4")).unwrap();
        let Command::Trace { spec, .. } = cmd else {
            panic!("not trace: {cmd:?}")
        };
        assert_eq!(spec.to_string(), "ring:6:vc4");
    }

    #[test]
    fn router_flag_errors() {
        // VC flags demand a VC-capable base...
        assert!(parse(&argv("simulate fat-fractahedron:1 --vcs 2")).is_err());
        // ...a known discipline...
        assert!(parse(&argv("simulate ring:6 --vc-discipline spiral")).is_err());
        // ...and flag-built combos pass through the grammar's checks
        // (e-cube classes can't break a torus's wrap cycles).
        assert!(parse(&argv("simulate torus:4x4 --vcs 2 --vc-discipline ecube")).is_err());
        assert!(parse(&argv("simulate ring:6 --fifo-depth 0")).is_err());
        assert!(parse(&argv("simulate ring:6 --fifo-depth many")).is_err());
        // Replay mode takes its router config from the scenario file.
        assert!(parse(&argv("chaos --replay x.json --fifo-depth 2")).is_err());
        assert!(parse(&argv("chaos --replay x.json --vcs 2")).is_err());
    }

    #[test]
    fn simulate_vc_torus_with_finite_fifos_runs_clean() {
        // End to end through the CLI: a dateline torus with 2-flit
        // FIFOs and a 1-cycle credit loop delivers without deadlock —
        // the configuration the raw torus tables would wedge under.
        let out = run(Command::Simulate {
            spec: "torus:3x3:vc2".parse().unwrap(),
            load: 0.1,
            cycles: 4_000,
            faults: FaultOpts::default(),
            telemetry: false,
            threads: 1,
            metrics: MetricsOpts::default(),
            router: RouterOpts {
                fifo_depth: Some(2),
                credit_delay: 1,
                ..Default::default()
            },
        })
        .unwrap();
        assert!(out.contains("no deadlock"), "{out}");
        assert!(out.contains("+ 2 VCs"), "{out}");
    }

    #[test]
    fn parse_trace_flags() {
        let cmd = parse(&argv(
            "trace fat-fractahedron:2 --format chrome --out /tmp/t.json --load 0.1 --cycles 800",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                router: Default::default(),
                spec: "fat-fractahedron:2".parse::<TopoSpec>().unwrap(),
                format: TraceFormat::Chrome,
                out: Some("/tmp/t.json".into()),
                load: 0.1,
                cycles: 800,
                faults: FaultOpts::default(),
            }
        );
        // Defaults: summary to stdout, 5k cycles.
        let cmd = parse(&argv("trace ring:4")).unwrap();
        let Command::Trace {
            format,
            out,
            cycles,
            ..
        } = cmd
        else {
            panic!("not trace: {cmd:?}")
        };
        assert_eq!(format, TraceFormat::Summary);
        assert_eq!(out, None);
        assert_eq!(cycles, 5_000);
        assert!(parse(&argv("trace ring:4 --format xml")).is_err());
        assert!(parse(&argv("trace ring:4 --out")).is_err());
        assert!(parse(&argv("trace")).is_err());
        // --telemetry is a simulate flag, --format a trace flag.
        assert!(parse(&argv("trace ring:4 --telemetry")).is_err());
        assert!(parse(&argv("simulate ring:4 --format chrome")).is_err());
    }

    #[test]
    fn parse_simulate_fault_flags() {
        let cmd = parse(&argv(
            "simulate fat-fractahedron:1 --kill-link 3 --kill-link 9 --kill-router 2 \
             --fault-at 500 --repair-at 900 --heal --ack-timeout 32 --max-retries 6 \
             --backoff-base 8 --jitter-seed 7",
        ))
        .unwrap();
        let Command::Simulate { faults, .. } = cmd else {
            panic!("not simulate: {cmd:?}")
        };
        assert_eq!(faults.kill_links, vec![3, 9]);
        assert_eq!(faults.kill_routers, vec![2]);
        assert_eq!(faults.fault_at, 500);
        assert_eq!(faults.repair_at, Some(900));
        assert!(faults.heal);
        assert_eq!(faults.ack_timeout, 32);
        assert_eq!(faults.max_retries, 6);
        assert_eq!(faults.backoff_base, 8);
        assert_eq!(faults.jitter_seed, 7);
        assert!(parse(&argv("simulate ring:4 --kill-link nope")).is_err());
    }

    #[test]
    fn parse_simulate_gray_fault_flags() {
        let cmd = parse(&argv(
            "simulate mesh:3x3 --flaky-link 3:50 --corrupt-link 7:120 --brownout 2:16:24 \
             --fault-at 100 --repair-at 900",
        ))
        .unwrap();
        let Command::Simulate { faults, .. } = cmd else {
            panic!("not simulate: {cmd:?}")
        };
        assert_eq!(faults.flaky_links, vec![(3, 50)]);
        assert_eq!(faults.corrupt_links, vec![(7, 120)]);
        assert_eq!(faults.brownouts, vec![(2, 16, 24)]);
        assert!(parse(&argv("simulate mesh:3x3 --flaky-link 3")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --flaky-link 3:2000")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --brownout 2:16")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --corrupt-link a:b")).is_err());
    }

    #[test]
    fn parse_chaos() {
        let cmd = parse(&argv(
            "chaos fat-fractahedron:2 --runs 256 --seed 42 --quick --disable-dedup \
             --out /tmp/sc.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                router: Default::default(),
                spec: Some("fat-fractahedron:2".parse::<TopoSpec>().unwrap()),
                runs: 256,
                seed: 42,
                quick: true,
                dedup: false,
                out: Some("/tmp/sc.json".into()),
                replay: None,
                threads: 1,
                trace_out: None,
            }
        );
        let cmd = parse(&argv("chaos --replay /tmp/sc.json")).unwrap();
        let Command::Chaos { spec, replay, .. } = cmd else {
            panic!("not chaos: {cmd:?}")
        };
        assert_eq!(spec, None);
        assert_eq!(replay, Some("/tmp/sc.json".into()));
        assert!(parse(&argv("chaos")).is_err());
        assert!(parse(&argv("chaos mesh:3x3 --runs nope")).is_err());
        assert!(parse(&argv("chaos mesh:3x3 --frobnicate")).is_err());
        // The spec can also arrive via --spec.
        let flagged = parse(&argv("chaos --spec mesh:6x6 --runs 32")).unwrap();
        let Command::Chaos { spec, runs, .. } = flagged else {
            panic!("not chaos")
        };
        assert_eq!(spec, Some("mesh:6x6".parse::<TopoSpec>().unwrap()));
        assert_eq!(runs, 32);
    }

    #[test]
    fn run_simulate_with_gray_faults_reports_recovery() {
        let faults = FaultOpts {
            flaky_links: vec![(0, 1000)],
            fault_at: 500,
            repair_at: Some(1_500),
            ..FaultOpts::default()
        };
        let out = run(Command::Simulate {
            router: Default::default(),
            spec: "fat-fractahedron:1".parse::<TopoSpec>().unwrap(),
            load: 0.1,
            cycles: 5_000,
            faults,
            telemetry: false,
            threads: 1,
            metrics: MetricsOpts::default(),
        })
        .unwrap();
        assert!(out.contains("faults: 1 applied"), "{out}");
        assert!(out.contains("post-fault delivery"), "{out}");
        // A 1000‰ flaky injection link drops worms; retries redeliver.
        assert!(!out.contains("DEADLOCK"), "{out}");
    }

    #[test]
    fn chaos_smoke_campaign_exits_zero() {
        let outcome = execute(Command::Chaos {
            router: Default::default(),
            spec: Some("fat-fractahedron:1".parse::<TopoSpec>().unwrap()),
            runs: 4,
            seed: 42,
            quick: true,
            dedup: true,
            out: None,
            replay: None,
            threads: 1,
            trace_out: None,
        })
        .unwrap();
        assert_eq!(outcome.code, 0, "{}", outcome.output);
        assert!(
            outcome.output.contains("0 violation(s)"),
            "{}",
            outcome.output
        );
    }

    #[test]
    fn chaos_disable_dedup_mints_and_replays_a_scenario() {
        let path = std::env::temp_dir().join("fractanet-chaos-regression.json");
        let path_s = path.to_str().unwrap().to_string();
        let minted = execute(Command::Chaos {
            router: Default::default(),
            spec: Some("fat-fractahedron:1".parse::<TopoSpec>().unwrap()),
            runs: 4,
            seed: 42,
            quick: true,
            dedup: false,
            out: Some(path_s.clone()),
            replay: None,
            threads: 1,
            trace_out: None,
        })
        .unwrap();
        assert_eq!(minted.code, 1, "{}", minted.output);
        assert!(minted.output.contains("exactly_once"), "{}", minted.output);
        // Replayed with suppression back on, the scenario must be clean.
        let replayed = execute(Command::Chaos {
            router: Default::default(),
            spec: None,
            runs: 4,
            seed: 42,
            quick: true,
            dedup: true,
            out: None,
            replay: Some(path_s.clone()),
            threads: 1,
            trace_out: None,
        })
        .unwrap();
        assert_eq!(replayed.code, 0, "{}", replayed.output);
        assert!(
            replayed.output.contains("replay clean"),
            "{}",
            replayed.output
        );
        // And with suppression off it must reproduce.
        let reproduced = execute(Command::Chaos {
            router: Default::default(),
            spec: None,
            runs: 4,
            seed: 42,
            quick: true,
            dedup: false,
            out: None,
            replay: Some(path_s),
            threads: 1,
            trace_out: None,
        })
        .unwrap();
        assert_eq!(reproduced.code, 1, "{}", reproduced.output);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --load abc")).is_err());
        assert!(parse(&argv("plan")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --load 1.5")).is_err());
    }

    #[test]
    fn parse_help_variants() {
        for s in ["help", "--help", "-h", ""] {
            assert_eq!(parse(&argv(s)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn run_analyze_produces_report_lines() {
        let out = run(Command::Analyze(vec!["tetrahedron"
            .parse::<TopoSpec>()
            .unwrap()]))
        .unwrap();
        assert!(out.contains("4 routers"));
        assert!(out.contains("deadlock-free"));
    }

    #[test]
    fn run_dot_produces_graphviz() {
        let out = run(Command::Dot {
            spec: "cluster:2".parse::<TopoSpec>().unwrap(),
            routers_only: true,
        })
        .unwrap();
        assert!(out.starts_with("graph"));
        assert!(out.contains(" -- "));
    }

    #[test]
    fn run_simulate_reports_deadlock_on_ring() {
        let out = run(Command::Simulate {
            router: Default::default(),
            spec: "ring:4".parse::<TopoSpec>().unwrap(),
            load: 0.4,
            cycles: 4_000,
            faults: FaultOpts::default(),
            telemetry: false,
            threads: 1,
            metrics: MetricsOpts::default(),
        })
        .unwrap();
        // Minimal ring routing is deadlock-prone; at this load the Fig 1
        // pattern eventually forms.
        assert!(out.contains("CAN DEADLOCK"), "{out}");
    }

    #[test]
    fn run_simulate_with_fault_reports_recovery() {
        let faults = FaultOpts {
            kill_links: vec![0],
            fault_at: 1_000,
            heal: true,
            ..FaultOpts::default()
        };
        let out = run(Command::Simulate {
            router: Default::default(),
            spec: "fat-fractahedron:1".parse::<TopoSpec>().unwrap(),
            load: 0.1,
            cycles: 6_000,
            faults,
            telemetry: false,
            threads: 1,
            metrics: MetricsOpts::default(),
        })
        .unwrap();
        assert!(out.contains("faults: 1 applied"), "{out}");
        assert!(out.contains("post-fault delivery"), "{out}");
    }

    #[test]
    fn run_simulate_rejects_out_of_range_components() {
        for (links, routers) in [(vec![100_000], vec![]), (vec![], vec![100_000])] {
            let faults = FaultOpts {
                kill_links: links,
                kill_routers: routers,
                ..FaultOpts::default()
            };
            let err = run(Command::Simulate {
                router: Default::default(),
                spec: "ring:4".parse::<TopoSpec>().unwrap(),
                load: 0.1,
                cycles: 1_000,
                faults,
                telemetry: false,
                threads: 1,
                metrics: MetricsOpts::default(),
            })
            .unwrap_err();
            assert!(err.0.contains("out of range"), "{err}");
        }
    }

    #[test]
    fn run_trace_chrome_emits_complete_spans() {
        let out = run(Command::Trace {
            router: Default::default(),
            spec: "fat-fractahedron:1".parse::<TopoSpec>().unwrap(),
            format: TraceFormat::Chrome,
            out: None,
            load: 0.1,
            cycles: 1_000,
            faults: FaultOpts::default(),
        })
        .unwrap();
        assert!(out.starts_with("{\"traceEvents\":["), "{out}");
        assert!(out.contains("\"ph\":\"X\""), "{out}");
        assert!(out.contains("\"name\":\"simulation\""), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn run_trace_jsonl_and_summary() {
        let mk = |format| {
            run(Command::Trace {
                router: Default::default(),
                spec: "tetrahedron".parse::<TopoSpec>().unwrap(),
                format,
                out: None,
                load: 0.1,
                cycles: 500,
                faults: FaultOpts::default(),
            })
            .unwrap()
        };
        let jsonl = mk(TraceFormat::Jsonl);
        assert!(jsonl
            .lines()
            .next()
            .unwrap()
            .starts_with("{\"type\":\"meta\""));
        assert!(jsonl.contains("\"kind\":\"simulation\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"injected\""), "{jsonl}");
        let summary = mk(TraceFormat::Summary);
        assert!(summary.contains("utilization histogram"), "{summary}");
        assert!(summary.contains("busiest channels"), "{summary}");
    }

    #[test]
    fn run_trace_out_writes_file() {
        let path = std::env::temp_dir().join("fractanet-trace-test.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        let out = run(Command::Trace {
            router: Default::default(),
            spec: "tetrahedron".parse::<TopoSpec>().unwrap(),
            format: TraceFormat::Jsonl,
            out: Some(path_s.clone()),
            load: 0.1,
            cycles: 500,
            faults: FaultOpts::default(),
        })
        .unwrap();
        assert!(out.contains(&path_s), "{out}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("{\"type\":\"meta\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_simulate_telemetry_appends_summary() {
        let cmd = |telemetry| Command::Simulate {
            router: Default::default(),
            spec: "tetrahedron".parse::<TopoSpec>().unwrap(),
            load: 0.1,
            cycles: 1_000,
            faults: FaultOpts::default(),
            telemetry,
            threads: 1,
            metrics: MetricsOpts::default(),
        };
        let plain = run(cmd(false)).unwrap();
        assert!(!plain.contains("utilization histogram"), "{plain}");
        let with_tel = run(cmd(true)).unwrap();
        assert!(with_tel.contains("utilization histogram"), "{with_tel}");
        assert!(with_tel.contains("simulated"), "{with_tel}");
    }

    #[test]
    fn run_plan_lists_options() {
        let out = run(Command::Plan {
            cpus: 128,
            bisection: 1,
        })
        .unwrap();
        assert!(out.contains("Thin N2"));
        assert!(out.contains("Fat N2"));
        let none = run(Command::Plan {
            cpus: 128,
            bisection: 100_000,
        })
        .unwrap();
        assert!(none.contains("no fractahedral configuration"));
    }

    #[test]
    fn run_help_prints_usage() {
        assert!(run(Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parse_lint() {
        let cmd = parse(&argv("lint fat-fractahedron:2 mesh:6x6 --json")).unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                specs: vec![
                    "fat-fractahedron:2".parse::<TopoSpec>().unwrap(),
                    "mesh:6x6".parse::<TopoSpec>().unwrap()
                ],
                json: true,
                exact: false,
                synthesize: false,
            }
        );
        assert!(parse(&argv("lint")).is_err());
        assert!(parse(&argv("lint ring:4 --frobnicate")).is_err());
        assert_eq!(
            parse(&argv("lint ring:4 --exact --synthesize")).unwrap(),
            Command::Lint {
                specs: vec!["ring:4".parse::<TopoSpec>().unwrap()],
                json: false,
                exact: true,
                synthesize: true,
            }
        );
    }

    #[test]
    fn lint_clean_topology_exits_zero() {
        let outcome = execute(Command::Lint {
            specs: vec!["fat-fractahedron:2".parse::<TopoSpec>().unwrap()],
            json: false,
            exact: false,
            synthesize: false,
        })
        .unwrap();
        assert_eq!(outcome.code, 0, "{}", outcome.output);
        assert!(outcome.output.contains("0 error(s)"), "{}", outcome.output);
    }

    #[test]
    fn lint_json_is_machine_readable() {
        let outcome = execute(Command::Lint {
            specs: vec!["fat-fractahedron:2".parse::<TopoSpec>().unwrap()],
            json: true,
            exact: false,
            synthesize: false,
        })
        .unwrap();
        assert_eq!(outcome.code, 0);
        let text = outcome.output.trim();
        assert!(text.starts_with('[') && text.ends_with(']'), "{text}");
        assert!(
            text.contains("\"subject\":\"fat-fractahedron N2\"") || text.contains("\"subject\"")
        );
        assert!(text.contains("\"clean\":true"), "{text}");
    }

    #[test]
    fn lint_fig1_ring_exits_nonzero_with_cycle_diagnostic() {
        // The acceptance gate: the Fig 1 unrestricted ring must fail
        // with an L3 diagnostic naming channels and a disable set.
        let outcome = execute(Command::Lint {
            specs: vec!["ring:4".parse::<TopoSpec>().unwrap()],
            json: false,
            exact: false,
            synthesize: false,
        })
        .unwrap();
        assert_eq!(outcome.code, 1, "{}", outcome.output);
        assert!(outcome.output.contains("L3"), "{}", outcome.output);
        assert!(
            outcome.output.contains("dependency cycle"),
            "{}",
            outcome.output
        );
        assert!(outcome.output.contains("disable"), "{}", outcome.output);
    }

    #[test]
    fn lint_multiple_specs_aggregates() {
        let outcome = execute(Command::Lint {
            specs: vec![
                "tetrahedron".parse::<TopoSpec>().unwrap(),
                "ring:4".parse::<TopoSpec>().unwrap(),
            ],
            json: false,
            exact: false,
            synthesize: false,
        })
        .unwrap();
        assert_eq!(outcome.code, 1);
        assert!(outcome.output.contains("2 configuration(s)"));
    }

    #[test]
    fn lint_exact_synthesize_reports_certificate() {
        // Exact mode on the Fig 1 ring: the L3 suggestion pins the
        // proven-minimal disable count for the installed tables (1
        // turn hits the single wrap cycle), L6 reports the gap against
        // the free-routing synthesis (0 disables), and `--synthesize`
        // replays the certificate.
        let outcome = execute(Command::Lint {
            specs: vec!["ring:4".parse::<TopoSpec>().unwrap()],
            json: false,
            exact: true,
            synthesize: true,
        })
        .unwrap();
        assert_eq!(outcome.code, 1, "{}", outcome.output);
        assert!(
            outcome
                .output
                .contains("disable 1 turn(s) (proven minimal over the 1 enumerated cycle(s))"),
            "{}",
            outcome.output
        );
        assert!(outcome.output.contains("L6"), "{}", outcome.output);
        assert!(
            outcome.output.contains("certificate replay OK (12 pairs)"),
            "{}",
            outcome.output
        );
        assert!(
            outcome.output.contains("synthesize: 0 turn disable(s)"),
            "{}",
            outcome.output
        );
    }

    #[test]
    fn lint_exact_synthesize_json_wraps_lint_and_synthesis() {
        let outcome = execute(Command::Lint {
            specs: vec!["ring:4".parse::<TopoSpec>().unwrap()],
            json: true,
            exact: true,
            synthesize: true,
        })
        .unwrap();
        let text = outcome.output.trim();
        assert!(text.starts_with('['), "{text}");
        assert!(text.contains("\"lint\":"), "{text}");
        assert!(text.contains("\"synthesis\":"), "{text}");
        assert!(text.contains("\"certificate\":"), "{text}");
        assert!(text.contains("\"replay_ok\":true"), "{text}");
        assert!(text.contains("\"rank\":"), "{text}");
    }

    #[test]
    fn lint_exact_clean_spec_stays_clean() {
        // L6 is Info severity: exact mode must not fail a spec whose
        // installed tables already certify.
        let outcome = execute(Command::Lint {
            specs: vec!["fat-fractahedron:1".parse::<TopoSpec>().unwrap()],
            json: false,
            exact: true,
            synthesize: false,
        })
        .unwrap();
        assert_eq!(outcome.code, 0, "{}", outcome.output);
        assert!(outcome.output.contains("L6"), "{}", outcome.output);
    }

    #[test]
    fn parse_metrics_flags() {
        let cmd = parse(&argv(
            "simulate ring:4 --metrics-every 50 --metrics-out /tmp/m.jsonl --slo-deadline 800",
        ))
        .unwrap();
        let Command::Simulate { metrics, .. } = cmd else {
            panic!("not simulate: {cmd:?}")
        };
        assert_eq!(metrics.every, Some(50));
        assert_eq!(metrics.out, Some("/tmp/m.jsonl".into()));
        assert_eq!(metrics.deadline, Some(800));
        // The metrics subcommand: prom by default, --out carries the
        // export path, fault flags ride along.
        let cmd = parse(&argv(
            "metrics mesh:3x3 --load 0.1 --cycles 900 --format jsonl --out /tmp/p.jsonl \
             --metrics-every 30 --kill-link 2 --fault-at 100",
        ))
        .unwrap();
        let Command::Metrics {
            format,
            metrics,
            faults,
            cycles,
            ..
        } = cmd
        else {
            panic!("not metrics: {cmd:?}")
        };
        assert_eq!(format, MetricsFormat::Jsonl);
        assert_eq!(metrics.out, Some("/tmp/p.jsonl".into()));
        assert_eq!(metrics.every, Some(30));
        assert_eq!(faults.kill_links, vec![2]);
        assert_eq!(cycles, 900);
        // Flag gating: metrics flags are not trace flags, --telemetry
        // is simulate-only, --format prom is metrics-only.
        assert!(parse(&argv("trace ring:4 --metrics-every 50")).is_err());
        assert!(parse(&argv("metrics ring:4 --telemetry")).is_err());
        assert!(parse(&argv("metrics ring:4 --format chrome")).is_err());
        assert!(parse(&argv("simulate ring:4 --format prom")).is_err());
        assert!(parse(&argv("metrics")).is_err());
    }

    #[test]
    fn parse_replay_flags() {
        assert_eq!(
            parse(&argv("replay /tmp/t.jsonl --threads 4")).unwrap(),
            Command::Replay {
                path: "/tmp/t.jsonl".into(),
                threads: Some(4),
            }
        );
        assert_eq!(
            parse(&argv("replay trace.jsonl")).unwrap(),
            Command::Replay {
                path: "trace.jsonl".into(),
                threads: None,
            }
        );
        assert!(parse(&argv("replay")).is_err());
        assert!(parse(&argv("replay --threads 4")).is_err());
        assert!(parse(&argv("replay a.jsonl b.jsonl")).is_err());
        // --trace-out is a chaos replay flag only.
        assert!(parse(&argv("chaos mesh:3x3 --trace-out /tmp/t.jsonl")).is_err());
        let cmd = parse(&argv("chaos --replay sc.json --trace-out /tmp/t.jsonl")).unwrap();
        let Command::Chaos { trace_out, .. } = cmd else {
            panic!("not chaos: {cmd:?}")
        };
        assert_eq!(trace_out, Some("/tmp/t.jsonl".into()));
    }

    #[test]
    fn simulate_metrics_out_roundtrips_through_replay() {
        // E16's blocked-head pileup: the Fig 1 ring at high load piles
        // packets up far past a tight delivery deadline, so the flight
        // recorder must dump an incident bundle next to the trace, and
        // the trace must replay exactly.
        let path = std::env::temp_dir().join("fractanet-metrics-e16.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        let out = run(Command::Simulate {
            router: Default::default(),
            spec: "ring:4".parse::<TopoSpec>().unwrap(),
            load: 0.6,
            cycles: 4_000,
            faults: FaultOpts::default(),
            telemetry: false,
            threads: 1,
            metrics: MetricsOpts {
                every: Some(100),
                out: Some(path_s.clone()),
                deadline: Some(32),
            },
        })
        .unwrap();
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("SLO:"), "{out}");
        assert!(out.contains("anomaly @"), "{out}");
        assert!(out.contains("wrote incident bundle"), "{out}");
        let bundle_path = incident_path(&path_s);
        let bundle = std::fs::read_to_string(&bundle_path).unwrap();
        assert!(bundle.starts_with("{\"traceEvents\":["), "{bundle}");
        assert!(bundle.contains("\"ph\":\"i\""), "{bundle}");
        assert!(bundle.contains("slo_breach"), "{bundle}");
        // The recorded trace replays exactly, at an overridden width
        // too.
        for threads in [None, Some(2)] {
            let outcome = execute(Command::Replay {
                path: path_s.clone(),
                threads,
            })
            .unwrap();
            assert_eq!(outcome.code, 0, "{}", outcome.output);
            assert!(
                outcome.output.contains("replay exact"),
                "{}",
                outcome.output
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bundle_path).ok();
    }

    #[test]
    fn metrics_command_exports_prometheus() {
        let out = run(Command::Metrics {
            router: Default::default(),
            spec: "tetrahedron".parse::<TopoSpec>().unwrap(),
            load: 0.1,
            cycles: 1_000,
            faults: FaultOpts::default(),
            threads: 1,
            format: MetricsFormat::Prometheus,
            metrics: MetricsOpts::default(),
        })
        .unwrap();
        assert!(out.contains("fractanet_generated_total"), "{out}");
        assert!(out.contains("topology=\"clique 4x6p\""), "{out}");
        assert!(out.contains("fractanet_latency_cycles"), "{out}");
        assert!(out.contains("fractanet_slo_within_deadline_ratio"), "{out}");
    }

    #[test]
    fn replay_detects_a_tampered_trace() {
        let path = std::env::temp_dir().join("fractanet-metrics-tamper.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        run(Command::Metrics {
            router: Default::default(),
            spec: "tetrahedron".parse::<TopoSpec>().unwrap(),
            load: 0.1,
            cycles: 1_000,
            faults: FaultOpts::default(),
            threads: 1,
            format: MetricsFormat::Jsonl,
            metrics: MetricsOpts {
                every: Some(100),
                out: Some(path_s.clone()),
                deadline: None,
            },
        })
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = parse_trace(&text).unwrap();
        let tampered = text.replace(
            &format!("\"delivered\":{}", trace.expected.delivered),
            &format!("\"delivered\":{}", trace.expected.delivered + 1),
        );
        std::fs::write(&path, tampered.as_bytes()).unwrap();
        let outcome = execute(Command::Replay {
            path: path_s,
            threads: None,
        })
        .unwrap();
        assert_eq!(outcome.code, 1, "{}", outcome.output);
        assert!(outcome.output.contains("MISMATCH"), "{}", outcome.output);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_trace_out_mints_a_replayable_incident() {
        // Mint a dedup-off exactly-once scenario, then replay it with
        // --trace-out: the incident's metrics trace must itself replay
        // exactly through `fractanet replay`.
        let sc_path = std::env::temp_dir().join("fractanet-chaos-incident-sc.json");
        let sc_s = sc_path.to_str().unwrap().to_string();
        let tr_path = std::env::temp_dir().join("fractanet-chaos-incident.jsonl");
        let tr_s = tr_path.to_str().unwrap().to_string();
        let minted = execute(Command::Chaos {
            router: Default::default(),
            spec: Some("fat-fractahedron:1".parse::<TopoSpec>().unwrap()),
            runs: 4,
            seed: 42,
            quick: true,
            dedup: false,
            out: Some(sc_s.clone()),
            replay: None,
            threads: 1,
            trace_out: None,
        })
        .unwrap();
        assert_eq!(minted.code, 1, "{}", minted.output);
        let replayed = execute(Command::Chaos {
            router: Default::default(),
            spec: None,
            runs: 4,
            seed: 42,
            quick: true,
            dedup: false,
            out: None,
            replay: Some(sc_s.clone()),
            threads: 1,
            trace_out: Some(tr_s.clone()),
        })
        .unwrap();
        assert_eq!(replayed.code, 1, "{}", replayed.output);
        assert!(
            replayed.output.contains("wrote metrics trace"),
            "{}",
            replayed.output
        );
        assert!(
            replayed.output.contains("wrote incident bundle"),
            "{}",
            replayed.output
        );
        let bundle_path = incident_path(&tr_s);
        let bundle = std::fs::read_to_string(&bundle_path).unwrap();
        assert!(bundle.contains("invariant_violation"), "{bundle}");
        let outcome = execute(Command::Replay {
            path: tr_s,
            threads: None,
        })
        .unwrap();
        assert_eq!(outcome.code, 0, "{}", outcome.output);
        assert!(
            outcome.output.contains("replay exact"),
            "{}",
            outcome.output
        );
        std::fs::remove_file(&sc_path).ok();
        std::fs::remove_file(&tr_path).ok();
        std::fs::remove_file(&bundle_path).ok();
    }

    #[test]
    fn run_on_lint_matches_execute_output() {
        let cmd = Command::Lint {
            specs: vec!["tetrahedron".parse::<TopoSpec>().unwrap()],
            json: false,
            exact: false,
            synthesize: false,
        };
        assert_eq!(run(cmd.clone()).unwrap(), execute(cmd).unwrap().output);
    }
}
