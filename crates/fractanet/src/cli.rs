//! Command-line interface plumbing for the `fractanet` binary.
//!
//! Kept as a library module so the parsing and command logic are unit
//! tested; `src/bin/fractanet.rs` is a thin shell around [`run`].
//!
//! ```text
//! fractanet analyze fat-fractahedron:2
//! fractanet analyze mesh:6x6 fattree:64:4:2 fat-fractahedron:2
//! fractanet dot fat-fractahedron:1 --routers-only
//! fractanet simulate fat-fractahedron:2 --load 0.3 --cycles 10000
//! fractanet plan --cpus 1024 --bisection 16
//! ```

use crate::sizing::{plan, Requirement};
use crate::System;
use fractanet_graph::viz;
use fractanet_sim::{DstPattern, SimConfig, Workload};
use std::fmt;

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Analyze one or more topologies.
    Analyze(Vec<TopoSpec>),
    /// Emit Graphviz for a topology.
    Dot {
        /// What to render.
        spec: TopoSpec,
        /// Hide end nodes.
        routers_only: bool,
    },
    /// Simulate uniform traffic on a topology.
    Simulate {
        /// What to simulate.
        spec: TopoSpec,
        /// Offered load in flits/node/cycle.
        load: f64,
        /// Cycle budget.
        cycles: u64,
    },
    /// Plan a fractahedral installation.
    Plan {
        /// Required CPUs.
        cpus: usize,
        /// Required bisection links.
        bisection: u64,
    },
    /// Print usage.
    Help,
}

/// A topology specifier, e.g. `fat-fractahedron:2` or `mesh:6x6`.
#[derive(Clone, Debug, PartialEq)]
pub struct TopoSpec(pub String);

/// CLI errors, with a message suitable for stderr.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
fractanet — fractahedral topologies & deadlock-free ServerNet routing

USAGE:
  fractanet analyze <topology>...       hops/contention/bisection/deadlock report
  fractanet dot <topology> [--routers-only]
                                        Graphviz on stdout
  fractanet simulate <topology> [--load <f>] [--cycles <n>]
                                        uniform-traffic wormhole simulation
  fractanet plan --cpus <n> [--bisection <links>]
                                        fractahedral capacity planning
  fractanet help

TOPOLOGIES:
  fat-fractahedron:<levels>             e.g. fat-fractahedron:2  (the paper's Fig 7 at 2)
  thin-fractahedron:<levels>[:fanout]   e.g. thin-fractahedron:3:fanout (1024 CPUs)
  mesh:<cols>x<rows>                    e.g. mesh:6x6            (§3.1)
  fattree:<nodes>:<down>:<up>           e.g. fattree:64:4:2      (Fig 6)
  hypercube:<dim>                       e.g. hypercube:3         (Fig 2; dim <= 5 on 6 ports)
  ring:<n>                              e.g. ring:4              (Fig 1 — deadlock-prone!)
  tetrahedron                           (Fig 4)
  cluster:<m>                           e.g. cluster:3           (Fig 3)
  bintree:<depth>:<nodes-per-leaf>      e.g. bintree:3:2
";

impl TopoSpec {
    /// Builds the system this spec describes.
    pub fn build(&self) -> Result<System, CliError> {
        let parts: Vec<&str> = self.0.split(':').collect();
        let bad = || CliError(format!("bad topology spec '{}'\n\n{USAGE}", self.0));
        let int = |s: &str| s.parse::<usize>().map_err(|_| bad());
        match parts[0] {
            "fat-fractahedron" if parts.len() == 2 => {
                let n = int(parts[1])?;
                if !(1..=4).contains(&n) {
                    return Err(CliError("levels must be 1..=4".into()));
                }
                Ok(System::fat_fractahedron(n))
            }
            "thin-fractahedron" if parts.len() == 2 || parts.len() == 3 => {
                let n = int(parts[1])?;
                if !(1..=4).contains(&n) {
                    return Err(CliError("levels must be 1..=4".into()));
                }
                let fanout = parts.get(2) == Some(&"fanout");
                if parts.len() == 3 && !fanout {
                    return Err(bad());
                }
                Ok(System::thin_fractahedron(n, fanout))
            }
            "mesh" if parts.len() == 2 => {
                let dims: Vec<&str> = parts[1].split('x').collect();
                if dims.len() != 2 {
                    return Err(bad());
                }
                Ok(System::mesh(int(dims[0])?, int(dims[1])?))
            }
            "fattree" if parts.len() == 4 => {
                Ok(System::fat_tree(int(parts[1])?, int(parts[2])?, int(parts[3])?))
            }
            "hypercube" if parts.len() == 2 => {
                let d = int(parts[1])? as u32;
                if !(1..=5).contains(&d) {
                    return Err(CliError("hypercube dim must be 1..=5 on 6-port routers".into()));
                }
                Ok(System::hypercube(d, 6))
            }
            "ring" if parts.len() == 2 => Ok(System::ring(int(parts[1])?)),
            "tetrahedron" if parts.len() == 1 => Ok(System::tetrahedron()),
            "cluster" if parts.len() == 2 => {
                let m = int(parts[1])?;
                if !(1..=6).contains(&m) {
                    return Err(CliError("cluster size must be 1..=6 on 6-port routers".into()));
                }
                Ok(System::cluster(m))
            }
            "bintree" if parts.len() == 3 => {
                Ok(System::binary_tree(int(parts[1])? as u32, int(parts[2])?))
            }
            _ => Err(bad()),
        }
    }
}

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("analyze") => {
            let specs: Vec<TopoSpec> = it.map(|a| TopoSpec(a.clone())).collect();
            if specs.is_empty() {
                return Err(CliError(format!("analyze needs a topology\n\n{USAGE}")));
            }
            Ok(Command::Analyze(specs))
        }
        Some("dot") => {
            let mut spec = None;
            let mut routers_only = false;
            for a in it {
                match a.as_str() {
                    "--routers-only" => routers_only = true,
                    other if spec.is_none() => spec = Some(TopoSpec(other.to_string())),
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let spec = spec.ok_or_else(|| CliError(format!("dot needs a topology\n\n{USAGE}")))?;
            Ok(Command::Dot { spec, routers_only })
        }
        Some("simulate") => {
            let mut spec = None;
            let mut load = 0.2f64;
            let mut cycles = 20_000u64;
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--load" => {
                        load = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError("--load needs a number".into()))?;
                    }
                    "--cycles" => {
                        cycles = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError("--cycles needs an integer".into()))?;
                    }
                    other if spec.is_none() => spec = Some(TopoSpec(other.to_string())),
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let spec =
                spec.ok_or_else(|| CliError(format!("simulate needs a topology\n\n{USAGE}")))?;
            if !(0.0..=1.0).contains(&load) {
                return Err(CliError("--load must be within 0..=1 flits/node/cycle".into()));
            }
            Ok(Command::Simulate { spec, load, cycles })
        }
        Some("plan") => {
            let mut cpus = None;
            let mut bisection = 1u64;
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--cpus" => {
                        cpus = it.next().and_then(|v| v.parse().ok());
                        if cpus.is_none() {
                            return Err(CliError("--cpus needs an integer".into()));
                        }
                    }
                    "--bisection" => {
                        bisection = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError("--bisection needs an integer".into()))?;
                    }
                    other => return Err(CliError(format!("unexpected argument '{other}'"))),
                }
            }
            let cpus = cpus.ok_or_else(|| CliError(format!("plan needs --cpus\n\n{USAGE}")))?;
            Ok(Command::Plan { cpus, bisection })
        }
        Some(other) => Err(CliError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

/// Executes a command, writing human output to the returned string.
pub fn run(cmd: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Analyze(specs) => {
            for spec in specs {
                let sys = spec.build()?;
                out.push_str(&format!("{}\n", sys.analyze()));
            }
        }
        Command::Dot { spec, routers_only } => {
            let sys = spec.build()?;
            let dot = if routers_only {
                viz::routers_only_dot(sys.net(), &sys.name())
            } else {
                viz::to_dot(
                    sys.net(),
                    &viz::DotOptions { name: sys.name(), ..viz::DotOptions::default() },
                )
            };
            out.push_str(&dot);
        }
        Command::Simulate { spec, load, cycles } => {
            let sys = spec.build()?;
            let report = sys.analyze();
            let cfg = SimConfig {
                packet_flits: 16,
                max_cycles: cycles,
                stall_threshold: (cycles / 4).max(100),
                warmup_cycles: cycles / 10,
                ..SimConfig::default()
            };
            let res = sys.simulate(
                Workload::Bernoulli {
                    injection_rate: load,
                    pattern: DstPattern::Uniform,
                    until_cycle: cycles * 3 / 4,
                },
                cfg,
            );
            out.push_str(&format!("{report}\n"));
            out.push_str(&format!(
                "simulated {} cycles at load {load}: {}/{} packets delivered, \
                 avg latency {:.1} cy, p95 {} cy, throughput {:.3} flits/node/cy\n",
                res.cycles, res.delivered, res.generated, res.avg_latency, res.p95_latency,
                res.throughput
            ));
            match res.deadlock {
                Some(dl) => out.push_str(&format!(
                    "DEADLOCK at cycle {} ({} packets stuck, {}-channel circular wait)\n",
                    dl.cycle,
                    dl.stuck_packets,
                    dl.cycle_channels.len()
                )),
                None => out.push_str("no deadlock\n"),
            }
        }
        Command::Plan { cpus, bisection } => {
            let options = plan(Requirement { cpus, min_bisection_links: bisection, fanout: true });
            if options.is_empty() {
                out.push_str("no fractahedral configuration satisfies the requirement\n");
            }
            for o in options {
                out.push_str(&format!(
                    "{:?} N{}: {} CPUs, {} routers ({} tetra + {} fan-out), {} cables, \
                     max delay {} hops, bisection {} links\n",
                    o.variant,
                    o.levels,
                    o.capacity,
                    o.total_routers(),
                    o.tetra_routers,
                    o.fanout_routers,
                    o.cables,
                    o.max_delay,
                    o.bisection
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_analyze() {
        let cmd = parse(&argv("analyze fat-fractahedron:2 mesh:6x6")).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze(vec![
                TopoSpec("fat-fractahedron:2".into()),
                TopoSpec("mesh:6x6".into())
            ])
        );
    }

    #[test]
    fn parse_simulate_flags() {
        let cmd = parse(&argv("simulate ring:4 --load 0.5 --cycles 1000")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate { spec: TopoSpec("ring:4".into()), load: 0.5, cycles: 1000 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --load abc")).is_err());
        assert!(parse(&argv("plan")).is_err());
        assert!(parse(&argv("simulate mesh:3x3 --load 1.5")).is_err());
    }

    #[test]
    fn parse_help_variants() {
        for s in ["help", "--help", "-h", ""] {
            assert_eq!(parse(&argv(s)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn specs_build_every_topology() {
        for s in [
            "fat-fractahedron:1",
            "thin-fractahedron:2",
            "thin-fractahedron:1:fanout",
            "mesh:3x3",
            "fattree:16:4:2",
            "hypercube:3",
            "ring:5",
            "tetrahedron",
            "cluster:3",
            "bintree:3:2",
        ] {
            assert!(TopoSpec(s.into()).build().is_ok(), "{s}");
        }
    }

    #[test]
    fn specs_reject_malformed() {
        for s in [
            "fat-fractahedron",
            "fat-fractahedron:9",
            "mesh:6",
            "mesh:ax3",
            "fattree:64:4",
            "hypercube:6",
            "cluster:7",
            "thin-fractahedron:1:bogus",
            "nonsense:1",
        ] {
            assert!(TopoSpec(s.into()).build().is_err(), "{s}");
        }
    }

    #[test]
    fn run_analyze_produces_report_lines() {
        let out =
            run(Command::Analyze(vec![TopoSpec("tetrahedron".into())])).unwrap();
        assert!(out.contains("4 routers"));
        assert!(out.contains("deadlock-free"));
    }

    #[test]
    fn run_dot_produces_graphviz() {
        let out = run(Command::Dot {
            spec: TopoSpec("cluster:2".into()),
            routers_only: true,
        })
        .unwrap();
        assert!(out.starts_with("graph"));
        assert!(out.contains(" -- "));
    }

    #[test]
    fn run_simulate_reports_deadlock_on_ring() {
        let out = run(Command::Simulate {
            spec: TopoSpec("ring:4".into()),
            load: 0.4,
            cycles: 4_000,
        })
        .unwrap();
        // Minimal ring routing is deadlock-prone; at this load the Fig 1
        // pattern eventually forms.
        assert!(out.contains("CAN DEADLOCK"), "{out}");
    }

    #[test]
    fn run_plan_lists_options() {
        let out = run(Command::Plan { cpus: 128, bisection: 1 }).unwrap();
        assert!(out.contains("Thin N2"));
        assert!(out.contains("Fat N2"));
        let none = run(Command::Plan { cpus: 128, bisection: 100_000 }).unwrap();
        assert!(none.contains("no fractahedral configuration"));
    }

    #[test]
    fn run_help_prints_usage() {
        assert!(run(Command::Help).unwrap().contains("USAGE"));
    }
}
