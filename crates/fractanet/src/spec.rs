//! Textual topology specifiers — the `mesh:6x6` / `fattree:64:4:2`
//! mini-language shared by the CLI, the experiment binaries, and the
//! benches.
//!
//! A [`TopoSpec`] is a *parsed, validated* description of one paper
//! topology. Parsing ([`FromStr`]) and rendering ([`Display`]) round
//! trip: `spec.to_string().parse() == Ok(spec)` for every value, so a
//! spec can travel through argv, config files, and bench IDs without
//! losing information.
//!
//! ```
//! use fractanet::TopoSpec;
//!
//! let spec: TopoSpec = "fat-fractahedron:2".parse().unwrap();
//! let sys = spec.build();
//! assert_eq!(sys.end_nodes().len(), 64);
//! assert_eq!(spec.to_string(), "fat-fractahedron:2");
//! ```

use crate::System;
use std::fmt;
use std::str::FromStr;

/// A parsed topology specifier, e.g. `fat-fractahedron:2` or
/// `mesh:6x6`. See the module docs for the grammar; invalid sizes
/// (levels outside `1..=5`, hypercubes above dim 8, clusters above 6
/// routers) are rejected at parse time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoSpec {
    /// `fat-fractahedron:<levels>` — the paper's Fig 7 network at 2.
    FatFractahedron {
        /// Recursion levels, `1..=5`.
        levels: usize,
    },
    /// `thin-fractahedron:<levels>[:fanout]` — Table 1's thin variant,
    /// optionally with the CPU-pair fan-out router level.
    ThinFractahedron {
        /// Recursion levels, `1..=5`.
        levels: usize,
        /// Whether the fan-out level is present.
        fanout: bool,
    },
    /// `mesh:<cols>x<rows>` — §3.1's mesh, 2 nodes per 6-port router.
    Mesh {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
    },
    /// `torus:<cols>x<rows>` — the mesh with wraparound cables, 2
    /// nodes per 6-port router. Note the canonical XY routing is
    /// deadlock-*prone* on its own (the wrap links close a Fig 1 cycle
    /// in each dimension); add `:vc2` for the dateline fix.
    Torus {
        /// Columns (≥ 3).
        cols: usize,
        /// Rows (≥ 3).
        rows: usize,
    },
    /// `<base>:vc<K>[:dateline|:ecube]` — a VC-capable base topology
    /// with `K` virtual channels per physical channel and a Dally–Seitz
    /// VC discipline (`ring:6:vc2`, `torus:8x8:vc2:dateline`,
    /// `mesh:6x6:vc2:ecube`). Omitting the discipline picks the
    /// canonical one for the base.
    Vc {
        /// The underlying topology.
        base: VcBase,
        /// Virtual channels per physical channel, `1..=8`.
        vcs: u8,
        /// The VC ordering discipline.
        disc: VcDisc,
    },
    /// `fattree:<nodes>:<down>:<up>` — the Fig 6 fat tree.
    FatTree {
        /// End nodes.
        nodes: usize,
        /// Down-links per router.
        down: usize,
        /// Up-links per router.
        up: usize,
    },
    /// `hypercube:<dim>` — Fig 2; dim `1..=8` (routers grow past 6
    /// ports above dim 5).
    Hypercube {
        /// Cube dimension.
        dim: u32,
    },
    /// `ring:<n>` — Fig 1's ring (deadlock-prone with minimal routing).
    Ring {
        /// Routers on the ring.
        n: usize,
    },
    /// `tetrahedron` — Fig 4 (4 routers, 12 nodes).
    Tetrahedron,
    /// `cluster:<m>` — the Fig 3 fully-connected cluster, `1..=6`.
    Cluster {
        /// Routers in the cluster.
        m: usize,
    },
    /// `bintree:<depth>:<nodes-per-leaf>` — §2's binary tree.
    BinTree {
        /// Router levels.
        depth: u32,
        /// End nodes per leaf router.
        nodes_per_leaf: usize,
    },
}

/// The topologies a `:vc<K>` suffix applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcBase {
    /// `ring:<n>` under minimal bidirectional routing.
    Ring {
        /// Routers on the ring.
        n: usize,
    },
    /// `torus:<cols>x<rows>` under minimal XY routing.
    Torus {
        /// Columns (≥ 3).
        cols: usize,
        /// Rows (≥ 3).
        rows: usize,
    },
    /// `mesh:<cols>x<rows>` under XY routing.
    Mesh {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
    },
    /// `hypercube:<dim>` under e-cube routing.
    Hypercube {
        /// Cube dimension.
        dim: u32,
    },
}

/// The virtual-channel ordering discipline of a `:vc<K>` spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcDisc {
    /// The canonical discipline for the base: dateline on rings and
    /// tori, e-cube classes on meshes and hypercubes.
    Auto,
    /// Promote past the wrap cable; rings and tori only.
    Dateline,
    /// Static per-dimension channel classes; meshes and hypercubes
    /// only.
    Ecube,
}

/// Why a specifier string did not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl FromStr for TopoSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = || SpecError(format!("bad topology spec '{s}'"));
        let int = |t: &str| t.parse::<usize>().map_err(|_| bad());
        // `<base>:vc<K>[:discipline]` — split the VC suffix off and
        // parse the base spec recursively.
        if let Some(pos) = parts.iter().position(|p| {
            p.strip_prefix("vc")
                .is_some_and(|k| k.parse::<u8>().is_ok())
        }) {
            let vcs: u8 = parts[pos][2..].parse().map_err(|_| bad())?;
            if !(1..=8).contains(&vcs) {
                return Err(SpecError("vc count must be 1..=8".into()));
            }
            let base = match parts[..pos].join(":").parse::<TopoSpec>()? {
                TopoSpec::Ring { n } => VcBase::Ring { n },
                TopoSpec::Torus { cols, rows } => VcBase::Torus { cols, rows },
                TopoSpec::Mesh { cols, rows } => VcBase::Mesh { cols, rows },
                TopoSpec::Hypercube { dim } => VcBase::Hypercube { dim },
                _ => {
                    return Err(SpecError(
                        "virtual channels apply to ring, torus, mesh, and hypercube specs".into(),
                    ))
                }
            };
            let disc = match parts[pos + 1..] {
                [] => VcDisc::Auto,
                ["dateline"] => VcDisc::Dateline,
                ["ecube"] => VcDisc::Ecube,
                _ => return Err(bad()),
            };
            let wrap_base = matches!(base, VcBase::Ring { .. } | VcBase::Torus { .. });
            match disc {
                VcDisc::Dateline if !wrap_base => {
                    return Err(SpecError(
                        "the dateline discipline needs wrap cables (ring or torus)".into(),
                    ))
                }
                VcDisc::Ecube if wrap_base => {
                    return Err(SpecError(
                        "e-cube classes can't break wrap cycles; use :dateline".into(),
                    ))
                }
                _ => {}
            }
            return Ok(TopoSpec::Vc { base, vcs, disc });
        }
        match parts[0] {
            "fat-fractahedron" if parts.len() == 2 => {
                let levels = int(parts[1])?;
                if !(1..=5).contains(&levels) {
                    return Err(SpecError("levels must be 1..=5".into()));
                }
                Ok(TopoSpec::FatFractahedron { levels })
            }
            "thin-fractahedron" if parts.len() == 2 || parts.len() == 3 => {
                let levels = int(parts[1])?;
                if !(1..=5).contains(&levels) {
                    return Err(SpecError("levels must be 1..=5".into()));
                }
                let fanout = parts.get(2) == Some(&"fanout");
                if parts.len() == 3 && !fanout {
                    return Err(bad());
                }
                Ok(TopoSpec::ThinFractahedron { levels, fanout })
            }
            "mesh" if parts.len() == 2 => {
                let dims: Vec<&str> = parts[1].split('x').collect();
                if dims.len() != 2 {
                    return Err(bad());
                }
                let (cols, rows) = (int(dims[0])?, int(dims[1])?);
                if cols == 0 || rows == 0 {
                    return Err(SpecError("mesh dimensions must be nonzero".into()));
                }
                Ok(TopoSpec::Mesh { cols, rows })
            }
            "torus" if parts.len() == 2 => {
                let dims: Vec<&str> = parts[1].split('x').collect();
                if dims.len() != 2 {
                    return Err(bad());
                }
                let (cols, rows) = (int(dims[0])?, int(dims[1])?);
                if cols < 3 || rows < 3 {
                    return Err(SpecError(
                        "torus dimensions must be at least 3 (smaller wraps are parallel cables)"
                            .into(),
                    ));
                }
                Ok(TopoSpec::Torus { cols, rows })
            }
            "fattree" if parts.len() == 4 => Ok(TopoSpec::FatTree {
                nodes: int(parts[1])?,
                down: int(parts[2])?,
                up: int(parts[3])?,
            }),
            "hypercube" if parts.len() == 2 => {
                let dim = int(parts[1])? as u32;
                if !(1..=8).contains(&dim) {
                    return Err(SpecError("hypercube dim must be 1..=8".into()));
                }
                Ok(TopoSpec::Hypercube { dim })
            }
            "ring" if parts.len() == 2 => Ok(TopoSpec::Ring { n: int(parts[1])? }),
            "tetrahedron" if parts.len() == 1 => Ok(TopoSpec::Tetrahedron),
            "cluster" if parts.len() == 2 => {
                let m = int(parts[1])?;
                if !(1..=6).contains(&m) {
                    return Err(SpecError(
                        "cluster size must be 1..=6 on 6-port routers".into(),
                    ));
                }
                Ok(TopoSpec::Cluster { m })
            }
            "bintree" if parts.len() == 3 => Ok(TopoSpec::BinTree {
                depth: int(parts[1])? as u32,
                nodes_per_leaf: int(parts[2])?,
            }),
            _ => Err(bad()),
        }
    }
}

impl fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopoSpec::FatFractahedron { levels } => write!(f, "fat-fractahedron:{levels}"),
            TopoSpec::ThinFractahedron { levels, fanout } => {
                write!(f, "thin-fractahedron:{levels}")?;
                if fanout {
                    write!(f, ":fanout")?;
                }
                Ok(())
            }
            TopoSpec::Mesh { cols, rows } => write!(f, "mesh:{cols}x{rows}"),
            TopoSpec::Torus { cols, rows } => write!(f, "torus:{cols}x{rows}"),
            TopoSpec::Vc { base, vcs, disc } => {
                match base {
                    VcBase::Ring { n } => write!(f, "ring:{n}")?,
                    VcBase::Torus { cols, rows } => write!(f, "torus:{cols}x{rows}")?,
                    VcBase::Mesh { cols, rows } => write!(f, "mesh:{cols}x{rows}")?,
                    VcBase::Hypercube { dim } => write!(f, "hypercube:{dim}")?,
                }
                write!(f, ":vc{vcs}")?;
                match disc {
                    VcDisc::Auto => Ok(()),
                    VcDisc::Dateline => write!(f, ":dateline"),
                    VcDisc::Ecube => write!(f, ":ecube"),
                }
            }
            TopoSpec::FatTree { nodes, down, up } => write!(f, "fattree:{nodes}:{down}:{up}"),
            TopoSpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            TopoSpec::Ring { n } => write!(f, "ring:{n}"),
            TopoSpec::Tetrahedron => write!(f, "tetrahedron"),
            TopoSpec::Cluster { m } => write!(f, "cluster:{m}"),
            TopoSpec::BinTree {
                depth,
                nodes_per_leaf,
            } => write!(f, "bintree:{depth}:{nodes_per_leaf}"),
        }
    }
}

impl TopoSpec {
    /// Builds the system this spec describes. Size validation happened
    /// at parse time, so this is infallible for parsed specs.
    pub fn build(&self) -> System {
        match *self {
            TopoSpec::FatFractahedron { levels } => System::fat_fractahedron(levels),
            TopoSpec::ThinFractahedron { levels, fanout } => {
                System::thin_fractahedron(levels, fanout)
            }
            TopoSpec::Mesh { cols, rows } => System::mesh(cols, rows),
            TopoSpec::Torus { cols, rows } => System::torus(cols, rows),
            TopoSpec::Vc { base, vcs, disc } => {
                let sys = match base {
                    VcBase::Ring { n } => System::ring(n),
                    VcBase::Torus { cols, rows } => System::torus(cols, rows),
                    VcBase::Mesh { cols, rows } => System::mesh(cols, rows),
                    VcBase::Hypercube { dim } => System::hypercube(dim, (dim as u8 + 1).max(6)),
                };
                let scheme = match (disc, base) {
                    (VcDisc::Dateline, _)
                    | (VcDisc::Auto, VcBase::Ring { .. } | VcBase::Torus { .. }) => {
                        crate::VcScheme::Dateline
                    }
                    _ => crate::VcScheme::Ecube,
                };
                sys.with_vcs(vcs, scheme)
            }
            TopoSpec::FatTree { nodes, down, up } => System::fat_tree(nodes, down, up),
            TopoSpec::Hypercube { dim } => {
                // One attach port on top of `dim` direction ports; the
                // standard 6-port ServerNet router covers dim <= 5.
                System::hypercube(dim, (dim as u8 + 1).max(6))
            }
            TopoSpec::Ring { n } => System::ring(n),
            TopoSpec::Tetrahedron => System::tetrahedron(),
            TopoSpec::Cluster { m } => System::cluster(m),
            TopoSpec::BinTree {
                depth,
                nodes_per_leaf,
            } => System::binary_tree(depth, nodes_per_leaf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_every_variant() {
        for spec in [
            TopoSpec::FatFractahedron { levels: 2 },
            TopoSpec::ThinFractahedron {
                levels: 3,
                fanout: false,
            },
            TopoSpec::ThinFractahedron {
                levels: 1,
                fanout: true,
            },
            TopoSpec::Mesh { cols: 6, rows: 6 },
            TopoSpec::Torus { cols: 8, rows: 8 },
            TopoSpec::Vc {
                base: VcBase::Ring { n: 6 },
                vcs: 2,
                disc: VcDisc::Auto,
            },
            TopoSpec::Vc {
                base: VcBase::Torus { cols: 8, rows: 8 },
                vcs: 2,
                disc: VcDisc::Dateline,
            },
            TopoSpec::Vc {
                base: VcBase::Mesh { cols: 6, rows: 6 },
                vcs: 2,
                disc: VcDisc::Ecube,
            },
            TopoSpec::Vc {
                base: VcBase::Hypercube { dim: 3 },
                vcs: 4,
                disc: VcDisc::Auto,
            },
            TopoSpec::FatTree {
                nodes: 64,
                down: 4,
                up: 2,
            },
            TopoSpec::Hypercube { dim: 3 },
            TopoSpec::Ring { n: 4 },
            TopoSpec::Tetrahedron,
            TopoSpec::Cluster { m: 3 },
            TopoSpec::BinTree {
                depth: 3,
                nodes_per_leaf: 2,
            },
        ] {
            let rendered = spec.to_string();
            assert_eq!(rendered.parse::<TopoSpec>(), Ok(spec), "{rendered}");
        }
    }

    #[test]
    fn parse_accepts_the_usage_examples() {
        for s in [
            "fat-fractahedron:1",
            "thin-fractahedron:2",
            "thin-fractahedron:1:fanout",
            "mesh:3x3",
            "torus:4x4",
            "ring:6:vc2",
            "torus:8x8:vc2:dateline",
            "mesh:6x6:vc2:ecube",
            "hypercube:3:vc2",
            "fattree:16:4:2",
            "hypercube:3",
            "hypercube:6",
            "ring:5",
            "tetrahedron",
            "cluster:3",
            "bintree:3:2",
        ] {
            let spec: TopoSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "round trip");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "fat-fractahedron",
            "fat-fractahedron:9",
            "mesh:6",
            "mesh:ax3",
            "mesh:0x3",
            "fattree:64:4",
            "hypercube:9",
            "cluster:7",
            "torus:2x4",
            "torus:4",
            "ring:6:vc0",
            "ring:6:vc9",
            "ring:6:vc2:ecube",
            "mesh:6x6:vc2:dateline",
            "fattree:16:4:2:vc2",
            "ring:6:vc2:bogus",
            "thin-fractahedron:1:bogus",
            "tetrahedron:1",
            "nonsense:1",
            "",
        ] {
            assert!(s.parse::<TopoSpec>().is_err(), "{s}");
        }
    }

    #[test]
    fn large_scale_specs_parse_and_size_sanely() {
        // The sharded engine's target scales: specs must parse and
        // round-trip, and the closed-form sizing must agree with the
        // recursion — without building the (huge) systems here.
        for s in ["fat-fractahedron:4", "fat-fractahedron:5", "mesh:100x100"] {
            let spec: TopoSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "round trip");
        }
        for (levels, ends) in [(4usize, 4096usize), (5, 32768)] {
            assert_eq!(crate::sizing::capacity(levels, false), ends);
            let bill = crate::sizing::bill(fractanet_topo::Variant::Fat, levels, false);
            assert_eq!(bill.capacity, ends);
            assert!(bill.total_routers() > ends / 4, "{bill:?}");
        }
        let TopoSpec::Mesh { cols, rows } = "mesh:100x100".parse::<TopoSpec>().unwrap() else {
            panic!("mesh:100x100 must parse as a mesh");
        };
        assert_eq!((cols, rows), (100, 100));
        assert!("fat-fractahedron:6".parse::<TopoSpec>().is_err());
    }

    #[test]
    fn build_produces_the_described_system() {
        let sys = "fat-fractahedron:2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.end_nodes().len(), 64);
        let sys = "mesh:3x3".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.end_nodes().len(), 18);
        let sys = "torus:4x4".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.end_nodes().len(), 32);
        assert!(sys.vc().is_none());
    }

    #[test]
    fn vc_specs_build_with_the_canonical_discipline() {
        use crate::VcScheme;
        let sys = "ring:6:vc2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.vc(), Some((2, VcScheme::Dateline)));
        let sys = "torus:4x4:vc2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.vc(), Some((2, VcScheme::Dateline)));
        let sys = "mesh:3x3:vc2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.vc(), Some((2, VcScheme::Ecube)));
        let sys = "hypercube:3:vc2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.vc(), Some((2, VcScheme::Ecube)));
    }

    #[test]
    fn vc_specs_flip_the_deadlock_verdict() {
        // The wrap cycles condemn the plain torus; the dateline spec
        // clears it — through the extended (channel, vc) graph.
        assert!(
            !"torus:4x4"
                .parse::<TopoSpec>()
                .unwrap()
                .build()
                .analyze()
                .deadlock_free
        );
        let vc = "torus:4x4:vc2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(vc.vc_deadlock_free(), Some(true));
        assert!(vc.analyze().deadlock_free);
        assert!(
            !"ring:4"
                .parse::<TopoSpec>()
                .unwrap()
                .build()
                .analyze()
                .deadlock_free
        );
        assert!(
            "ring:4:vc2"
                .parse::<TopoSpec>()
                .unwrap()
                .build()
                .analyze()
                .deadlock_free
        );
    }
}
