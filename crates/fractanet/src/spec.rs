//! Textual topology specifiers — the `mesh:6x6` / `fattree:64:4:2`
//! mini-language shared by the CLI, the experiment binaries, and the
//! benches.
//!
//! A [`TopoSpec`] is a *parsed, validated* description of one paper
//! topology. Parsing ([`FromStr`]) and rendering ([`Display`]) round
//! trip: `spec.to_string().parse() == Ok(spec)` for every value, so a
//! spec can travel through argv, config files, and bench IDs without
//! losing information.
//!
//! ```
//! use fractanet::TopoSpec;
//!
//! let spec: TopoSpec = "fat-fractahedron:2".parse().unwrap();
//! let sys = spec.build();
//! assert_eq!(sys.end_nodes().len(), 64);
//! assert_eq!(spec.to_string(), "fat-fractahedron:2");
//! ```

use crate::System;
use std::fmt;
use std::str::FromStr;

/// A parsed topology specifier, e.g. `fat-fractahedron:2` or
/// `mesh:6x6`. See the module docs for the grammar; invalid sizes
/// (levels outside `1..=5`, hypercubes above dim 8, clusters above 6
/// routers) are rejected at parse time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoSpec {
    /// `fat-fractahedron:<levels>` — the paper's Fig 7 network at 2.
    FatFractahedron {
        /// Recursion levels, `1..=5`.
        levels: usize,
    },
    /// `thin-fractahedron:<levels>[:fanout]` — Table 1's thin variant,
    /// optionally with the CPU-pair fan-out router level.
    ThinFractahedron {
        /// Recursion levels, `1..=5`.
        levels: usize,
        /// Whether the fan-out level is present.
        fanout: bool,
    },
    /// `mesh:<cols>x<rows>` — §3.1's mesh, 2 nodes per 6-port router.
    Mesh {
        /// Columns.
        cols: usize,
        /// Rows.
        rows: usize,
    },
    /// `fattree:<nodes>:<down>:<up>` — the Fig 6 fat tree.
    FatTree {
        /// End nodes.
        nodes: usize,
        /// Down-links per router.
        down: usize,
        /// Up-links per router.
        up: usize,
    },
    /// `hypercube:<dim>` — Fig 2; dim `1..=8` (routers grow past 6
    /// ports above dim 5).
    Hypercube {
        /// Cube dimension.
        dim: u32,
    },
    /// `ring:<n>` — Fig 1's ring (deadlock-prone with minimal routing).
    Ring {
        /// Routers on the ring.
        n: usize,
    },
    /// `tetrahedron` — Fig 4 (4 routers, 12 nodes).
    Tetrahedron,
    /// `cluster:<m>` — the Fig 3 fully-connected cluster, `1..=6`.
    Cluster {
        /// Routers in the cluster.
        m: usize,
    },
    /// `bintree:<depth>:<nodes-per-leaf>` — §2's binary tree.
    BinTree {
        /// Router levels.
        depth: u32,
        /// End nodes per leaf router.
        nodes_per_leaf: usize,
    },
}

/// Why a specifier string did not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl FromStr for TopoSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = || SpecError(format!("bad topology spec '{s}'"));
        let int = |t: &str| t.parse::<usize>().map_err(|_| bad());
        match parts[0] {
            "fat-fractahedron" if parts.len() == 2 => {
                let levels = int(parts[1])?;
                if !(1..=5).contains(&levels) {
                    return Err(SpecError("levels must be 1..=5".into()));
                }
                Ok(TopoSpec::FatFractahedron { levels })
            }
            "thin-fractahedron" if parts.len() == 2 || parts.len() == 3 => {
                let levels = int(parts[1])?;
                if !(1..=5).contains(&levels) {
                    return Err(SpecError("levels must be 1..=5".into()));
                }
                let fanout = parts.get(2) == Some(&"fanout");
                if parts.len() == 3 && !fanout {
                    return Err(bad());
                }
                Ok(TopoSpec::ThinFractahedron { levels, fanout })
            }
            "mesh" if parts.len() == 2 => {
                let dims: Vec<&str> = parts[1].split('x').collect();
                if dims.len() != 2 {
                    return Err(bad());
                }
                let (cols, rows) = (int(dims[0])?, int(dims[1])?);
                if cols == 0 || rows == 0 {
                    return Err(SpecError("mesh dimensions must be nonzero".into()));
                }
                Ok(TopoSpec::Mesh { cols, rows })
            }
            "fattree" if parts.len() == 4 => Ok(TopoSpec::FatTree {
                nodes: int(parts[1])?,
                down: int(parts[2])?,
                up: int(parts[3])?,
            }),
            "hypercube" if parts.len() == 2 => {
                let dim = int(parts[1])? as u32;
                if !(1..=8).contains(&dim) {
                    return Err(SpecError("hypercube dim must be 1..=8".into()));
                }
                Ok(TopoSpec::Hypercube { dim })
            }
            "ring" if parts.len() == 2 => Ok(TopoSpec::Ring { n: int(parts[1])? }),
            "tetrahedron" if parts.len() == 1 => Ok(TopoSpec::Tetrahedron),
            "cluster" if parts.len() == 2 => {
                let m = int(parts[1])?;
                if !(1..=6).contains(&m) {
                    return Err(SpecError(
                        "cluster size must be 1..=6 on 6-port routers".into(),
                    ));
                }
                Ok(TopoSpec::Cluster { m })
            }
            "bintree" if parts.len() == 3 => Ok(TopoSpec::BinTree {
                depth: int(parts[1])? as u32,
                nodes_per_leaf: int(parts[2])?,
            }),
            _ => Err(bad()),
        }
    }
}

impl fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopoSpec::FatFractahedron { levels } => write!(f, "fat-fractahedron:{levels}"),
            TopoSpec::ThinFractahedron { levels, fanout } => {
                write!(f, "thin-fractahedron:{levels}")?;
                if fanout {
                    write!(f, ":fanout")?;
                }
                Ok(())
            }
            TopoSpec::Mesh { cols, rows } => write!(f, "mesh:{cols}x{rows}"),
            TopoSpec::FatTree { nodes, down, up } => write!(f, "fattree:{nodes}:{down}:{up}"),
            TopoSpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            TopoSpec::Ring { n } => write!(f, "ring:{n}"),
            TopoSpec::Tetrahedron => write!(f, "tetrahedron"),
            TopoSpec::Cluster { m } => write!(f, "cluster:{m}"),
            TopoSpec::BinTree {
                depth,
                nodes_per_leaf,
            } => write!(f, "bintree:{depth}:{nodes_per_leaf}"),
        }
    }
}

impl TopoSpec {
    /// Builds the system this spec describes. Size validation happened
    /// at parse time, so this is infallible for parsed specs.
    pub fn build(&self) -> System {
        match *self {
            TopoSpec::FatFractahedron { levels } => System::fat_fractahedron(levels),
            TopoSpec::ThinFractahedron { levels, fanout } => {
                System::thin_fractahedron(levels, fanout)
            }
            TopoSpec::Mesh { cols, rows } => System::mesh(cols, rows),
            TopoSpec::FatTree { nodes, down, up } => System::fat_tree(nodes, down, up),
            TopoSpec::Hypercube { dim } => {
                // One attach port on top of `dim` direction ports; the
                // standard 6-port ServerNet router covers dim <= 5.
                System::hypercube(dim, (dim as u8 + 1).max(6))
            }
            TopoSpec::Ring { n } => System::ring(n),
            TopoSpec::Tetrahedron => System::tetrahedron(),
            TopoSpec::Cluster { m } => System::cluster(m),
            TopoSpec::BinTree {
                depth,
                nodes_per_leaf,
            } => System::binary_tree(depth, nodes_per_leaf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_every_variant() {
        for spec in [
            TopoSpec::FatFractahedron { levels: 2 },
            TopoSpec::ThinFractahedron {
                levels: 3,
                fanout: false,
            },
            TopoSpec::ThinFractahedron {
                levels: 1,
                fanout: true,
            },
            TopoSpec::Mesh { cols: 6, rows: 6 },
            TopoSpec::FatTree {
                nodes: 64,
                down: 4,
                up: 2,
            },
            TopoSpec::Hypercube { dim: 3 },
            TopoSpec::Ring { n: 4 },
            TopoSpec::Tetrahedron,
            TopoSpec::Cluster { m: 3 },
            TopoSpec::BinTree {
                depth: 3,
                nodes_per_leaf: 2,
            },
        ] {
            let rendered = spec.to_string();
            assert_eq!(rendered.parse::<TopoSpec>(), Ok(spec), "{rendered}");
        }
    }

    #[test]
    fn parse_accepts_the_usage_examples() {
        for s in [
            "fat-fractahedron:1",
            "thin-fractahedron:2",
            "thin-fractahedron:1:fanout",
            "mesh:3x3",
            "fattree:16:4:2",
            "hypercube:3",
            "hypercube:6",
            "ring:5",
            "tetrahedron",
            "cluster:3",
            "bintree:3:2",
        ] {
            let spec: TopoSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "round trip");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "fat-fractahedron",
            "fat-fractahedron:9",
            "mesh:6",
            "mesh:ax3",
            "mesh:0x3",
            "fattree:64:4",
            "hypercube:9",
            "cluster:7",
            "thin-fractahedron:1:bogus",
            "tetrahedron:1",
            "nonsense:1",
            "",
        ] {
            assert!(s.parse::<TopoSpec>().is_err(), "{s}");
        }
    }

    #[test]
    fn large_scale_specs_parse_and_size_sanely() {
        // The sharded engine's target scales: specs must parse and
        // round-trip, and the closed-form sizing must agree with the
        // recursion — without building the (huge) systems here.
        for s in ["fat-fractahedron:4", "fat-fractahedron:5", "mesh:100x100"] {
            let spec: TopoSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "round trip");
        }
        for (levels, ends) in [(4usize, 4096usize), (5, 32768)] {
            assert_eq!(crate::sizing::capacity(levels, false), ends);
            let bill = crate::sizing::bill(fractanet_topo::Variant::Fat, levels, false);
            assert_eq!(bill.capacity, ends);
            assert!(bill.total_routers() > ends / 4, "{bill:?}");
        }
        let TopoSpec::Mesh { cols, rows } = "mesh:100x100".parse::<TopoSpec>().unwrap() else {
            panic!("mesh:100x100 must parse as a mesh");
        };
        assert_eq!((cols, rows), (100, 100));
        assert!("fat-fractahedron:6".parse::<TopoSpec>().is_err());
    }

    #[test]
    fn build_produces_the_described_system() {
        let sys = "fat-fractahedron:2".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.end_nodes().len(), 64);
        let sys = "mesh:3x3".parse::<TopoSpec>().unwrap().build();
        assert_eq!(sys.end_nodes().len(), 18);
    }
}
