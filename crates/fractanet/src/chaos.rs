//! Deterministic chaos campaigns over a dual-fabric system.
//!
//! Each case samples a seeded fault schedule from the topology's
//! router-to-router links ([`fractanet_sim::sample_schedule`]), runs
//! the X fabric through it — self-healing, source retry, speculative
//! ACK-timeout retransmission and per-pair duplicate suppression all
//! on — fails abandoned transfers over to a pristine Y fabric, and
//! checks four end-to-end invariants:
//!
//! 1. **exactly_once** — every generated packet is delivered exactly
//!    once or explicitly handed to the failover layer, and the Y
//!    fabric finishes the job: total delivered equals total generated.
//! 2. **no_deadlock** — neither fabric reaches a wormhole-deadlock
//!    verdict.
//! 3. **heal_certifies** — when the schedule contains permanent
//!    faults, regenerating tables around the final dead set succeeds
//!    (certified deadlock-free by construction).
//! 4. **span_accounting** — telemetry recovery spans telescope to
//!    exactly `time_to_recover`.
//!
//! A violating case is delta-shrunk to a 1-minimal schedule by
//! re-running the same seeds on candidate subsets, then emitted as a
//! replayable JSON [`Scenario`] — `fractanet chaos --replay` runs it
//! bit-identically.

use crate::spec::TopoSpec;
use crate::System;
use fractanet_graph::LinkId;
use fractanet_route::repair::DeadMask;
use fractanet_servernet::healing::heal_mask;
use fractanet_servernet::{run_with_failover, FabricSim, FailoverOutcome};
use fractanet_sim::{
    sample_schedule, shrink, write_trace, ChaosSpace, DstPattern, FaultEvent, FaultKind, Invariant,
    MetricsConfig, RetryPolicy, Scenario, SimConfig, Telemetry, Violation, Workload,
};
use fractanet_telemetry::{incident_chrome_trace, Anomaly, AnomalyKind};

/// Campaign shape: how many cases, from which seed, at which scale.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions {
    /// Number of sampled schedules to run.
    pub runs: usize,
    /// Base seed; case `i` derives its schedule and engine seeds from
    /// it, so the whole campaign is a pure function of `(spec, opts)`.
    pub seed: u64,
    /// Short cases for CI smoke (fewer cycles, lighter load).
    pub quick: bool,
    /// Per-pair duplicate suppression at the destination. `false`
    /// deliberately re-opens the timeout-race double-delivery bug so
    /// the shrinker has something to minimize.
    pub dedup: bool,
    /// Worker threads dispatching campaign cases. Each case is a pure
    /// function of `(spec, opts.seed, case index)`, so the report is
    /// identical at every width; shrinking stays sequential.
    pub threads: usize,
    /// Per-port input-FIFO depth override for both fabrics
    /// (`--fifo-depth`; `None` = engine default). Recorded in minted
    /// scenarios so replays reproduce bit-identically.
    pub fifo_depth: Option<u32>,
    /// Credit round-trip delay in cycles for both fabrics
    /// (`--credit-delay`). Also recorded in minted scenarios.
    pub credit_delay: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            runs: 32,
            seed: 42,
            quick: false,
            dedup: true,
            threads: 1,
            fifo_depth: None,
            credit_delay: 0,
        }
    }
}

/// Outcome of one campaign.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Topology spec string the campaign ran against.
    pub spec: String,
    /// Cases executed.
    pub runs: usize,
    /// Cases with at least one invariant violation.
    pub violating_cases: usize,
    /// One line per violation: case, invariant, evidence.
    pub lines: Vec<String>,
    /// Shrunk, replayable counterexamples (first violation per case).
    pub scenarios: Vec<Scenario>,
}

impl ChaosReport {
    /// Whether every case held every invariant.
    pub fn is_clean(&self) -> bool {
        self.violating_cases == 0
    }

    /// Human-readable campaign summary.
    pub fn summary(&self) -> String {
        format!(
            "chaos: {} cases on {}, {} violation(s)",
            self.runs, self.spec, self.violating_cases
        )
    }
}

/// Case scale parameters, derived from `quick`.
struct Scale {
    cycles: u64,
    load: f64,
    max_events: usize,
}

fn scale(quick: bool) -> Scale {
    if quick {
        Scale {
            cycles: 2_500,
            load: 0.05,
            max_events: 4,
        }
    } else {
        Scale {
            cycles: 6_000,
            load: 0.08,
            max_events: 6,
        }
    }
}

/// The fault-eligible components of a system: router-to-router links
/// only (an end node hangs off a single cable, so breaking it proves
/// nothing about the fabric) and every router.
fn chaos_space(sys: &System, horizon: u64) -> ChaosSpace {
    let net = sys.net();
    let links: Vec<LinkId> = net
        .links()
        .filter(|&l| {
            let info = net.link(l);
            net.is_router(info.a.0) && net.is_router(info.b.0)
        })
        .collect();
    let routers = net.nodes().filter(|&v| net.is_router(v)).collect();
    ChaosSpace {
        links,
        routers,
        horizon,
    }
}

fn case_retry() -> RetryPolicy {
    // A deliberately twitchy ACK timeout, shorter than even an
    // uncontended delivery (the tail needs ~hops cycles after leaving
    // the source), so speculative retransmission races real deliveries
    // constantly — the whole point: duplicate suppression must absorb
    // every copy, and the failover layer every abandonment.
    RetryPolicy {
        ack_timeout: 4,
        max_retries: 6,
        backoff_base: 16,
        jitter_seed: 11,
    }
}

/// Applies the campaign's router knobs to one fabric's config.
fn apply_router(cfg: SimConfig, fifo_depth: Option<u32>, credit_delay: u64) -> SimConfig {
    let cfg = cfg.with_credit_delay(credit_delay);
    match fifo_depth {
        Some(d) => cfg.with_buffer_depth(d),
        None => cfg,
    }
}

/// Runs one case: X fabric with the schedule, Y fabric pristine. Both
/// fabrics share the system's VC discipline (if any) and the
/// campaign's FIFO-depth/credit-delay knobs.
fn run_case(
    sys: &System,
    schedule: &[FaultEvent],
    engine_seed: u64,
    quick: bool,
    dedup: bool,
    fifo_depth: Option<u32>,
    credit_delay: u64,
) -> FailoverOutcome {
    let sc = scale(quick);
    let cfg_x = apply_router(
        SimConfig {
            max_cycles: sc.cycles * 4,
            stall_threshold: 500,
            retry: case_retry(),
            seed: engine_seed,
            ..SimConfig::default()
        },
        fifo_depth,
        credit_delay,
    )
    .with_faults(schedule.to_vec())
    .with_ack_retransmit(true)
    .with_dedup(dedup)
    .with_telemetry(Telemetry::recording().with_event_capacity(1 << 14));
    let cfg_y = apply_router(
        SimConfig {
            max_cycles: sc.cycles * 4,
            stall_threshold: 500,
            retry: case_retry(),
            seed: engine_seed ^ 0x5EC0_4DFA,
            ..SimConfig::default()
        },
        fifo_depth,
        credit_delay,
    );
    let workload = Workload::Bernoulli {
        injection_rate: sc.load,
        pattern: DstPattern::Uniform,
        until_cycle: sc.cycles,
    };
    let x = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_x,
        heal: true,
        vc: sys.vc_map().cloned(),
    };
    let y = FabricSim {
        net: sys.net(),
        routes: sys.route_set(),
        ends: sys.end_nodes(),
        cfg: cfg_y,
        heal: false,
        vc: sys.vc_map().cloned(),
    };
    run_with_failover(x, y, workload)
}

/// The permanent component kills in a schedule, as a repair mask.
/// Gray faults never enter it: a flaky or browned-out link is degraded,
/// not dead, and healing around it is the engine's (transient) job.
fn permanent_mask(sys: &System, schedule: &[FaultEvent]) -> DeadMask {
    let mut mask = DeadMask::new(sys.net());
    for f in schedule {
        if !f.is_permanent() {
            continue;
        }
        match f.kind {
            FaultKind::Link(l) => mask.kill_link(l),
            FaultKind::Router(r) => mask.kill_router(r),
            FaultKind::FlakyLink { .. } | FaultKind::CorruptLink { .. } => {}
            // Permanent brownouts oscillate forever but the link is
            // up half the time — not a heal target either.
            FaultKind::Brownout { .. } => {}
        }
    }
    mask
}

/// Checks every invariant against a finished case.
fn check_invariants(
    sys: &System,
    schedule: &[FaultEvent],
    out: &FailoverOutcome,
) -> Vec<Violation> {
    let mut v = Vec::new();
    if let Some(dl) = &out.x.deadlock {
        v.push(Violation {
            invariant: Invariant::NoDeadlock,
            detail: format!("X fabric deadlocked at cycle {}", dl.cycle),
        });
    }
    if let Some(dl) = out.y.as_ref().and_then(|y| y.deadlock.as_ref()) {
        v.push(Violation {
            invariant: Invariant::NoDeadlock,
            detail: format!("Y fabric deadlocked at cycle {}", dl.cycle),
        });
    }
    // Exactly-once: per fabric, delivered + abandoned must account for
    // every generated packet (no loss, no double-count), and across
    // the failover everything generated must arrive exactly once.
    let xr = &out.x;
    if xr.delivered + xr.recovery.abandoned.len() != xr.generated {
        v.push(Violation {
            invariant: Invariant::ExactlyOnce,
            detail: format!(
                "X fabric: {} delivered + {} abandoned != {} generated \
                 ({} duplicates suppressed)",
                xr.delivered,
                xr.recovery.abandoned.len(),
                xr.generated,
                xr.recovery.duplicates_suppressed
            ),
        });
    }
    if out.x.deadlock.is_none()
        && out.y.as_ref().is_none_or(|y| y.deadlock.is_none())
        && out.total_delivered() != out.total_generated()
    {
        v.push(Violation {
            invariant: Invariant::ExactlyOnce,
            detail: format!(
                "end to end: {} delivered != {} generated ({} unrecovered pairs)",
                out.total_delivered(),
                out.total_generated(),
                out.unrecovered.len()
            ),
        });
    }
    let mask = permanent_mask(sys, schedule);
    if !mask.is_empty() {
        if let Err(e) = heal_mask(sys.net(), sys.end_nodes(), &mask) {
            v.push(Violation {
                invariant: Invariant::HealCertifies,
                detail: format!("healing the final dead set failed: {e:?}"),
            });
        }
    }
    if let (Some(tel), Some(t)) = (&xr.telemetry, xr.recovery.time_to_recover) {
        if tel.recovery_span_cycles() != Some(t) {
            v.push(Violation {
                invariant: Invariant::SpanAccounting,
                detail: format!(
                    "recovery spans telescope to {:?}, stats say {t}",
                    tel.recovery_span_cycles()
                ),
            });
        }
    }
    v
}

/// Derives the two per-case seeds from the campaign seed. Pure, so a
/// scenario records enough to reproduce its case exactly.
fn case_seeds(seed: u64, case: usize) -> (u64, u64) {
    let schedule_seed = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (schedule_seed, schedule_seed ^ 0x0C4A_05E1)
}

/// Runs a chaos campaign: `opts.runs` sampled schedules against
/// `spec`, invariants checked, violations shrunk to minimal replayable
/// scenarios.
pub fn run_campaign(spec: &TopoSpec, opts: &ChaosOptions) -> ChaosReport {
    let sys = spec.build();
    let sc = scale(opts.quick);
    let space = chaos_space(&sys, sc.cycles);
    // Cases are independent seeded runs, so they dispatch across the
    // shared worker pool; the merge below (and any shrinking) walks
    // them sequentially in case order, so the report is identical to
    // the single-thread path at every width.
    let cases = fractanet_sim::parallel_map(opts.threads, opts.runs, |case| {
        let (schedule_seed, engine_seed) = case_seeds(opts.seed, case);
        let schedule = sample_schedule(&space, schedule_seed, sc.max_events);
        let out = run_case(
            &sys,
            &schedule,
            engine_seed,
            opts.quick,
            opts.dedup,
            opts.fifo_depth,
            opts.credit_delay,
        );
        let violations = check_invariants(&sys, &schedule, &out);
        (schedule_seed, engine_seed, schedule, violations)
    });
    let mut lines = Vec::new();
    let mut scenarios = Vec::new();
    let mut violating_cases = 0usize;
    for (case, (schedule_seed, engine_seed, schedule, violations)) in cases.into_iter().enumerate()
    {
        if violations.is_empty() {
            continue;
        }
        violating_cases += 1;
        for viol in &violations {
            lines.push(format!(
                "case {case} (schedule seed {schedule_seed}): {} — {}",
                viol.invariant.tag(),
                viol.detail
            ));
        }
        // Shrink against the first violation's invariant.
        let target = violations[0].invariant;
        let minimal = shrink(&schedule, |cand| {
            let o = run_case(
                &sys,
                cand,
                engine_seed,
                opts.quick,
                opts.dedup,
                opts.fifo_depth,
                opts.credit_delay,
            );
            check_invariants(&sys, cand, &o)
                .iter()
                .any(|w| w.invariant == target)
        });
        scenarios.push(Scenario {
            spec: spec.to_string(),
            seed: engine_seed,
            schedule_seed,
            invariant: target.tag().to_string(),
            faults: minimal,
            fifo_depth: opts.fifo_depth,
            credit_delay: opts.credit_delay,
        });
    }
    ChaosReport {
        spec: spec.to_string(),
        runs: opts.runs,
        violating_cases,
        lines,
        scenarios,
    }
}

/// Replays a scenario bit-identically (same spec, seeds, schedule) and
/// reports any invariant violations. `dedup` mirrors the campaign
/// flag: a regression scenario minted with `--disable-dedup` must
/// reproduce under `dedup: false` and stay clean under the default.
pub fn replay(scenario: &Scenario, quick: bool, dedup: bool) -> Result<Vec<Violation>, String> {
    let spec: TopoSpec = scenario.spec.parse().map_err(|e| format!("{e}"))?;
    let sys = spec.build();
    let out = run_case(
        &sys,
        &scenario.faults,
        scenario.seed,
        quick,
        dedup,
        scenario.fifo_depth,
        scenario.credit_delay,
    );
    Ok(check_invariants(&sys, &scenario.faults, &out))
}

/// A chaos incident minted from a still-violating scenario: the
/// scenario's schedule re-run with live metrics, packaged as a
/// replayable metrics trace plus a Chrome-trace flight-recorder bundle
/// carrying the invariant violations as instant events.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Replayable JSONL metrics trace — `fractanet replay` re-runs it
    /// and asserts the recorded delivered/abandoned counts.
    pub trace: String,
    /// Chrome `trace_event` incident bundle (chrome://tracing) —
    /// present when the replay violated or the metrics re-run itself
    /// hit an anomaly.
    pub bundle: Option<String>,
    /// The violations the authoritative scenario replay reported.
    pub violations: Vec<Violation>,
}

/// Replays a scenario and mints an [`Incident`] from it.
///
/// The verdict comes from [`replay`] — the full dual-fabric case,
/// bit-identical to the campaign. The incident *timeline* then comes
/// from re-running the scenario's fault schedule and engine seed on
/// the standard single-fabric engine with metrics on: the same engine
/// `fractanet replay` rebuilds, so the minted trace replays exactly by
/// construction.
pub fn incident(scenario: &Scenario, quick: bool, dedup: bool) -> Result<Incident, String> {
    let violations = replay(scenario, quick, dedup)?;
    let spec: TopoSpec = scenario.spec.parse().map_err(|e| format!("{e}"))?;
    let sys = spec.build();
    let sc = scale(quick);
    let cfg = apply_router(
        SimConfig {
            max_cycles: sc.cycles * 4,
            stall_threshold: 500,
            retry: case_retry(),
            seed: scenario.seed,
            ..SimConfig::default()
        },
        scenario.fifo_depth,
        scenario.credit_delay,
    )
    .with_faults(scenario.faults.clone())
    .with_ack_retransmit(true)
    .with_dedup(dedup)
    .with_metrics(MetricsConfig::sampling(100).with_topology(&sys.name()));
    let workload = Workload::Bernoulli {
        injection_rate: sc.load,
        pattern: DstPattern::Uniform,
        until_cycle: sc.cycles,
    };
    let res = sys.simulate(workload, cfg.clone());
    let report = res.metrics.as_ref().expect("metrics were on");
    let extra: Vec<Anomaly> = violations
        .iter()
        .map(|v| Anomaly {
            cycle: report.cycles,
            kind: AnomalyKind::InvariantViolation,
            detail: format!("{}: {}", v.invariant.tag(), v.detail),
        })
        .collect();
    let bundle = incident_chrome_trace(report, &extra);
    let trace = write_trace(&scenario.spec, false, &cfg, report);
    Ok(Incident {
        trace,
        bundle,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> TopoSpec {
        s.parse().unwrap()
    }

    #[test]
    fn smoke_campaign_is_clean_and_deterministic() {
        let opts = ChaosOptions {
            runs: 6,
            seed: 42,
            quick: true,
            ..ChaosOptions::default()
        };
        let a = run_campaign(&spec("fat-fractahedron:1"), &opts);
        assert!(a.is_clean(), "{:?}", a.lines);
        let b = run_campaign(&spec("fat-fractahedron:1"), &opts);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.scenarios.len(), b.scenarios.len());
    }

    #[test]
    fn mesh_smoke_campaign_is_clean() {
        let opts = ChaosOptions {
            runs: 4,
            quick: true,
            ..ChaosOptions::default()
        };
        let r = run_campaign(&spec("mesh:3x3"), &opts);
        assert!(r.is_clean(), "{:?}", r.lines);
    }

    #[test]
    fn vc_torus_smoke_campaign_is_clean() {
        // The torus's minimal XY tables are cyclic on the physical
        // channel-dependency graph, so this campaign only stays
        // deadlock-free because both fabrics run the spec's dateline
        // VC discipline (wired through `FabricSim::vc`) — including
        // across mid-run heals, since the dateline map is
        // route-agnostic.
        let opts = ChaosOptions {
            runs: 4,
            quick: true,
            ..ChaosOptions::default()
        };
        let r = run_campaign(&spec("torus:3x3:vc2"), &opts);
        assert!(r.is_clean(), "{:?}", r.lines);
    }

    #[test]
    fn router_knobs_reach_the_minted_scenarios() {
        // A finite-FIFO campaign records its knobs in every scenario
        // it mints, so `--replay` reproduces the exact configuration.
        let opts = ChaosOptions {
            runs: 8,
            seed: 42,
            quick: true,
            dedup: false,
            fifo_depth: Some(2),
            credit_delay: 1,
            ..ChaosOptions::default()
        };
        let r = run_campaign(&spec("fat-fractahedron:1"), &opts);
        assert!(!r.is_clean(), "dedup-off campaign should violate");
        for sc in &r.scenarios {
            assert_eq!(sc.fifo_depth, Some(2));
            assert_eq!(sc.credit_delay, 1);
            let again = Scenario::from_json(&sc.to_json()).unwrap();
            assert_eq!(&again, sc);
        }
    }

    #[test]
    fn disabling_dedup_reproduces_a_violation_and_shrinks() {
        // With suppression off, the twitchy ACK timeout double-delivers
        // somewhere in a handful of cases; the shrunk scenario must
        // replay to the same violation with dedup off and be clean
        // with it on.
        let opts = ChaosOptions {
            runs: 8,
            seed: 42,
            quick: true,
            dedup: false,
            ..ChaosOptions::default()
        };
        let r = run_campaign(&spec("fat-fractahedron:1"), &opts);
        assert!(
            !r.is_clean(),
            "expected a duplicate-delivery violation: {:?}",
            r.lines
        );
        let sc = r
            .scenarios
            .iter()
            .find(|s| s.invariant == Invariant::ExactlyOnce.tag())
            .expect("an exactly_once scenario");
        assert!(sc.faults.len() <= 3, "not minimal: {:?}", sc.faults);
        let again = replay(sc, true, false).unwrap();
        assert!(again.iter().any(|v| v.invariant == Invariant::ExactlyOnce));
        let fixed = replay(sc, true, true).unwrap();
        assert!(fixed.is_empty(), "{fixed:?}");
    }

    #[test]
    fn dispatch_width_does_not_change_the_verdict() {
        // A campaign that actually violates (dedup off) so the parity
        // check covers lines, scenarios, and shrinking — not just the
        // all-clean fast path.
        let base = ChaosOptions {
            runs: 8,
            seed: 42,
            quick: true,
            dedup: false,
            ..ChaosOptions::default()
        };
        let serial = run_campaign(&spec("fat-fractahedron:1"), &base);
        for threads in [2, 4] {
            let wide = run_campaign(
                &spec("fat-fractahedron:1"),
                &ChaosOptions { threads, ..base },
            );
            assert_eq!(serial.violating_cases, wide.violating_cases);
            assert_eq!(serial.lines, wide.lines, "threads={threads}");
            assert_eq!(
                serial
                    .scenarios
                    .iter()
                    .map(Scenario::to_json)
                    .collect::<Vec<_>>(),
                wide.scenarios
                    .iter()
                    .map(Scenario::to_json)
                    .collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scenario_files_round_trip_through_replay() {
        let sc = Scenario {
            spec: "fat-fractahedron:1".to_string(),
            seed: 7,
            schedule_seed: 3,
            invariant: Invariant::ExactlyOnce.tag().to_string(),
            faults: vec![FaultEvent::kill_link(LinkId(12), 100).transient(600)],
            fifo_depth: None,
            credit_delay: 0,
        };
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        let v = replay(&back, true, true).unwrap();
        assert!(v.is_empty(), "{v:?}");
        assert!(replay(
            &Scenario {
                spec: "not-a-topology".into(),
                ..sc
            },
            true,
            true
        )
        .is_err());
    }
}
