//! The sharded parallel step.
//!
//! Every cycle splits into a **decision phase** and a **commit
//! phase**. The decision phase — the per-channel forwarding scan and
//! the per-source injection scan, which together dominate the cycle
//! cost on large fabrics (each queued head re-proves full-path
//! liveness every cycle) — is a pure function of start-of-cycle state,
//! so it shards across scoped worker threads over contiguous channel
//! and source ranges with no synchronization beyond the fork/join
//! barrier. Workers never touch the recorder, the RNG streams, or any
//! mutable engine state: they return *plans* (moves to make, queue
//! heads to pop, telemetry to emit). The commit phase then replays
//! those plans on the main thread in exactly the order the serial
//! oracle would have produced them — shard results concatenate in
//! shard order, which is channel/source order — and hands off to the
//! same [`Engine::commit_step`] the oracle uses.
//!
//! Determinism contract: results are bit-identical to
//! [`Engine::step`] for every thread count, including RNG streams,
//! heap contents, and the telemetry event ring. The contract rests on
//! three facts, each enforced by the `parallel_and_serial_engines_agree`
//! proptest:
//!
//! 1. decisions read only start-of-cycle state, so shard boundaries
//!    cannot change any verdict;
//! 2. retry-jitter draws happen only in the serial replay, in source
//!    order, exactly as the oracle's injection scan draws them;
//! 3. the order-sensitive telemetry ring sees the deferred `blocked`
//!    records in scan order before any injection-phase event, matching
//!    the oracle's emission order.

use super::{ChanState, Engine, NextHop, Packet, RouteSource, NO_PKT};
use crate::vc::VcMap;
use fractanet_graph::{ChannelId, Network, NodeId};
use std::collections::VecDeque;
use std::ops::Range;

/// Shards only form over fabrics big enough that per-cycle thread
/// spawn cost cannot dominate the scan itself; below the floor the
/// plan/replay machinery still runs, single-threaded.
pub(crate) const MIN_CHANNELS_PER_SHARD: usize = 64;

/// The immutable, `Sync` slice of engine state a decision worker
/// needs: topology, routing epochs, channel/packet/queue state, and
/// the scan-relevant config bits. Also the single home of hop
/// resolution — the serial oracle delegates here, so both steps
/// resolve routes through one implementation.
pub(super) struct ScanView<'e, 'a> {
    pub(super) net: &'e Network,
    pub(super) epochs: &'e [RouteSource<'a>],
    pub(super) ends: Option<&'e [NodeId]>,
    pub(super) chans: &'e [ChanState],
    pub(super) packets: &'e [Packet],
    pub(super) queues: &'e [VecDeque<u32>],
    pub(super) chan_dead: &'e [bool],
    pub(super) credits: &'e [u32],
    pub(super) vcs: u32,
    pub(super) vcmap: Option<&'e VcMap>,
    pub(super) dedup: bool,
    pub(super) tel_on: bool,
}

impl ScanView<'_, '_> {
    /// End nodes in address order (table epochs only).
    fn addr_ends(&self) -> &[NodeId] {
        self.ends
            .expect("table epochs carry end nodes by construction")
    }

    /// The packet's first channel: the path head for dense epochs, the
    /// source end's attach channel for table epochs. Only called after
    /// [`route_dead_or_missing`](ScanView::route_dead_or_missing) has
    /// cleared the route.
    #[inline]
    pub(super) fn first_hop(&self, p: &Packet) -> ChannelId {
        match self.epochs[p.epoch as usize].dense() {
            Some(rs) => rs.path(p.src as usize, p.dst as usize)[0],
            None => {
                self.net
                    .channels_from(self.addr_ends()[p.src as usize])
                    .first()
                    .expect("routable packet's source has an attach channel")
                    .0
            }
        }
    }

    /// Resolves the next hop for a worm head occupying `ch` at route
    /// position `pos` — a dense epoch indexes its frozen path, a table
    /// epoch reads the downstream router's destination entry.
    #[inline]
    pub(super) fn next_hop(&self, p: &Packet, ch: ChannelId, pos: u32) -> NextHop {
        let epoch = &self.epochs[p.epoch as usize];
        if let Some(rs) = epoch.dense() {
            let path = rs.path(p.src as usize, p.dst as usize);
            return match path.get(pos as usize + 1) {
                Some(&next) => NextHop::Channel(next),
                None => NextHop::Eject,
            };
        }
        let v = self.net.channel_dst(ch);
        if v == self.addr_ends()[p.dst as usize] {
            return NextHop::Eject;
        }
        let port = epoch
            .tables()
            .get(v, p.dst as usize)
            .expect("in-flight worm's router has a table entry");
        let next = self
            .net
            .channel_out(v, port)
            .expect("in-flight worm's table entry resolves to a channel");
        NextHop::Channel(next)
    }

    /// Resolves the virtual-channel slot (vid) a transfer into physical
    /// channel `next` lands in. Channel state, credits, and the
    /// round-robin pointers are all indexed by vid = `phys * vcs + vc`;
    /// with one VC (or no map installed) this degenerates to the
    /// physical channel index times `vcs`, preserving the legacy
    /// engine's indexing exactly at `vcs == 1`. `cur_vid` is the vid
    /// the worm head currently occupies; `next_pos` its route position
    /// after the move (path index of `next`).
    #[inline]
    pub(super) fn vid_of(&self, p: &Packet, next_pos: u32, cur_vid: u32, next: ChannelId) -> u32 {
        match self.vcmap {
            None => next.0 * self.vcs,
            Some(map) => {
                let cur_vc = (cur_vid % self.vcs) as u8;
                let cur = ChannelId(cur_vid / self.vcs);
                let vc = map.vc_for(p.src, p.dst, next_pos, cur_vc, Some(cur), next);
                next.0 * self.vcs + u32::from(vc)
            }
        }
    }

    /// The first physical hop and its vid for a packet about to inject
    /// (route position 0, no current channel, VC 0 discipline seed).
    #[inline]
    pub(super) fn first_vid(&self, p: &Packet) -> (ChannelId, u32) {
        let c0 = self.first_hop(p);
        match self.vcmap {
            None => (c0, c0.0 * self.vcs),
            Some(map) => {
                let vc = map.vc_for(p.src, p.dst, 0, 0, None, c0);
                (c0, c0.0 * self.vcs + u32::from(vc))
            }
        }
    }

    /// Whether the packet's route under its epoch is unusable: absent
    /// (severed pair, missing table entry, forwarding loop) or crossing
    /// a currently-dead channel. Checked before injection.
    pub(super) fn route_dead_or_missing(&self, p: &Packet) -> bool {
        let epoch = &self.epochs[p.epoch as usize];
        if let Some(rs) = epoch.dense() {
            let path = rs.path(p.src as usize, p.dst as usize);
            return path.is_empty() || path.iter().any(|c| self.chan_dead[c.index()]);
        }
        let ends = self.addr_ends();
        let dst_end = ends[p.dst as usize];
        let Some(&(inject, mut v)) = self.net.channels_from(ends[p.src as usize]).first() else {
            return true;
        };
        if self.chan_dead[inject.index()] {
            return true;
        }
        let tables = epoch.tables();
        let mut hops = 0usize;
        while v != dst_end {
            let Some(port) = tables.get(v, p.dst as usize) else {
                return true;
            };
            let Some(ch) = self.net.channel_out(v, port) else {
                return true;
            };
            if self.chan_dead[ch.index()] {
                return true;
            }
            v = self.net.channel_dst(ch);
            hops += 1;
            if hops > self.net.node_count() {
                return true; // forwarding loop
            }
        }
        false
    }

    /// Whether any channel the worm has yet to traverse — beyond its
    /// head on `ch` at route position `pos` — is currently dead.
    pub(super) fn remainder_dead(&self, p: &Packet, ch: ChannelId, pos: u32) -> bool {
        let epoch = &self.epochs[p.epoch as usize];
        if let Some(rs) = epoch.dense() {
            let path = rs.path(p.src as usize, p.dst as usize);
            return path[pos as usize + 1..]
                .iter()
                .any(|c| self.chan_dead[c.index()]);
        }
        let dst_end = self.addr_ends()[p.dst as usize];
        let tables = epoch.tables();
        let mut v = self.net.channel_dst(ch);
        while v != dst_end {
            let port = tables
                .get(v, p.dst as usize)
                .expect("in-flight worm's router has a table entry");
            let next = self
                .net
                .channel_out(v, port)
                .expect("in-flight worm's table entry resolves to a channel");
            if self.chan_dead[next.index()] {
                return true;
            }
            v = self.net.channel_dst(next);
        }
        false
    }
}

/// One shard's channel-scan output: the same decisions the oracle's
/// forwarding loop makes, in channel order, with the would-be
/// `Recorder::blocked` calls deferred as records.
pub(super) struct ChannelScan {
    ejects: Vec<u32>,
    body_moves: Vec<(u32, u32)>,
    alloc_reqs: Vec<(u32, u32)>,
    contenders: Vec<(u32, u32, u32)>,
    /// Deferred `blocked(owner, wanted, credit_stall)` telemetry, in
    /// vid order; the flag replays the `credit_stalled` counter bump
    /// that precedes the `blocked` record in the oracle.
    blocked: Vec<(u32, ChannelId, bool)>,
    /// Credit-bound stalls seen by this shard — counted even with
    /// telemetry off, like the oracle's engine-level ledger.
    credit_stalls: u64,
}

/// One source's injection plan: queue-front entries to pop (and
/// whether each pop owes a retry booking), plus the surviving head's
/// verdict `(pid, first channel, ok to inject, credit stall)`.
pub(super) struct SourcePlan {
    src: u32,
    pops: Vec<(u32, bool)>,
    head: Option<(u32, ChannelId, bool, bool)>,
}

/// Contiguous shard `i` of `0..n` split `shards` ways.
pub(crate) fn chunk(n: usize, shards: usize, i: usize) -> Range<usize> {
    (i * n / shards)..((i + 1) * n / shards)
}

/// Shards actually formed for `threads` requested workers over a
/// fabric of `nch` physical channels: clamped so each shard scans at
/// least [`MIN_CHANNELS_PER_SHARD`] channels, and never below one.
pub(crate) fn effective_shards(threads: usize, nch: usize) -> usize {
    threads.max(1).min((nch / MIN_CHANNELS_PER_SHARD).max(1))
}

/// The oracle's forwarding scan over one channel range, decisions
/// recorded instead of telemetry emitted.
fn scan_channels(view: &ScanView<'_, '_>, range: Range<usize>) -> ChannelScan {
    let mut out = ChannelScan {
        ejects: Vec::new(),
        body_moves: Vec::new(),
        alloc_reqs: Vec::new(),
        contenders: Vec::new(),
        blocked: Vec::new(),
        credit_stalls: 0,
    };
    for vid in range {
        let vid = vid as u32;
        let st = &view.chans[vid as usize];
        if st.occ == 0 {
            continue;
        }
        let p = &view.packets[st.owner as usize];
        let next = match view.next_hop(p, ChannelId(vid / view.vcs), st.route_pos) {
            NextHop::Eject => {
                out.ejects.push(vid);
                continue;
            }
            NextHop::Channel(next) => next,
        };
        let nvid = view.vid_of(p, st.route_pos + 1, vid, next);
        let nst = &view.chans[nvid as usize];
        if st.front() == 0 {
            if view.tel_on {
                out.contenders.push((next.0, p.src, p.dst));
            }
            if nst.owner == NO_PKT && view.credits[nvid as usize] > 0 {
                out.alloc_reqs.push((nvid, vid));
            } else {
                let stall = nst.owner == NO_PKT;
                if stall {
                    out.credit_stalls += 1;
                }
                if view.tel_on {
                    out.blocked.push((st.owner, next, stall));
                }
            }
        } else {
            debug_assert_eq!(nst.owner, st.owner, "body flit lost its worm");
            if view.tel_on {
                out.contenders.push((next.0, p.src, p.dst));
            }
            if view.credits[nvid as usize] > 0 {
                out.body_moves.push((vid, nvid));
            } else {
                out.credit_stalls += 1;
                if view.tel_on {
                    out.blocked.push((st.owner, next, true));
                }
            }
        }
    }
    out
}

/// The oracle's injection scan over one source range, side effects
/// (pops, retry bookings) recorded as a plan instead of performed.
/// Within a cycle no decision of one source depends on another
/// source's pops or retry bookings — retries mutate only attempt
/// counters and future-cycle heaps — so the plans replay serially with
/// identical verdicts.
fn scan_sources(view: &ScanView<'_, '_>, range: Range<usize>) -> Vec<SourcePlan> {
    let mut plans = Vec::new();
    for s in range {
        let mut pops: Vec<(u32, bool)> = Vec::new();
        let mut head = None;
        // Walk the queue from the front; replayed pops consume exactly
        // the prefix this scan skipped.
        for &pid in view.queues[s].iter() {
            let p = &view.packets[pid as usize];
            let stale =
                view.dedup && p.sent == 0 && view.packets[p.logical as usize].delivered_once;
            let unroutable = !stale && p.sent == 0 && view.route_dead_or_missing(p);
            if stale {
                pops.push((pid, false));
                continue;
            }
            if unroutable {
                pops.push((pid, true));
                continue;
            }
            let (c0, v0) = view.first_vid(p);
            let st = &view.chans[v0 as usize];
            let free = view.credits[v0 as usize] > 0;
            let (ok, stall) = if p.sent == 0 {
                (st.owner == NO_PKT && free, st.owner == NO_PKT && !free)
            } else {
                (free, !free)
            };
            head = Some((pid, c0, ok, stall));
            break;
        }
        if !pops.is_empty() || head.is_some() {
            plans.push(SourcePlan {
                src: s as u32,
                pops,
                head,
            });
        }
    }
    plans
}

impl<'a> Engine<'a> {
    /// The immutable scan view over current engine state.
    pub(super) fn scan_view(&self) -> ScanView<'_, 'a> {
        ScanView {
            net: self.net,
            epochs: &self.epochs,
            ends: self.ends.as_deref(),
            chans: &self.chans,
            packets: &self.packets,
            queues: &self.queues,
            chan_dead: &self.chan_dead,
            credits: &self.credits,
            vcs: self.vcs as u32,
            vcmap: self.vcmap.as_ref(),
            dedup: self.cfg.dedup,
            tel_on: self.tel.is_some(),
        }
    }

    /// One cycle of the sharded engine: fork the decision scans across
    /// worker threads, then replay their plans serially in canonical
    /// order. Bit-identical to [`Engine::step`] for every `threads`
    /// value.
    pub(super) fn step_parallel(&mut self, cycle: u64) -> usize {
        let nch = self.chans.len();
        let nsrc = self.queues.len();
        let shards = effective_shards(self.cfg.threads, nch);
        let view = self.scan_view();
        let parts: Vec<(ChannelScan, Vec<SourcePlan>)> = if shards == 1 {
            vec![(scan_channels(&view, 0..nch), scan_sources(&view, 0..nsrc))]
        } else {
            crossbeam::thread::scope(|scope| {
                let view = &view;
                let handles: Vec<_> = (0..shards)
                    .map(|i| {
                        scope.spawn(move |_| {
                            (
                                scan_channels(view, chunk(nch, shards, i)),
                                scan_sources(view, chunk(nsrc, shards, i)),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard scan worker panicked"))
                    .collect()
            })
            .expect("shard scan scope")
        };

        // Merge in shard order (= channel/source order). The deferred
        // scan telemetry replays first: the oracle emits every
        // scan-phase `blocked` before any injection-phase event.
        let mut contenders: Vec<(u32, u32, u32)> = Vec::new();
        let mut ejects: Vec<u32> = Vec::new();
        let mut body_moves: Vec<(u32, u32)> = Vec::new();
        let mut alloc_reqs: Vec<(u32, u32)> = Vec::new();
        let mut plans: Vec<SourcePlan> = Vec::new();
        let mut credit_stalls = 0u64;
        for (scan, mut shard_plans) in parts {
            if let Some(t) = self.tel.as_mut() {
                for &(owner, wanted, stall) in &scan.blocked {
                    if stall {
                        t.credit_stalled(wanted);
                    }
                    t.blocked(cycle, owner, wanted);
                }
            }
            credit_stalls += scan.credit_stalls;
            contenders.extend(scan.contenders);
            ejects.extend(scan.ejects);
            body_moves.extend(scan.body_moves);
            alloc_reqs.extend(scan.alloc_reqs);
            plans.append(&mut shard_plans);
        }

        // Injection replay in source order: queue pops, retry bookings
        // (the decision phase's only RNG draws, now in the oracle's
        // draw order), and head verdicts.
        let mut injections: Vec<usize> = Vec::new();
        for plan in plans {
            let s = plan.src as usize;
            for (pid, unroutable) in plan.pops {
                let popped = self.queues[s].pop_front();
                debug_assert_eq!(popped, Some(pid), "replayed pop diverged from the scan");
                if unroutable {
                    self.retire_or_retry(pid, cycle, false);
                }
            }
            if let Some((pid, c0, ok, stall)) = plan.head {
                if self.tel.is_some() {
                    let p = &self.packets[pid as usize];
                    contenders.push((c0.0, p.src, p.dst));
                }
                if ok {
                    injections.push(s);
                } else {
                    if stall {
                        credit_stalls += 1;
                        if let Some(t) = self.tel.as_mut() {
                            t.credit_stalled(c0);
                        }
                    }
                    if let Some(t) = self.tel.as_mut() {
                        t.blocked(cycle, pid, c0);
                    }
                }
            }
        }

        self.commit_step(
            cycle,
            alloc_reqs,
            contenders,
            ejects,
            body_moves,
            injections,
            credit_stalls,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::engine::Engine;
    use crate::fault::FaultEvent;
    use crate::stats::SimResult;
    use crate::traffic::{DstPattern, Workload};
    use fractanet_route::dor::mesh_xy_routes;
    use fractanet_route::RouteSet;
    use fractanet_telemetry::Telemetry;
    use fractanet_topo::{Mesh2D, Topology};
    use std::sync::Arc;

    #[test]
    fn chunks_partition_exactly() {
        for n in [0usize, 1, 7, 64, 129, 10_000] {
            for shards in 1..=9 {
                let mut covered = 0usize;
                for i in 0..shards {
                    let r = super::chunk(n, shards, i);
                    assert_eq!(r.start, covered, "n={n} shards={shards} i={i}");
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} shards={shards}");
            }
        }
    }

    /// A faulted, telemetry-on, table-routed mesh run at the given
    /// thread count: kill+repair on one link, a permanent kill on
    /// another (triggering a mid-run epoch install via the repairer),
    /// under Bernoulli load. Big enough (8×8 ⇒ >64 channels) that
    /// `threads > 1` genuinely forms multiple shards.
    fn mesh_run(threads: usize) -> SimResult {
        let m = Mesh2D::new(8, 8, 1, 6).unwrap();
        let routes = Arc::new(mesh_xy_routes(&m));
        let dense = RouteSet::from_table(m.net(), m.end_nodes(), &routes).expect("XY routes trace");
        let transient = dense.path(0, 9)[1].link();
        let permanent = dense.path(63, 54)[1].link();
        let cfg = SimConfig::default()
            .with_packet_flits(8)
            .with_max_cycles(3_000)
            .with_seed(0xD157)
            .with_telemetry(Telemetry::recording())
            .with_fault(FaultEvent::kill_link(transient, 60).transient(600))
            .with_fault(FaultEvent::kill_link(permanent, 150))
            .with_threads(threads);
        let repair = routes.clone();
        Engine::with_tables(m.net(), m.end_nodes(), routes, cfg)
            .with_table_repairer(move |_, _| Some(repair.clone()))
            .run(Workload::Bernoulli {
                injection_rate: 0.3,
                pattern: DstPattern::Uniform,
                until_cycle: 1_500,
            })
    }

    #[test]
    fn parallel_matches_serial_on_faulted_mesh() {
        let oracle = format!("{:?}", mesh_run(1));
        for threads in [2, 4, 8] {
            let got = format!("{:?}", mesh_run(threads));
            assert_eq!(oracle, got, "threads={threads} diverged from the oracle");
        }
    }

    #[test]
    fn mesh_run_is_nontrivial() {
        // Guard the parity fixture itself: it must actually deliver
        // traffic, apply both faults, and record telemetry, or the
        // agreement test proves nothing.
        let r = mesh_run(4);
        assert!(r.delivered > 50, "delivered {}", r.delivered);
        assert!(r.recovery.faults_applied >= 2);
        assert!(r.recovery.repairs_installed >= 1, "epoch install missing");
        let tel = r.telemetry.expect("telemetry was on");
        assert!(tel.events_seen > 0);
    }
}
