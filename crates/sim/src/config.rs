//! Simulator configuration.

use crate::fault::{FaultEvent, RetryPolicy};
use fractanet_telemetry::{MetricsConfig, Telemetry};

/// Tunables for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Input-FIFO depth per channel, in flits (the ServerNet router's
    /// per-port input buffer). [`SimConfig::INFINITE_DEPTH`] removes
    /// the bound entirely — useful for isolating routing-level effects
    /// from buffer-level backpressure.
    pub buffer_depth: u32,
    /// Credit round-trip delay in cycles. The downstream FIFO returns
    /// one credit per departing flit; with delay `d` the upstream
    /// arbiter sees that credit `d + 1` cycles after the flit leaves
    /// (one cycle of forward latency is implicit in the commit
    /// ordering). `0` — the default — reproduces the historical
    /// instantaneous start-of-cycle space check bit-for-bit.
    pub credit_delay: u64,
    /// Virtual channels multiplexed over each physical channel. `1`
    /// (the default) is plain wormhole; values above 1 require a VC
    /// map installed via [`crate::engine::Engine::with_vc_map`].
    pub vcs: u8,
    /// Flits per packet (a 64-byte ServerNet packet at one byte per
    /// flit cycle ≈ 16–64 flits; 16 keeps tests fast).
    pub packet_flits: u32,
    /// Hard stop, in cycles.
    pub max_cycles: u64,
    /// Consecutive all-idle cycles (with traffic in flight) before the
    /// wait-for graph is consulted for a deadlock verdict.
    pub stall_threshold: u64,
    /// Cycles of warm-up excluded from latency statistics.
    pub warmup_cycles: u64,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
    /// Scheduled link/router outages, applied live during the run.
    pub faults: Vec<FaultEvent>,
    /// End-to-end retry discipline for packets lost to outages.
    pub retry: RetryPolicy,
    /// Flit-level tracing and channel telemetry (off by default; when
    /// off the engine creates no recorder and pays one predictable
    /// branch per instrumentation site).
    pub telemetry: Telemetry,
    /// Live metrics: counters, sliding-window quantile sketches and
    /// per-traffic-class SLO accounting, sampled every N cycles at the
    /// serial commit point (off by default; provably inert — results
    /// are bit-identical with metrics on or off at every thread
    /// width).
    pub metrics: MetricsConfig,
    /// When `true`, a sender whose ACK timeout expires while its worm
    /// is still in flight speculatively retransmits a *copy* (the
    /// ServerNet timeout race) instead of waiting for a teardown. Off
    /// by default: only the chaos/gray-failure paths exercise it.
    pub ack_retransmit: bool,
    /// Destination-side duplicate suppression by per-pair sequence
    /// number. On by default; disabling it models a broken end-node
    /// (double deliveries) and exists for the chaos harness to shrink
    /// against.
    pub dedup: bool,
    /// Worker threads for the sharded parallel engine. `1` (the
    /// default) runs the classic single-thread step; values above 1
    /// shard the per-cycle channel and injection scans across scoped
    /// worker threads. Results are bit-identical for every thread
    /// count — the knob trades wall-clock for cores, never semantics.
    /// Tiny fabrics are simulated on fewer shards than requested (one
    /// shard per ~64 channels) so thread spawn cost cannot dominate.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 4,
            credit_delay: 0,
            vcs: 1,
            packet_flits: 16,
            max_cycles: 50_000,
            stall_threshold: 1_000,
            warmup_cycles: 0,
            seed: 0xF2AC7A,
            faults: Vec::new(),
            retry: RetryPolicy::default(),
            telemetry: Telemetry::off(),
            metrics: MetricsConfig::off(),
            ack_retransmit: false,
            dedup: true,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// Sentinel FIFO depth meaning "unbounded buffers".
    pub const INFINITE_DEPTH: u32 = u32::MAX;

    /// Builder-style buffer depth.
    pub fn with_buffer_depth(mut self, depth: u32) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Builder-style unbounded input FIFOs.
    pub fn with_infinite_buffers(mut self) -> Self {
        self.buffer_depth = Self::INFINITE_DEPTH;
        self
    }

    /// Builder-style credit round-trip delay.
    pub fn with_credit_delay(mut self, cycles: u64) -> Self {
        self.credit_delay = cycles;
        self
    }

    /// Builder-style virtual-channel count. `0` is normalized to `1`.
    pub fn with_vcs(mut self, vcs: u8) -> Self {
        self.vcs = vcs.max(1);
        self
    }

    /// Builder-style packet length.
    pub fn with_packet_flits(mut self, flits: u32) -> Self {
        self.packet_flits = flits;
        self
    }

    /// Builder-style cycle limit.
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Builder-style warm-up window.
    pub fn with_warmup(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds one scheduled outage.
    pub fn with_fault(mut self, fault: FaultEvent) -> Self {
        self.faults.push(fault);
        self
    }

    /// Replaces the whole fault schedule.
    pub fn with_faults(mut self, faults: Vec<FaultEvent>) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builder-style live-metrics configuration.
    pub fn with_metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builder-style speculative ACK-timeout retransmission.
    pub fn with_ack_retransmit(mut self, on: bool) -> Self {
        self.ack_retransmit = on;
        self
    }

    /// Builder-style duplicate suppression (testing-only to disable).
    pub fn with_dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Builder-style worker-thread count for the sharded engine.
    /// `0` is normalized to `1` (the serial oracle).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.buffer_depth >= 1);
        assert!(c.packet_flits >= 2, "need at least head + tail");
        assert!(c.stall_threshold < c.max_cycles);
        assert!(!c.ack_retransmit, "speculative retransmit is opt-in");
        assert!(c.dedup, "duplicate suppression is on by default");
        assert_eq!(c.threads, 1, "the serial oracle is the default");
        assert_eq!(c.credit_delay, 0, "instantaneous credits by default");
        assert_eq!(c.vcs, 1, "plain wormhole by default");
    }

    #[test]
    fn vcs_builder_normalizes_zero() {
        assert_eq!(SimConfig::default().with_vcs(0).vcs, 1);
        assert_eq!(SimConfig::default().with_vcs(3).vcs, 3);
    }

    #[test]
    fn infinite_depth_is_the_sentinel() {
        let c = SimConfig::default().with_infinite_buffers();
        assert_eq!(c.buffer_depth, SimConfig::INFINITE_DEPTH);
        assert_eq!(SimConfig::default().with_credit_delay(3).credit_delay, 3);
    }

    #[test]
    fn threads_builder_normalizes_zero() {
        assert_eq!(SimConfig::default().with_threads(0).threads, 1);
        assert_eq!(SimConfig::default().with_threads(8).threads, 8);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::default()
            .with_buffer_depth(8)
            .with_packet_flits(32)
            .with_max_cycles(1_000)
            .with_warmup(100)
            .with_seed(7);
        assert_eq!(c.buffer_depth, 8);
        assert_eq!(c.packet_flits, 32);
        assert_eq!(c.max_cycles, 1_000);
        assert_eq!(c.warmup_cycles, 100);
        assert_eq!(c.seed, 7);
    }
}
