//! Live fault injection: schedules of link/router outages applied
//! mid-simulation, and the source-side retry policy that recovers from
//! them.
//!
//! ServerNet's end-to-end discipline (Horst §2) is that the *fabric*
//! only guarantees deadlock freedom; loss recovery lives at the edges:
//! a sender that misses an acknowledgment within a timeout retransmits,
//! backs off exponentially, and after enough failures escalates
//! (ultimately failing over to the second fabric). [`RetryPolicy`]
//! models that discipline; [`FaultEvent`] models the outages.

use fractanet_graph::{LinkId, NodeId};

/// Which component an outage takes down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A full-duplex cable dies (both channels).
    Link(LinkId),
    /// A router dies: every attached link goes with it.
    Router(NodeId),
}

/// One scheduled outage. Applied at the *start* of `at_cycle`; a
/// transient fault is undone at the start of `repair_cycle`.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    /// Cycle the component dies.
    pub at_cycle: u64,
    /// What dies.
    pub kind: FaultKind,
    /// Cycle the component comes back, if the fault is transient.
    pub repair_cycle: Option<u64>,
}

impl FaultEvent {
    /// A permanent link kill.
    pub fn kill_link(link: LinkId, at_cycle: u64) -> Self {
        FaultEvent {
            at_cycle,
            kind: FaultKind::Link(link),
            repair_cycle: None,
        }
    }

    /// A permanent router kill.
    pub fn kill_router(router: NodeId, at_cycle: u64) -> Self {
        FaultEvent {
            at_cycle,
            kind: FaultKind::Router(router),
            repair_cycle: None,
        }
    }

    /// Marks the fault transient, repaired at `repair_cycle`.
    pub fn transient(mut self, repair_cycle: u64) -> Self {
        debug_assert!(repair_cycle > self.at_cycle, "repair must follow the fault");
        self.repair_cycle = Some(repair_cycle);
        self
    }

    /// Whether the component never comes back.
    pub fn is_permanent(&self) -> bool {
        self.repair_cycle.is_none()
    }
}

/// Source-side recovery parameters (ServerNet end-to-end retry).
///
/// A packet torn down by an outage (or unroutable when it reaches the
/// head of its injection queue) is re-queued after
/// `ack_timeout + backoff_base * 2^attempt + jitter` cycles, where
/// `jitter` is drawn uniformly from `[0, backoff_base]` on a stream
/// seeded by `jitter_seed` (runs stay deterministic). After
/// `max_retries` failed attempts the packet is abandoned and reported
/// in [`RecoveryStats::abandoned`](crate::stats::RecoveryStats) — the
/// upper (dual-fabric) layer treats those as failover candidates.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Cycles the sender waits for an acknowledgment before declaring
    /// the attempt lost.
    pub ack_timeout: u64,
    /// Attempts after the first before the sender gives up.
    pub max_retries: u32,
    /// Base of the exponential backoff, in cycles.
    pub backoff_base: u64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_timeout: 64,
            max_retries: 4,
            backoff_base: 16,
            jitter_seed: 0x1A77,
        }
    }
}

impl RetryPolicy {
    /// Backoff component (without jitter) of the delay before retry
    /// attempt `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        self.ack_timeout + self.backoff_base.saturating_mul(1u64 << exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_builder() {
        let f = FaultEvent::kill_link(LinkId(3), 100).transient(250);
        assert_eq!(f.repair_cycle, Some(250));
        assert!(!f.is_permanent());
        assert!(FaultEvent::kill_router(NodeId(1), 5).is_permanent());
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let p = RetryPolicy {
            ack_timeout: 10,
            max_retries: 8,
            backoff_base: 4,
            jitter_seed: 0,
        };
        assert_eq!(p.backoff(1), 14);
        assert_eq!(p.backoff(2), 18);
        assert_eq!(p.backoff(3), 26);
        // Saturates instead of overflowing for absurd attempt counts.
        assert!(p.backoff(60) > p.backoff(3));
    }
}
