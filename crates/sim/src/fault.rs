//! Live fault injection: schedules of link/router outages applied
//! mid-simulation, and the source-side retry policy that recovers from
//! them.
//!
//! ServerNet's end-to-end discipline (Horst §2) is that the *fabric*
//! only guarantees deadlock freedom; loss recovery lives at the edges:
//! a sender that misses an acknowledgment within a timeout retransmits,
//! backs off exponentially, and after enough failures escalates
//! (ultimately failing over to the second fabric). [`RetryPolicy`]
//! models that discipline; [`FaultEvent`] models the outages.

use fractanet_graph::{LinkId, NodeId};

/// Which component an outage takes down — or degrades.
///
/// `Link`/`Router` are *binary* faults: the component is simply gone
/// and the topology changes. The remaining variants are *gray*
/// failures (Horst §2's real-world regime): the link stays in the
/// topology but misbehaves, so healing never fires and recovery rides
/// entirely on the end-to-end CRC/NACK/retry discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A full-duplex cable dies (both channels).
    Link(LinkId),
    /// A router dies: every attached link goes with it.
    Router(NodeId),
    /// A flaky cable: each cycle, any worm occupying one of the link's
    /// channels is dropped with probability `drop_per_mille`/1000
    /// (seeded from the sim seed; deterministic). A drop tears the
    /// worm down exactly like a transient outage hit.
    FlakyLink {
        /// The misbehaving cable.
        link: LinkId,
        /// Per-cycle, per-occupied-channel drop probability in ‰.
        drop_per_mille: u16,
    },
    /// A corrupting cable: worms crossing it deliver, but arrive with
    /// a bad CRC and are NACKed at the destination ("This Packet
    /// Bad"), feeding the retry machinery immediately.
    CorruptLink {
        /// The misbehaving cable.
        link: LinkId,
        /// Per-cycle, per-occupied-channel corruption probability in ‰.
        per_mille: u16,
    },
    /// A brownout: the link cycles `down` cycles dead, `up` cycles
    /// alive, from `at_cycle` until `repair_cycle` (or forever). Each
    /// down phase is a transient outage — too fast for healing, so the
    /// retry layer carries the load.
    Brownout {
        /// The cable that browns out.
        link: LinkId,
        /// Length of each dead phase, in cycles (must be > 0).
        down: u64,
        /// Length of each alive phase, in cycles (must be > 0).
        up: u64,
    },
}

/// One scheduled outage. Applied at the *start* of `at_cycle`; a
/// transient fault is undone at the start of `repair_cycle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the component dies.
    pub at_cycle: u64,
    /// What dies.
    pub kind: FaultKind,
    /// Cycle the component comes back, if the fault is transient.
    pub repair_cycle: Option<u64>,
}

impl FaultEvent {
    /// A permanent link kill.
    pub fn kill_link(link: LinkId, at_cycle: u64) -> Self {
        FaultEvent {
            at_cycle,
            kind: FaultKind::Link(link),
            repair_cycle: None,
        }
    }

    /// A permanent router kill.
    pub fn kill_router(router: NodeId, at_cycle: u64) -> Self {
        FaultEvent {
            at_cycle,
            kind: FaultKind::Router(router),
            repair_cycle: None,
        }
    }

    /// A flaky link dropping `drop_per_mille`‰ of occupied cycles,
    /// starting at `at_cycle`. Transient when given a `repair_cycle`.
    pub fn flaky_link(link: LinkId, drop_per_mille: u16, at_cycle: u64) -> Self {
        debug_assert!(drop_per_mille <= 1000, "probability is in per-mille");
        FaultEvent {
            at_cycle,
            kind: FaultKind::FlakyLink {
                link,
                drop_per_mille,
            },
            repair_cycle: None,
        }
    }

    /// A corrupting link flipping bits in `per_mille`‰ of occupied
    /// cycles, starting at `at_cycle`.
    pub fn corrupt_link(link: LinkId, per_mille: u16, at_cycle: u64) -> Self {
        debug_assert!(per_mille <= 1000, "probability is in per-mille");
        FaultEvent {
            at_cycle,
            kind: FaultKind::CorruptLink { link, per_mille },
            repair_cycle: None,
        }
    }

    /// A brownout: `link` alternates `down` cycles dead / `up` cycles
    /// alive starting at `at_cycle` (use [`transient`](Self::transient)
    /// to bound it; otherwise it oscillates to the end of the run).
    pub fn brownout(link: LinkId, down: u64, up: u64, at_cycle: u64) -> Self {
        debug_assert!(down > 0 && up > 0, "brownout phases must be nonzero");
        FaultEvent {
            at_cycle,
            kind: FaultKind::Brownout { link, down, up },
            repair_cycle: None,
        }
    }

    /// Whether this is a gray (non-topology-changing) fault.
    pub fn is_gray(&self) -> bool {
        matches!(
            self.kind,
            FaultKind::FlakyLink { .. }
                | FaultKind::CorruptLink { .. }
                | FaultKind::Brownout { .. }
        )
    }

    /// Marks the fault transient, repaired at `repair_cycle`.
    pub fn transient(mut self, repair_cycle: u64) -> Self {
        debug_assert!(repair_cycle > self.at_cycle, "repair must follow the fault");
        self.repair_cycle = Some(repair_cycle);
        self
    }

    /// Whether the component never comes back.
    pub fn is_permanent(&self) -> bool {
        self.repair_cycle.is_none()
    }
}

/// Source-side recovery parameters (ServerNet end-to-end retry).
///
/// A packet torn down by an outage (or unroutable when it reaches the
/// head of its injection queue) is re-queued after
/// `ack_timeout + backoff_base * 2^attempt + jitter` cycles, where
/// `jitter` is drawn uniformly from `[0, backoff_base]` on a stream
/// seeded by `jitter_seed` (runs stay deterministic). After
/// `max_retries` failed attempts the packet is abandoned and reported
/// in [`RecoveryStats::abandoned`](crate::stats::RecoveryStats) — the
/// upper (dual-fabric) layer treats those as failover candidates.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Cycles the sender waits for an acknowledgment before declaring
    /// the attempt lost.
    pub ack_timeout: u64,
    /// Attempts after the first before the sender gives up.
    pub max_retries: u32,
    /// Base of the exponential backoff, in cycles.
    pub backoff_base: u64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_timeout: 64,
            max_retries: 4,
            backoff_base: 16,
            jitter_seed: 0x1A77,
        }
    }
}

impl RetryPolicy {
    /// Backoff component (without jitter) of the delay before retry
    /// attempt `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        self.ack_timeout + self.backoff_base.saturating_mul(1u64 << exp)
    }

    /// Backoff before retry attempt `attempt` when the loss was
    /// *reported* rather than timed out: a NACK ("This Packet Bad")
    /// arrives immediately, so the `ack_timeout` component is skipped
    /// and only the exponential spacing remains.
    pub fn nack_backoff(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        self.backoff_base.saturating_mul(1u64 << exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_builder() {
        let f = FaultEvent::kill_link(LinkId(3), 100).transient(250);
        assert_eq!(f.repair_cycle, Some(250));
        assert!(!f.is_permanent());
        assert!(FaultEvent::kill_router(NodeId(1), 5).is_permanent());
    }

    #[test]
    fn gray_builders_and_classification() {
        let f = FaultEvent::flaky_link(LinkId(2), 50, 10);
        assert!(f.is_gray());
        assert!(f.is_permanent());
        let c = FaultEvent::corrupt_link(LinkId(2), 100, 10).transient(500);
        assert!(c.is_gray());
        assert!(!c.is_permanent());
        let b = FaultEvent::brownout(LinkId(0), 20, 30, 100);
        assert!(b.is_gray());
        assert!(!FaultEvent::kill_link(LinkId(0), 5).is_gray());
    }

    #[test]
    fn nack_backoff_skips_the_ack_timeout() {
        let p = RetryPolicy {
            ack_timeout: 10,
            max_retries: 8,
            backoff_base: 4,
            jitter_seed: 0,
        };
        assert_eq!(p.nack_backoff(1), 4);
        assert_eq!(p.nack_backoff(2), 8);
        assert_eq!(p.nack_backoff(3), 16);
        // Difference from the timed-out path is exactly the ack wait.
        assert_eq!(p.backoff(3) - p.nack_backoff(3), p.ack_timeout);
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let p = RetryPolicy {
            ack_timeout: 10,
            max_retries: 8,
            backoff_base: 4,
            jitter_seed: 0,
        };
        assert_eq!(p.backoff(1), 14);
        assert_eq!(p.backoff(2), 18);
        assert_eq!(p.backoff(3), 26);
        // Saturates instead of overflowing for absurd attempt counts.
        assert!(p.backoff(60) > p.backoff(3));
    }
}
