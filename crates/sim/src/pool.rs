//! A small deterministic worker pool.
//!
//! [`parallel_map`] maps a pure-by-index function over `0..n` on
//! crossbeam scoped threads and returns results **in index order**, so
//! callers get the exact output a serial `(0..n).map(f).collect()`
//! would produce — the pool trades wall-clock for cores, never
//! determinism. Work is distributed by an atomic cursor (not
//! pre-chunked), so uneven item costs self-balance. The offered-load
//! sweeps ([`crate::sweep`]) and the chaos campaign dispatcher build
//! on it.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Computes `f(0), f(1), …, f(n-1)` on up to `threads` scoped worker
/// threads and returns the results in index order. `threads` is
/// clamped to `1..=n`; with one worker (or `n <= 1`) the map runs
/// inline on the caller's thread. `f` must not depend on evaluation
/// order — each index's seed/config must derive from the index alone.
///
/// Panics in `f` propagate to the caller (the scope re-raises them),
/// so a failing item fails the whole map rather than vanishing.
pub fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                results.lock()[i] = Some(v);
            });
        }
    })
    .expect("parallel_map worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|v| v.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_at_any_width() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [0, 1, 2, 4, 9, 200] {
            assert_eq!(
                parallel_map(threads, 100, |i| i * i),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 7), vec![7]);
    }
}
