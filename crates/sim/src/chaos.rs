//! Deterministic chaos primitives: seeded fault-schedule sampling,
//! invariant naming, greedy delta-shrinking, and a replayable JSON
//! scenario format.
//!
//! The pieces here are deliberately topology-agnostic — a
//! [`ChaosSpace`] is just the set of components eligible for faults
//! and a time horizon — so the same machinery drives the `fractanet
//! chaos` campaign runner and any future harness. Everything is
//! deterministic: the schedule is a pure function of `(space, seed)`,
//! and a shrunk counterexample serializes to JSON that replays
//! bit-identically (the vendored serde shim has no `Deserialize`, so
//! parsing is hand-rolled below).

use crate::fault::{FaultEvent, FaultKind};
use crate::jsonin::{get, get_num, get_str, json_parse, Json};
use fractanet_graph::json::{JsonArray, JsonObject};
use fractanet_graph::{LinkId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The components a chaos campaign may break, and when.
#[derive(Clone, Debug)]
pub struct ChaosSpace {
    /// Links eligible for kills, flakiness, corruption, brownouts.
    pub links: Vec<LinkId>,
    /// Routers eligible for (transient) kills.
    pub routers: Vec<NodeId>,
    /// Faults land in `[0, horizon)`; repairs may extend past it.
    pub horizon: u64,
}

/// Samples one fault schedule: between 1 and `max_events` events,
/// drawn from every fault class. Permanent faults are limited to two
/// link kills (so healing has something to certify without routinely
/// partitioning small fabrics); router kills are always transient.
/// Pure in `(space, seed)`.
pub fn sample_schedule(space: &ChaosSpace, seed: u64, max_events: usize) -> Vec<FaultEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..=max_events.max(1));
    let mut out = Vec::with_capacity(n);
    let mut permanents = 0usize;
    for _ in 0..n {
        if space.links.is_empty() {
            break;
        }
        let link = space.links[rng.gen_range(0..space.links.len())];
        let at = rng.gen_range(0..space.horizon.max(1));
        let class = rng.gen_range(0u32..100);
        let ev = match class {
            // Transient link kill.
            0..=24 => FaultEvent::kill_link(link, at)
                .transient(at + rng.gen_range(space.horizon / 8..=space.horizon / 2).max(1)),
            // Permanent link kill (capped).
            25..=39 if permanents < 2 => {
                permanents += 1;
                FaultEvent::kill_link(link, at)
            }
            25..=39 => FaultEvent::kill_link(link, at).transient(at + space.horizon / 4 + 1),
            // Transient router kill.
            40..=49 if !space.routers.is_empty() => {
                let r = space.routers[rng.gen_range(0..space.routers.len())];
                FaultEvent::kill_router(r, at).transient(at + space.horizon / 4 + 1)
            }
            40..=49 => FaultEvent::kill_link(link, at).transient(at + space.horizon / 4 + 1),
            // Flaky link.
            50..=69 => FaultEvent::flaky_link(link, rng.gen_range(10..=200), at)
                .transient(at + rng.gen_range(space.horizon / 8..=space.horizon / 2).max(1)),
            // Corrupting link.
            70..=89 => FaultEvent::corrupt_link(link, rng.gen_range(10..=200), at)
                .transient(at + rng.gen_range(space.horizon / 8..=space.horizon / 2).max(1)),
            // Brownout.
            _ => {
                let down = rng.gen_range(8..=64);
                let up = rng.gen_range(8..=64);
                FaultEvent::brownout(link, down, up, at)
                    .transient(at + rng.gen_range(space.horizon / 8..=space.horizon / 2).max(1))
            }
        };
        out.push(ev);
    }
    out.sort_by_key(|e| e.at_cycle);
    out
}

/// The end-to-end guarantees a chaos run checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Every generated packet is delivered exactly once or explicitly
    /// abandoned to the failover layer — never lost, never duplicated.
    ExactlyOnce,
    /// Neither fabric reaches a wormhole-deadlock verdict.
    NoDeadlock,
    /// After permanent faults, healed tables pass certification
    /// against the final dead mask.
    HealCertifies,
    /// Telemetry recovery spans telescope exactly to
    /// `time_to_recover`.
    SpanAccounting,
}

impl Invariant {
    /// Stable string tag (serialized into scenarios).
    pub fn tag(&self) -> &'static str {
        match self {
            Invariant::ExactlyOnce => "exactly_once",
            Invariant::NoDeadlock => "no_deadlock",
            Invariant::HealCertifies => "heal_certifies",
            Invariant::SpanAccounting => "span_accounting",
        }
    }

    /// Inverse of [`tag`](Invariant::tag).
    pub fn from_tag(tag: &str) -> Option<Invariant> {
        Some(match tag {
            "exactly_once" => Invariant::ExactlyOnce,
            "no_deadlock" => Invariant::NoDeadlock,
            "heal_certifies" => Invariant::HealCertifies,
            "span_accounting" => Invariant::SpanAccounting,
            _ => return None,
        })
    }
}

/// One observed invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which guarantee broke.
    pub invariant: Invariant,
    /// Human-readable evidence (counter values, verdict, …).
    pub detail: String,
}

/// Greedy delta-shrinking: repeatedly tries dropping each event from
/// the schedule, keeping any removal under which `violates` still
/// reports the failure, until no single removal preserves it. The
/// result is 1-minimal — every remaining event is necessary — and the
/// closure is called O(n²) times in the worst case, which is fine for
/// the ≤ handful-of-events schedules chaos campaigns sample.
pub fn shrink<F>(schedule: &[FaultEvent], mut violates: F) -> Vec<FaultEvent>
where
    F: FnMut(&[FaultEvent]) -> bool,
{
    let mut cur: Vec<FaultEvent> = schedule.to_vec();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < cur.len() {
            if cur.len() == 1 {
                break;
            }
            let mut cand = cur.clone();
            cand.remove(i);
            if violates(&cand) {
                cur = cand;
                reduced = true;
                // Restart from the front: earlier events may now be
                // removable too.
                i = 0;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return cur;
        }
    }
}

/// A replayable chaos counterexample: the topology spec, the engine
/// seed, the (shrunk) fault schedule, and which invariant it broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Topology spec string (`fat-fractahedron:2`, `mesh:6x6`, …).
    pub spec: String,
    /// Engine seed of the violating run.
    pub seed: u64,
    /// Seed the schedule was originally sampled from (provenance).
    pub schedule_seed: u64,
    /// Tag of the violated invariant ([`Invariant::tag`]).
    pub invariant: String,
    /// The minimal fault schedule reproducing the violation.
    pub faults: Vec<FaultEvent>,
    /// Per-port input-FIFO depth override the campaign ran with
    /// (`None` = the engine default). Serialized only when set, so
    /// pre-credit scenario files parse unchanged.
    pub fifo_depth: Option<u32>,
    /// Credit round-trip delay the campaign ran with (0 = default).
    pub credit_delay: u64,
}

/// Serializes one fault event as a JSON object — the shape shared by
/// chaos scenarios and metrics trace files.
pub fn fault_to_json(f: &FaultEvent) -> JsonObject {
    let o = JsonObject::new().field_num("at", f.at_cycle);
    let o = match f.kind {
        FaultKind::Link(l) => o.field_str("kind", "link").field_num("link", l.index()),
        FaultKind::Router(r) => o.field_str("kind", "router").field_num("router", r.index()),
        FaultKind::FlakyLink {
            link,
            drop_per_mille,
        } => o
            .field_str("kind", "flaky")
            .field_num("link", link.index())
            .field_num("pm", drop_per_mille),
        FaultKind::CorruptLink { link, per_mille } => o
            .field_str("kind", "corrupt")
            .field_num("link", link.index())
            .field_num("pm", per_mille),
        FaultKind::Brownout { link, down, up } => o
            .field_str("kind", "brownout")
            .field_num("link", link.index())
            .field_num("down", down)
            .field_num("up", up),
    };
    match f.repair_cycle {
        Some(r) => o.field_num("repair", r),
        None => o,
    }
}

impl Scenario {
    /// Serializes to compact JSON (one object, `faults` array inside).
    pub fn to_json(&self) -> String {
        let mut arr = JsonArray::new();
        for f in &self.faults {
            arr.push_raw(&fault_to_json(f).build());
        }
        let mut o = JsonObject::new()
            .field_str("spec", &self.spec)
            .field_num("seed", self.seed)
            .field_num("schedule_seed", self.schedule_seed)
            .field_str("invariant", &self.invariant);
        if let Some(d) = self.fifo_depth {
            o = o.field_num("fifo_depth", d as u64);
        }
        if self.credit_delay != 0 {
            o = o.field_num("credit_delay", self.credit_delay);
        }
        o.field_raw("faults", &arr.build()).build()
    }

    /// Parses the format [`to_json`](Scenario::to_json) writes, via
    /// the crate's minimal JSON reader (`jsonin`).
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        let v = json_parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let spec = get_str(obj, "spec")?;
        let seed = get_num(obj, "seed")?;
        let schedule_seed = get_num(obj, "schedule_seed")?;
        let invariant = get_str(obj, "invariant")?;
        Invariant::from_tag(&invariant)
            .ok_or_else(|| format!("unknown invariant {invariant:?}"))?;
        let faults_v = get(obj, "faults")?;
        let arr = faults_v.as_arr().ok_or("faults must be an array")?;
        let mut faults = Vec::with_capacity(arr.len());
        for item in arr {
            let fo = item.as_obj().ok_or("fault must be an object")?;
            faults.push(fault_from_json(fo)?);
        }
        Ok(Scenario {
            spec,
            seed,
            schedule_seed,
            invariant,
            faults,
            fifo_depth: get_num(obj, "fifo_depth").ok().map(|d| d as u32),
            credit_delay: get_num(obj, "credit_delay").unwrap_or(0),
        })
    }
}

/// Parses one fault object in the [`fault_to_json`] shape.
pub(crate) fn fault_from_json(fo: &[(String, Json)]) -> Result<FaultEvent, String> {
    let at = get_num(fo, "at")?;
    let kind = get_str(fo, "kind")?;
    let kind = match kind.as_str() {
        "link" => FaultKind::Link(LinkId(get_num(fo, "link")? as u32)),
        "router" => FaultKind::Router(NodeId(get_num(fo, "router")? as u32)),
        "flaky" => FaultKind::FlakyLink {
            link: LinkId(get_num(fo, "link")? as u32),
            drop_per_mille: get_num(fo, "pm")? as u16,
        },
        "corrupt" => FaultKind::CorruptLink {
            link: LinkId(get_num(fo, "link")? as u32),
            per_mille: get_num(fo, "pm")? as u16,
        },
        "brownout" => FaultKind::Brownout {
            link: LinkId(get_num(fo, "link")? as u32),
            down: get_num(fo, "down")?,
            up: get_num(fo, "up")?,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    let repair_cycle = match get(fo, "repair") {
        Ok(v) => Some(v.as_num().ok_or("repair must be a number")?),
        Err(_) => None,
    };
    Ok(FaultEvent {
        at_cycle: at,
        kind,
        repair_cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ChaosSpace {
        ChaosSpace {
            links: (0..12).map(LinkId).collect(),
            routers: (0..4).map(NodeId).collect(),
            horizon: 1_000,
        }
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let s = space();
        let a = sample_schedule(&s, 42, 6);
        let b = sample_schedule(&s, 42, 6);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 6);
        assert!(a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        let c = sample_schedule(&s, 43, 6);
        assert_ne!(a, c, "different seeds must explore different faults");
        // Permanent faults are capped at two link kills.
        let perms = a
            .iter()
            .filter(|f| f.is_permanent() && !f.is_gray())
            .count();
        assert!(perms <= 2, "{a:?}");
    }

    #[test]
    fn sampling_covers_every_fault_class() {
        let s = space();
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..200 {
            for f in sample_schedule(&s, seed, 6) {
                kinds.insert(match f.kind {
                    FaultKind::Link(_) => "link",
                    FaultKind::Router(_) => "router",
                    FaultKind::FlakyLink { .. } => "flaky",
                    FaultKind::CorruptLink { .. } => "corrupt",
                    FaultKind::Brownout { .. } => "brownout",
                });
            }
        }
        assert_eq!(kinds.len(), 5, "{kinds:?}");
    }

    #[test]
    fn shrink_finds_the_minimal_subset() {
        let s = space();
        let sched = sample_schedule(&s, 7, 6);
        assert!(sched.len() >= 2, "want a multi-event schedule: {sched:?}");
        // The "violation" is: the schedule contains the last event.
        let needle = *sched.last().unwrap();
        let min = shrink(&sched, |cand| cand.contains(&needle));
        assert_eq!(min, vec![needle]);
    }

    #[test]
    fn shrink_keeps_jointly_necessary_events() {
        let sched = vec![
            FaultEvent::kill_link(LinkId(0), 10),
            FaultEvent::flaky_link(LinkId(1), 50, 20).transient(100),
            FaultEvent::corrupt_link(LinkId(2), 60, 30),
            FaultEvent::brownout(LinkId(3), 8, 8, 40).transient(200),
        ];
        let (a, b) = (sched[1], sched[3]);
        // Violation needs *both* events: neither can be removed alone.
        let min = shrink(&sched, |cand| cand.contains(&a) && cand.contains(&b));
        assert_eq!(min, vec![a, b]);
    }

    #[test]
    fn scenario_json_round_trips() {
        let s = space();
        let sc = Scenario {
            spec: "fat-fractahedron:2".to_string(),
            seed: 42,
            schedule_seed: 1337,
            invariant: Invariant::ExactlyOnce.tag().to_string(),
            faults: sample_schedule(&s, 11, 6),
            fifo_depth: None,
            credit_delay: 0,
        };
        let j = sc.to_json();
        let back = Scenario::from_json(&j).unwrap();
        assert_eq!(back, sc);
        // And the re-serialization is bit-identical.
        assert_eq!(back.to_json(), j);
        // Router knobs serialize only when non-default, and survive.
        let knobs = Scenario {
            fifo_depth: Some(2),
            credit_delay: 3,
            ..sc.clone()
        };
        assert!(!j.contains("fifo_depth"));
        let kj = knobs.to_json();
        assert!(kj.contains("\"fifo_depth\":2"));
        assert_eq!(Scenario::from_json(&kj).unwrap(), knobs);
    }

    #[test]
    fn scenario_round_trips_every_kind() {
        let sc = Scenario {
            spec: "mesh:3x3".to_string(),
            seed: 1,
            schedule_seed: 2,
            invariant: Invariant::NoDeadlock.tag().to_string(),
            faults: vec![
                FaultEvent::kill_link(LinkId(3), 10),
                FaultEvent::kill_router(NodeId(2), 20).transient(80),
                FaultEvent::flaky_link(LinkId(1), 50, 30).transient(90),
                FaultEvent::corrupt_link(LinkId(0), 75, 40),
                FaultEvent::brownout(LinkId(5), 16, 24, 50).transient(400),
            ],
            fifo_depth: None,
            credit_delay: 0,
        };
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(back, sc);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(Scenario::from_json("").is_err());
        assert!(Scenario::from_json("[]").is_err());
        assert!(Scenario::from_json("{\"spec\":\"x\"}").is_err());
        let bad_kind = r#"{"spec":"x","seed":1,"schedule_seed":2,"invariant":"exactly_once","faults":[{"at":5,"kind":"meteor"}]}"#;
        assert!(Scenario::from_json(bad_kind).is_err());
        let bad_inv = r#"{"spec":"x","seed":1,"schedule_seed":2,"invariant":"vibes","faults":[]}"#;
        assert!(Scenario::from_json(bad_inv).is_err());
    }

    #[test]
    fn invariant_tags_round_trip() {
        for inv in [
            Invariant::ExactlyOnce,
            Invariant::NoDeadlock,
            Invariant::HealCertifies,
            Invariant::SpanAccounting,
        ] {
            assert_eq!(Invariant::from_tag(inv.tag()), Some(inv));
        }
        assert_eq!(Invariant::from_tag("nope"), None);
    }
}
