//! Traffic generation.
//!
//! The paper's motivating workloads are commercial and unpredictable
//! ("it is not possible to know the data access patterns a priori",
//! §3), so the simulator offers the standard synthetic processes plus
//! scripted patterns for the paper's own adversarial examples.

use rand::rngs::StdRng;
use rand::Rng;

/// How a Bernoulli source picks destinations.
#[derive(Clone, Debug)]
pub enum DstPattern {
    /// Uniformly random destination ≠ source.
    Uniform,
    /// Fixed permutation: source `s` always sends to `perm[s]`
    /// (sources with `perm[s] == s` stay silent).
    Permutation(Vec<usize>),
    /// A `fraction` of packets target a uniformly-chosen hotspot from
    /// `targets`; the rest are uniform.
    HotSpot {
        /// The hot destinations.
        targets: Vec<usize>,
        /// Probability a packet goes to a hotspot.
        fraction: f64,
    },
}

impl DstPattern {
    fn pick(&self, src: usize, n: usize, rng: &mut StdRng) -> Option<usize> {
        match self {
            DstPattern::Uniform => {
                let d = rng.gen_range(0..n - 1);
                Some(if d >= src { d + 1 } else { d })
            }
            DstPattern::Permutation(p) => {
                let d = p[src];
                (d != src).then_some(d)
            }
            DstPattern::HotSpot { targets, fraction } => {
                if rng.gen_bool(*fraction) {
                    let d = targets[rng.gen_range(0..targets.len())];
                    (d != src).then_some(d)
                } else {
                    DstPattern::Uniform.pick(src, n, rng)
                }
            }
        }
    }
}

/// A traffic workload: either an open-loop Bernoulli process or a
/// scripted packet list.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Every source independently generates a packet each cycle with
    /// probability `injection_rate / packet_flits` (so `injection_rate`
    /// is the offered load in flits per node per cycle), until
    /// `until_cycle`.
    Bernoulli {
        /// Offered load in flits/node/cycle (1.0 = link saturation).
        injection_rate: f64,
        /// Destination process.
        pattern: DstPattern,
        /// Generation stops at this cycle (statistics can then drain).
        until_cycle: u64,
    },
    /// Explicit packets: `(cycle, src, dst)`, any order.
    Scripted(Vec<(u64, usize, usize)>),
}

/// Classic permutation generators for `DstPattern::Permutation`
/// (Dally's standard kernel set, §3's "arbitrary set of four CPU
/// nodes" made systematic).
pub mod perms {
    /// Transpose: with `n = k²`, node `(r, c)` sends to `(c, r)`.
    pub fn transpose(n: usize) -> Vec<usize> {
        let k = (n as f64).sqrt() as usize;
        assert_eq!(k * k, n, "transpose needs a square node count");
        (0..n).map(|s| (s % k) * k + s / k).collect()
    }

    /// Bit reversal over `log2(n)` bits.
    pub fn bit_reversal(n: usize) -> Vec<usize> {
        assert!(n.is_power_of_two(), "bit reversal needs a power of two");
        let bits = n.trailing_zeros();
        (0..n)
            .map(|s| (s as u32).reverse_bits() as usize >> (32 - bits))
            .collect()
    }

    /// Tornado: node `i` sends almost half-way around, `i + ⌈n/2⌉ − 1`.
    pub fn tornado(n: usize) -> Vec<usize> {
        (0..n).map(|s| (s + n.div_ceil(2) - 1) % n).collect()
    }

    /// Nearest neighbour: node `i` sends to `i + 1 (mod n)`.
    pub fn neighbor(n: usize) -> Vec<usize> {
        (0..n).map(|s| (s + 1) % n).collect()
    }

    /// Complement: node `i` sends to `n − 1 − i`.
    pub fn complement(n: usize) -> Vec<usize> {
        (0..n).map(|s| n - 1 - s).collect()
    }
}

impl Workload {
    /// The Fig 1 demonstration: simultaneous wrap-around transfers,
    /// one per ring router (`i → i + n/2`).
    pub fn fig1_ring(n: usize) -> Self {
        Workload::Scripted((0..n).map(|s| (0, s, (s + n / 2) % n)).collect())
    }

    /// One packet from every source to every other destination at
    /// cycle 0 (all-to-all burst).
    pub fn all_to_all_burst(n: usize) -> Self {
        let mut v = Vec::with_capacity(n * (n - 1));
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    v.push((0, s, d));
                }
            }
        }
        Workload::Scripted(v)
    }

    /// Packets this workload creates at `cycle`. `packet_flits` scales
    /// Bernoulli packet probability so `injection_rate` stays in flit
    /// units.
    pub fn generate(
        &mut self,
        cycle: u64,
        n: usize,
        packet_flits: u32,
        rng: &mut StdRng,
    ) -> Vec<(usize, usize)> {
        match self {
            Workload::Bernoulli {
                injection_rate,
                pattern,
                until_cycle,
            } => {
                if cycle >= *until_cycle {
                    return Vec::new();
                }
                let p = (*injection_rate / packet_flits as f64).min(1.0);
                let mut out = Vec::new();
                for s in 0..n {
                    if rng.gen_bool(p) {
                        if let Some(d) = pattern.pick(s, n, rng) {
                            out.push((s, d));
                        }
                    }
                }
                out
            }
            Workload::Scripted(list) => {
                let mut out = Vec::new();
                list.retain(|&(t, s, d)| {
                    if t == cycle {
                        out.push((s, d));
                        false
                    } else {
                        true
                    }
                });
                out
            }
        }
    }

    /// Whether no future packet can appear.
    pub fn finished(&self, cycle: u64) -> bool {
        match self {
            Workload::Bernoulli { until_cycle, .. } => cycle >= *until_cycle,
            Workload::Scripted(list) => list.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_never_picks_self() {
        let mut r = rng();
        for s in 0..8usize {
            for _ in 0..200 {
                let d = DstPattern::Uniform.pick(s, 8, &mut r).unwrap();
                assert_ne!(d, s);
                assert!(d < 8);
            }
        }
    }

    #[test]
    fn permutation_is_fixed() {
        let p = DstPattern::Permutation(vec![3, 2, 1, 0]);
        let mut r = rng();
        assert_eq!(p.pick(0, 4, &mut r), Some(3));
        assert_eq!(p.pick(3, 4, &mut r), Some(0));
    }

    #[test]
    fn identity_permutation_entries_are_silent() {
        let p = DstPattern::Permutation(vec![0, 0, 2]);
        let mut r = rng();
        assert_eq!(p.pick(0, 3, &mut r), None);
        assert_eq!(p.pick(1, 3, &mut r), Some(0));
        assert_eq!(p.pick(2, 3, &mut r), None);
    }

    #[test]
    fn hotspot_concentrates() {
        let p = DstPattern::HotSpot {
            targets: vec![5],
            fraction: 1.0,
        };
        let mut r = rng();
        for s in 0..5usize {
            assert_eq!(p.pick(s, 8, &mut r), Some(5));
        }
    }

    #[test]
    fn fig1_workload_shape() {
        let mut w = Workload::fig1_ring(4);
        let pkts = w.generate(0, 4, 8, &mut rng());
        assert_eq!(pkts, vec![(0, 2), (1, 3), (2, 0), (3, 1)]);
        assert!(w.finished(1));
        assert!(w.generate(1, 4, 8, &mut rng()).is_empty());
    }

    #[test]
    fn bernoulli_rate_controls_volume() {
        let mut lo = Workload::Bernoulli {
            injection_rate: 0.05,
            pattern: DstPattern::Uniform,
            until_cycle: 2_000,
        };
        let mut hi = Workload::Bernoulli {
            injection_rate: 0.5,
            pattern: DstPattern::Uniform,
            until_cycle: 2_000,
        };
        let mut r1 = rng();
        let mut r2 = rng();
        let (mut n_lo, mut n_hi) = (0, 0);
        for c in 0..2_000u64 {
            n_lo += lo.generate(c, 16, 16, &mut r1).len();
            n_hi += hi.generate(c, 16, 16, &mut r2).len();
        }
        assert!(n_hi > 5 * n_lo, "hi = {n_hi}, lo = {n_lo}");
        assert!(lo.finished(2_000));
    }

    #[test]
    fn all_to_all_counts() {
        let mut w = Workload::all_to_all_burst(4);
        let pkts = w.generate(0, 4, 8, &mut rng());
        assert_eq!(pkts.len(), 12);
    }

    #[test]
    fn transpose_is_an_involution() {
        let p = perms::transpose(16);
        for s in 0..16 {
            assert_eq!(p[p[s]], s);
        }
        assert_eq!(p[1], 4); // (0,1) -> (1,0)
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let p = perms::bit_reversal(64);
        for s in 0..64 {
            assert_eq!(p[p[s]], s);
        }
        assert_eq!(p[0b000001], 0b100000);
        assert_eq!(p[0b110000], 0b000011);
    }

    #[test]
    fn tornado_and_neighbor_are_permutations() {
        for p in [
            perms::tornado(10),
            perms::neighbor(10),
            perms::complement(10),
        ] {
            let mut seen = [false; 10];
            for &d in &p {
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
        assert_eq!(perms::tornado(10)[0], 4);
        assert_eq!(perms::complement(10)[0], 9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_requires_square() {
        let _ = perms::transpose(12);
    }
}
