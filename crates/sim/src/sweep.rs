//! Parallel offered-load sweeps for load–latency curves.
//!
//! Each load point is an independent simulation over the same network
//! and route set, so points run on the shared worker pool
//! ([`crate::pool::parallel_map`]). Determinism is preserved: every
//! point gets a seed derived from the base seed and its index, and
//! results are returned in rate order.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::pool::parallel_map;
use crate::stats::SimResult;
use crate::traffic::{DstPattern, Workload};
use fractanet_graph::Network;
use fractanet_route::RouteSet;

/// One point of a load–latency curve.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered load in flits/node/cycle.
    pub injection_rate: f64,
    /// The simulation outcome at that load.
    pub result: SimResult,
}

/// Simulates every rate in `rates` in parallel and returns the points
/// in input order. `until_cycle` bounds the generation window (the
/// simulator then drains in-flight traffic up to `cfg.max_cycles`).
pub fn sweep_loads(
    net: &Network,
    routes: &RouteSet,
    cfg: &SimConfig,
    pattern: &DstPattern,
    rates: &[f64],
    until_cycle: u64,
) -> Vec<LoadPoint> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    parallel_map(threads, rates.len(), |i| {
        let rate = rates[i];
        let point_cfg = cfg
            .clone()
            .with_seed(cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9));
        let wl = Workload::Bernoulli {
            injection_rate: rate,
            pattern: pattern.clone(),
            until_cycle,
        };
        LoadPoint {
            injection_rate: rate,
            result: Engine::new(net, routes, point_cfg).run(wl),
        }
    })
}

/// Finds the saturation rate: the first swept rate where accepted
/// throughput falls below `fraction` of the offered load (open-loop
/// saturation), or `None` if the network keeps up everywhere.
pub fn saturation_rate(points: &[LoadPoint], fraction: f64) -> Option<f64> {
    points
        .iter()
        .find(|p| p.result.throughput < p.injection_rate * fraction)
        .map(|p| p.injection_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractanet_route::fractal::fractal_routes;
    use fractanet_topo::{Fractahedron, Topology, Variant};

    #[test]
    fn sweep_returns_points_in_order() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let cfg = SimConfig {
            packet_flits: 4,
            max_cycles: 3_000,
            stall_threshold: 1_500,
            warmup_cycles: 200,
            ..SimConfig::default()
        };
        let rates = [0.05, 0.2, 0.4];
        let pts = sweep_loads(f.net(), &rs, &cfg, &DstPattern::Uniform, &rates, 2_000);
        assert_eq!(pts.len(), 3);
        for (p, r) in pts.iter().zip(rates) {
            assert_eq!(p.injection_rate, r);
            assert!(p.result.deadlock.is_none());
            assert!(p.result.delivered > 0);
        }
        // Latency is monotone-ish: highest load at least as slow as
        // lowest.
        assert!(pts[2].result.avg_latency >= pts[0].result.avg_latency);
    }

    #[test]
    fn sweep_is_deterministic() {
        let f = Fractahedron::new(1, Variant::Fat, false).unwrap();
        let rs = RouteSet::from_table(f.net(), f.end_nodes(), &fractal_routes(&f)).unwrap();
        let cfg = SimConfig {
            packet_flits: 4,
            max_cycles: 2_000,
            stall_threshold: 1_000,
            ..SimConfig::default()
        };
        let run = || sweep_loads(f.net(), &rs, &cfg, &DstPattern::Uniform, &[0.1, 0.3], 1_000);
        let (a, b) = (run(), run());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.delivered, y.result.delivered);
            assert_eq!(x.result.avg_latency, y.result.avg_latency);
        }
    }

    #[test]
    fn saturation_detection() {
        // Synthetic points: throughput tracks offered load until 0.4.
        let mk = |rate: f64, thr: f64| LoadPoint {
            injection_rate: rate,
            result: SimResult {
                cycles: 100,
                generated: 10,
                delivered: 10,
                avg_latency: 0.0,
                avg_network_latency: 0.0,
                p95_latency: 0,
                max_latency: 0,
                throughput: thr,
                channel_busy: vec![],
                deadlock: None,
                recovery: crate::stats::RecoveryStats::default(),
                credits: crate::stats::CreditStats::default(),
                telemetry: None,
                metrics: None,
            },
        };
        let pts = vec![mk(0.1, 0.1), mk(0.3, 0.29), mk(0.5, 0.35)];
        assert_eq!(saturation_rate(&pts, 0.9), Some(0.5));
        assert_eq!(saturation_rate(&pts[..2], 0.9), None);
    }
}
